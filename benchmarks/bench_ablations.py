"""Ablations of the design choices DESIGN.md calls out.

1. **Scheduling guidance** — FACT's schedule-driven candidate
   assessment vs Flamel's static metrics, with the *same* transformation
   library (the paper's central claim, sharpest on FIR where static
   metrics reject strength reduction).
2. **Selection policy** — the Figure-6 rank-Boltzmann selection vs pure
   greedy (k → ∞) vs uniform random (k = 0).
3. **Partition threshold** — how the hot-block threshold trades search
   effort (candidates in focus) against outcome.
4. **Scheduler features** — chaining and implicit loop unrolling
   (software pipelining) switched off individually, measured on the
   untransformed designs.
"""

import pytest

from repro.baselines import run_flamel, run_m1
from repro.bench import circuit
from repro.bench.table2 import default_search_config
from repro.core import (Fact, FactConfig, Objective, SearchConfig,
                        THROUGHPUT, TransformSearch, hot_cdfg_nodes)
from repro.hw import dac98_library
from repro.profiling import profile
from repro.sched import SchedConfig

from .conftest import once

LIB = dac98_library()


def _prepared(name):
    c = circuit(name)
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    return c, beh, probs


class TestSchedulingGuidance:
    def test_same_library_static_selection_misses_example2(self,
                                                           benchmark):
        """Hand Flamel FACT's *entire* library: on Test2 the static
        metric still never applies the Example-2 reassociation (both
        shapes have equal op counts and heights), so schedule-guided
        selection keeps its edge with identical candidates."""
        from repro.transforms import default_library

        def run():
            c, beh, probs = _prepared("test2")
            fl = run_flamel(beh, LIB, c.allocation, c.sched, probs,
                            transforms=default_library())
            fact = Fact(LIB, config=FactConfig(
                sched=c.sched, search=default_search_config()))
            res = fact.optimize(beh, c.allocation, branch_probs=probs)
            return fl, res

        fl, res = once(benchmark, run)
        print(f"\nTest2, identical library: static {fl.result.average_length():.0f} "
              f"cycles vs schedule-guided {res.best_length:.0f}")
        assert not any("associativity" in step for step in fl.applied)
        assert any("associativity" in step for step in res.best.lineage)
        assert res.best_length < fl.result.average_length()

    def test_static_selection_misses_strength_reduction(self, benchmark):
        def run():
            c, beh, probs = _prepared("fir")
            fl = run_flamel(beh, LIB, c.allocation, c.sched, probs)
            fact = Fact(LIB, config=FactConfig(
                sched=c.sched, search=default_search_config()))
            res = fact.optimize(beh, c.allocation, branch_probs=probs,
                                objective=THROUGHPUT)
            return fl.result.average_length(), res.best_length

        flamel_len, fact_len = once(benchmark, run)
        print(f"\nFIR: static selection {flamel_len:.0f} cycles, "
              f"schedule-guided {fact_len:.0f} cycles "
              f"({flamel_len / fact_len:.1f}x)")
        # Static metrics refuse to trade one multiply for several adds;
        # the schedule-guided search pipelines to ~II 1.
        assert flamel_len / fact_len >= 3.0


class TestSelectionPolicy:
    POLICIES = {
        "boltzmann": dict(k0=0.3, k_step=0.4),
        "greedy": dict(k0=50.0, k_step=0.0),
        "random": dict(k0=0.0, k_step=0.0),
    }

    def _run_policy(self, policy, seed):
        c, beh, probs = _prepared("fir")
        cfg = SearchConfig(max_outer_iters=6, max_moves=2, in_set_size=3,
                           seed=seed, max_candidates_per_seed=32,
                           **self.POLICIES[policy])
        search = TransformSearch(
            __import__("repro.transforms", fromlist=["default_library"])
            .default_library(), LIB, c.allocation,
            Objective(THROUGHPUT), sched_config=c.sched,
            branch_probs=probs, config=cfg)
        return search.run(beh).best.score

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_policy_reaches_a_solution(self, benchmark, policy):
        score = once(benchmark, lambda: self._run_policy(policy, seed=3))
        print(f"\nFIR best score under {policy}: {score:.1f}")
        # Every policy must at least improve on M1 (392 cycles).
        assert score < 392

    def test_boltzmann_not_worse_than_random(self, benchmark):
        def run():
            b = min(self._run_policy("boltzmann", s) for s in (1, 2))
            r = min(self._run_policy("random", s) for s in (1, 2))
            return b, r

        boltzmann, random_ = once(benchmark, run)
        print(f"\nboltzmann {boltzmann:.1f} vs random {random_:.1f}")
        assert boltzmann <= random_ * 1.10


class TestPartitionThreshold:
    @pytest.mark.parametrize("threshold", [0.01, 0.1, 0.5])
    def test_threshold_controls_focus(self, benchmark, threshold):
        def run():
            c, beh, probs = _prepared("gcd")
            initial = run_m1(beh, LIB, c.allocation, c.sched, probs)
            return hot_cdfg_nodes(initial.stg, threshold)

        hot = once(benchmark, run)
        print(f"\nthreshold {threshold}: {len(hot)} hot CDFG nodes")
        assert hot, "the GCD loop must always be hot"

    def test_lower_threshold_never_shrinks_focus(self, benchmark):
        def run():
            c, beh, probs = _prepared("gcd")
            initial = run_m1(beh, LIB, c.allocation, c.sched, probs)
            return (hot_cdfg_nodes(initial.stg, 0.01),
                    hot_cdfg_nodes(initial.stg, 0.5))

        wide, narrow = once(benchmark, run)
        assert narrow <= wide


class TestSchedulerFeatures:
    def test_chaining_ablation_gcd(self, benchmark):
        def run():
            c, beh, probs = _prepared("gcd")
            on = run_m1(beh, LIB, c.allocation,
                        SchedConfig(clock=25.0), probs)
            off = run_m1(beh, LIB, c.allocation,
                         SchedConfig(clock=25.0, allow_chaining=False),
                         probs)
            return on.average_length(), off.average_length()

        with_chaining, without = once(benchmark, run)
        print(f"\nGCD M1: chaining {with_chaining:.1f} vs "
              f"unchained {without:.1f} cycles")
        assert with_chaining <= without

    def test_pipelining_ablation_fir(self, benchmark):
        def run():
            c, beh, probs = _prepared("fir")
            on = run_m1(beh, LIB, c.allocation, c.sched, probs)
            off = run_m1(beh, LIB, c.allocation,
                         SchedConfig(clock=25.0, allow_pipelining=False),
                         probs)
            return on.average_length(), off.average_length()

        pipelined, sequential = once(benchmark, run)
        print(f"\nFIR M1: pipelined {pipelined:.0f} vs "
              f"sequential {sequential:.0f} cycles")
        assert pipelined < sequential

    def test_concurrent_loops_ablation_test2(self, benchmark):
        def run():
            c, beh, probs = _prepared("test2")
            on = run_m1(beh, LIB, c.allocation, c.sched, probs)
            off = run_m1(beh, LIB, c.allocation,
                         SchedConfig(clock=25.0,
                                     allow_concurrent_loops=False),
                         probs)
            return on.average_length(), off.average_length()

        concurrent, serial = once(benchmark, run)
        print(f"\nTest2 M1: concurrent {concurrent:.0f} vs "
              f"serial {serial:.0f} cycles")
        assert concurrent < serial

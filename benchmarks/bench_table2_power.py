"""Experiment: Table 2, power-optimization columns.

For every circuit: estimate the M1 design's power at the nominal 5 V
supply, run FACT in power mode, scale the supply until the optimized
design's schedule stretches back to M1's length (iso-throughput,
Example 1's rule), and report both powers.

The paper measures mW from layout with IRSIM-CAP; we report the
Section-2.2 model's normalized units, so the comparable quantities are
the *reductions* (paper: GCD 68%, FIR 78%, Test2 26%, SINTRAN 65%,
IGF 23%, PPS 64%; average 62.1%).

Shape requirements: every circuit shows a reduction (FACT strictly
below M1 at equal throughput), the scaled Vdd is below 5 V, and the
mean reduction is ≥ 30%.
"""

from typing import Dict

import pytest

from repro.bench.table2 import PowerRow, format_power_table, run_power_row

from .conftest import once

_ROWS: Dict[str, PowerRow] = {}

ORDER = ["gcd", "fir", "test2", "sintran", "igf", "pps"]


def _row(name: str) -> PowerRow:
    if name not in _ROWS:
        _ROWS[name] = run_power_row(name)
    return _ROWS[name]


@pytest.mark.parametrize("name", ORDER)
def test_table2_power_row(benchmark, name):
    row = once(benchmark, lambda: _row(name))
    paper = row.circuit.paper_power
    print(f"\n{name}: ours {row.m1_power:.1f} -> {row.fact_power:.1f} "
          f"({100 * row.reduction:.0f}% @ {row.scaled_vdd:.2f}V)  "
          f"paper {paper[0]} -> {paper[1]} mW")
    assert row.reduction > 0.0, "power optimization must find savings"
    assert row.scaled_vdd <= 5.0
    # Iso-throughput: the optimized design is never slower than M1.
    assert row.fact_length <= row.m1_length * 1.001


def test_table2_power_summary(benchmark):
    rows = once(benchmark, lambda: [_row(n) for n in ORDER])
    print()
    print(format_power_table(rows))
    mean = sum(r.reduction for r in rows) / len(rows)
    assert mean >= 0.30, f"mean reduction {100 * mean:.1f}%"

"""Experiment: Example 1 + Table 1 — the worked power estimate for TEST1.

Paper values: average schedule length 119.11 cycles; state
probabilities P_S0=0.008 … P_S5=0.404; per-component energies
(incrementer 34.27, comparators 108.75, adders 63.64, multiplier 41.70,
registers 99.38, memory 93.10, all ×Vdd²); total 665.58·Vdd²; Vdd
scaling 5 V → 4.29 V against a 151.30-cycle baseline; final power
80.96 / cycle_time.
"""

import pytest

from repro.bench import test1_behavior as make_test1_behavior
from repro.bench import test1_fig1c_stg as make_fig1c_stg
from repro.hw import table1_library
from repro.power import estimate_power, scaled_vdd_for_schedule
from repro.stg import average_schedule_length, state_probabilities

from .conftest import once


@pytest.fixture(scope="module")
def example1():
    beh = make_test1_behavior()
    stg = make_fig1c_stg(beh)
    est = estimate_power(stg, beh.graph, table1_library(), vdd=5.0)
    return beh, stg, est


def test_example1_power_model(benchmark, example1):
    beh, stg, _ = example1

    def run():
        return estimate_power(stg, beh.graph, table1_library(), vdd=5.0)

    est = once(benchmark, run)
    length = est.schedule_length
    vdd = scaled_vdd_for_schedule(length, 151.30)
    power = est.total_energy * vdd ** 2 / 151.30

    print("\n=== Example 1 (TEST1 power estimate) ===")
    print(f"{'metric':28} {'paper':>10} {'ours':>10}")
    rows = [
        ("avg schedule length", 119.11, length),
        ("incrementer energy", 34.27, est.fu_energy["incr1"]),
        ("comparator energy", 108.75, est.fu_energy["comp1"]),
        ("adder energy", 63.64, est.fu_energy["cla1"]),
        ("multiplier energy", 41.70, est.fu_energy["w_mult1"]),
        ("register energy", 99.38, est.register_energy),
        ("memory energy", 93.10, est.memory_energy),
        ("total energy (Vdd^2)", 665.58, est.total_energy),
        ("scaled Vdd (V)", 4.29, vdd),
        ("power (/cycle_time)", 80.96, power),
    ]
    for label, paper, ours in rows:
        print(f"{label:28} {paper:>10.2f} {ours:>10.2f}")
    for label, paper, ours in rows:
        assert ours == pytest.approx(paper, rel=0.05), label


def test_example1_state_probabilities(benchmark, example1):
    beh, stg, _ = example1
    probs = once(benchmark, lambda: state_probabilities(stg))
    by_label = {stg.states[sid].label: p for sid, p in probs.items()}
    paper = {"S0": 0.008, "S1": 0.008, "S2": 0.153, "S3": 0.259,
             "S4": 0.149, "S5": 0.404, "S6": 0.003, "S7": 0.008,
             "S8": 0.008}
    print("\nstate probabilities (paper / ours):")
    for label in sorted(paper):
        print(f"  {label}: {paper[label]:.3f} / {by_label[label]:.3f}")
    for label, expected in paper.items():
        assert by_label[label] == pytest.approx(expected, abs=0.01)

"""Experiment: Figure 1 — TEST1 from source to schedule.

Compiles the Fig. 1(a) source, checks the CDFG has the figure's
operation inventory, schedules it under the Table-1 library/allocation
with Example 1's branch probabilities, and compares our scheduler's
expected length against the paper's hand schedule (119.11 cycles).
Our scheduler pipelines slightly more aggressively, landing a bit
below.
"""

import pytest

from repro.bench import test1_branch_probs as probs_for
from repro.bench import test1_behavior as make_test1
from repro.bench import test1_nodes as nodes_of
from repro.cdfg import OpKind, execute
from repro.hw import table1_allocation, table1_library
from repro.sched import SchedConfig, Scheduler

from .conftest import once


def test_fig1_cdfg_inventory(benchmark):
    beh = once(benchmark, make_test1)
    kinds = {}
    for node in beh.graph:
        kinds[node.kind] = kinds.get(node.kind, 0) + 1
    # Fig. 1(b): >1, <1, +1, +2, *1, ++1, S.
    assert kinds[OpKind.GT] == 1
    assert kinds[OpKind.LT] == 1
    assert kinds[OpKind.ADD] == 2
    assert kinds[OpKind.MUL] == 1
    assert kinds[OpKind.INC] == 1
    assert kinds[OpKind.STORE] == 1
    nodes = nodes_of(beh)
    # +1 feeds *1 (the annotated chain).
    assert nodes.add7 in beh.graph.data_inputs(nodes.mul)


def test_fig1_schedule_regime(benchmark):
    def run():
        beh = make_test1()
        return beh, Scheduler(beh, table1_library(),
                              table1_allocation(), SchedConfig(),
                              probs_for(beh)).schedule()

    beh, result = once(benchmark, run)
    length = result.average_length()
    print(f"\nTEST1 schedule: {result.n_states()} states, "
          f"{length:.2f} expected cycles (paper hand schedule: 119.11)")
    # Same regime as the paper's schedule; ours pipelines a little
    # harder so it may come in under.
    assert 80 <= length <= 150

    # Functional sanity through the compiled behavior.
    out = execute(beh, {"c1": 3, "c2": 10})
    acc = 0
    for i in range(10):
        acc = 13 * (acc + 7) if i < 3 else acc + 17
    assert out.outputs["a"] == acc

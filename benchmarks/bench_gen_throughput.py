"""Experiment: generator + differential-oracle throughput.

Measures how fast the fuzzing subsystem can mint and check circuits —
the number that sizes the CI smoke campaign (200 circuits per PR) and
the nightly budget (1000+).  Three phases are timed independently over
the same seed range:

* **generate** — circuits per second out of
  :func:`repro.gen.generate` alone (render + compile + validate);
* **cheap oracles** — the enumeration-only ``enum-parity`` stack;
* **full stack** — every serial oracle (``interp-stg``,
  ``enum-parity``, ``rewrite-semantics``, ``sched-incremental``), the
  per-circuit cost a campaign actually pays.

Requirements:

* every campaign phase must finish with **zero findings** (a finding
  in a throughput run means a live bug — hard failure, exit 1);
* generation must be reproducible across the run: the first circuit is
  regenerated at the end and must be byte-identical.

The ``--quick`` mode (CI) shrinks the seed range; wall-clock rates are
reported, never asserted, so a loaded CI machine cannot produce a
spurious failure.

Run standalone:  PYTHONPATH=src python benchmarks/bench_gen_throughput.py
"""

import argparse
import json
import sys
import time
from typing import Dict, Optional, Sequence

from repro.gen import FuzzOptions, GenConfig, generate, run_campaign

QUICK_COUNT = 8
FULL_COUNT = 60


def _rate(count: int, seconds: float) -> float:
    return round(count / seconds, 2) if seconds > 0 else float("inf")


def time_generation(count: int) -> Dict:
    t0 = time.perf_counter()
    for seed in range(count):
        generate(seed)
    elapsed = time.perf_counter() - t0
    return {"circuits": count, "seconds": round(elapsed, 3),
            "circuits_per_s": _rate(count, elapsed)}


def time_campaign(count: int, oracles: Sequence[str]) -> Dict:
    report = run_campaign(FuzzOptions(
        seed=0, count=count, oracles=tuple(oracles), shrink=False))
    return {"circuits": report.circuits, "checks": report.checks,
            "findings": len(report.findings),
            "details": [f.detail for f in report.findings],
            "seconds": round(report.elapsed_s, 3),
            "circuits_per_s": _rate(report.circuits,
                                    report.elapsed_s)}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small seed range for CI smoke")
    parser.add_argument("--count", type=int, default=None,
                        help="override the circuit count")
    parser.add_argument("--out", default="BENCH_gen.json",
                        help="JSON report path")
    args = parser.parse_args(argv)
    count = args.count or (QUICK_COUNT if args.quick else FULL_COUNT)

    report = {
        "benchmark": "gen_throughput",
        "count": count,
        "generate": time_generation(count),
        "enum_only": time_campaign(count, ("enum-parity",)),
        "full_stack": time_campaign(
            count, ("interp-stg", "enum-parity", "rewrite-semantics",
                    "sched-incremental")),
    }
    report["reproducible"] = (generate(0).source
                              == generate(0, GenConfig()).source)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"generate:   {report['generate']['circuits_per_s']:>8} "
          f"circuits/s")
    print(f"enum-only:  {report['enum_only']['circuits_per_s']:>8} "
          f"circuits/s")
    print(f"full stack: {report['full_stack']['circuits_per_s']:>8} "
          f"circuits/s")

    failures = (report["enum_only"]["findings"]
                + report["full_stack"]["findings"])
    if failures:
        print(f"FAIL: {failures} findings during throughput run "
              f"(see {args.out})", file=sys.stderr)
        return 1
    if not report["reproducible"]:
        print("FAIL: generation is not reproducible", file=sys.stderr)
        return 1
    print(f"zero findings over {count} circuits; report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiment: incremental candidate evaluation vs. the full baseline.

Runs a small *search campaign* per benchmark circuit — the way the
paper's Table 2 is actually produced: the same design is optimized for
throughput and for power, across several search seeds, under one fixed
evaluation context (library / allocation / scheduler config / branch
probabilities).  Two evaluation modes are compared:

* **incremental** — region-level schedule memoization + localized STG
  re-analysis; all runs of the campaign share one
  :class:`~repro.sched.regioncache.RegionScheduleCache` through the
  :class:`~repro.core.fact.Fact` registry, so a unit scheduled once is
  spliced everywhere its content reappears;
* **full** — ``incremental=False``: the pre-incremental path (in-place
  STG construction, one full Markov solve per candidate).

Requirements:

* every ``(seed, objective)`` run returns **bit-identical** results in
  both modes: best score, score history, lineage and the ``to_dot()``
  serialization of the winning schedule;
* on the largest benchmark (whichever of gcd / test2 / fir is slowest
  under the full baseline) the incremental campaign is >= 3x faster
  end-to-end;
* the :class:`~repro.sched.restable.LinearTable` free-list finds the
  same placement cycles as a naive cycle-by-cycle probe, faster on
  saturated tables.

The ``--backends`` axis compares the **scalar** and **batched** numeric
backends instead (both campaigns incremental): blocked Markov solves
and vectorized power accumulation versus the classic one-system-at-a-
time path.  Requirements mirror the incremental axis — bit-identical
outputs everywhere, and on ``test2`` the batched campaign's numeric
core (aggregated ``EvalStats.numeric_seconds``) is >= 1.5x faster.  Wall
clock is reported honestly alongside, but the gate is the numeric core:
campaign wall is dominated by list scheduling, which the backend does
not touch.  The report goes to ``BENCH_numeric.json``.

The ``--quick`` mode (used by the CI ``bench-smoke`` and
``bench-numeric`` jobs) runs a small gcd campaign and enforces only the
equivalence requirement — wall-clock ratios are reported but not
asserted, so a loaded CI machine cannot produce a spurious failure; the
report is still written.

Run standalone:  PYTHONPATH=src python benchmarks/bench_incremental_eval.py
"""

import argparse
import hashlib
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.circuits import circuit
from repro.core.fact import Fact, FactConfig
from repro.core.objectives import POWER, THROUGHPUT
from repro.core.search import SearchConfig
from repro.core.telemetry import EvalStats
from repro.profiling.profiler import profile
from repro.sched.restable import LinearTable

CIRCUITS = ("gcd", "test2", "fir")

#: Campaign shape: every seed is optimized for both objectives with a
#: shallow Figure-6 budget.  Shallow-and-wide is where incremental
#: evaluation shines (and how seed-sensitivity studies actually run):
#: first generations are shared verbatim across seeds and objectives.
SEEDS = 5
OUTER_ITERS = 2
MIN_SPEEDUP = 3.0
MIN_NUMERIC_SPEEDUP = 1.5
NUMERIC_GATE_CIRCUIT = "test2"


def run_campaign(name: str, incremental: bool, seeds: Sequence[int],
                 outer_iters: int = OUTER_ITERS,
                 numeric_backend: str = "scalar"
                 ) -> Tuple[float, List[Tuple], EvalStats, Dict]:
    """One campaign; returns (wall s, run outputs, eval stats, cache)."""
    c = circuit(name)
    behavior = c.behavior()
    probs = dict(profile(behavior, c.traces(behavior)).branch_probs)
    shared: Dict = {}   # Fact's per-context region-cache registry
    outputs: List[Tuple] = []
    agg = EvalStats()
    start = time.perf_counter()
    for seed in seeds:
        fact = Fact(config=FactConfig(
            sched=c.sched,
            search=SearchConfig(seed=seed, max_outer_iters=outer_iters,
                                workers=0, incremental=incremental,
                                numeric_backend=numeric_backend)),
            region_caches=shared)
        for objective in (THROUGHPUT, POWER):
            res = fact.optimize(behavior, c.allocation,
                                objective=objective,
                                branch_probs=dict(probs))
            tel = res.search.telemetry
            if tel is not None:
                agg.add(tel.eval)
            assert res.best.result is not None
            dot = hashlib.sha256(
                res.best.result.stg.to_dot().encode()).hexdigest()
            outputs.append((seed, objective, res.best.score,
                            tuple(res.search.history),
                            res.best.lineage, dot))
    wall = time.perf_counter() - start
    cache_doc: Dict = {}
    for rc in shared.values():
        cache_doc = {"hits": rc.stats.hits, "misses": rc.stats.misses,
                     "evictions": rc.stats.evictions,
                     "hit_rate": rc.stats.hit_rate,
                     "entries": len(rc),
                     "markov_local": rc.markov_local,
                     "markov_reused": rc.markov_reused,
                     "markov_full": rc.markov_full,
                     "solver_time": rc.solver_time}
    return wall, outputs, agg, cache_doc


def compare_circuit(name: str, seeds: Sequence[int],
                    outer_iters: int = OUTER_ITERS) -> Dict:
    """Both modes on one circuit; returns the JSON-ready record."""
    inc_wall, inc_out, inc_stats, cache = run_campaign(
        name, True, seeds, outer_iters)
    full_wall, full_out, full_stats, _ = run_campaign(
        name, False, seeds, outer_iters)
    return {
        "circuit": name,
        "runs": len(inc_out),
        "identical": inc_out == full_out,
        "incremental_seconds": inc_wall,
        "full_seconds": full_wall,
        "speedup": full_wall / inc_wall if inc_wall > 0 else 0.0,
        "incremental": inc_stats.as_dict(),
        "full": full_stats.as_dict(),
        "region_cache": cache,
    }


# -- numeric backend axis -----------------------------------------------

def compare_backends(name: str, seeds: Sequence[int],
                     outer_iters: int = OUTER_ITERS,
                     repeats: int = 1) -> Dict:
    """Scalar vs. batched numeric backend on one circuit.

    Both campaigns run incrementally (the batch points live in the
    incremental evaluation path); the record carries campaign wall
    seconds *and* numeric-core seconds — the aggregated
    ``EvalStats.numeric_seconds``, accrued inside the solves (matrix
    assembly, LAPACK, validity checks) by both backends at the same
    boundary — so the solve speedup is not drowned in list-scheduling
    wall time.

    ``repeats`` reruns each campaign and keeps the fastest numeric-core
    time.  The campaigns are deterministic, so repeats only sample
    machine noise — the many short numeric windows mid-campaign are
    easily inflated by whatever else touched the caches — and the
    minimum is the standard low-noise timing estimator.  Outputs from
    every repeat must agree, which the identity check folds in.
    """
    sc_runs = [run_campaign(name, True, seeds, outer_iters,
                            numeric_backend="scalar")
               for _ in range(repeats)]
    ba_runs = [run_campaign(name, True, seeds, outer_iters,
                            numeric_backend="batched")
               for _ in range(repeats)]
    sc_wall, sc_out, sc_stats, _ = min(
        sc_runs, key=lambda r: r[2].numeric_seconds)
    ba_wall, ba_out, ba_stats, _ = min(
        ba_runs, key=lambda r: r[2].numeric_seconds)
    sc_num = sc_stats.numeric_seconds
    ba_num = ba_stats.numeric_seconds
    identical = all(r[1] == sc_out for r in sc_runs + ba_runs)
    return {
        "circuit": name,
        "runs": len(sc_out),
        "identical": identical,
        "repeats": repeats,
        "scalar_seconds": sc_wall,
        "batched_seconds": ba_wall,
        "wall_speedup": sc_wall / ba_wall if ba_wall > 0 else 0.0,
        "scalar_numeric_seconds": sc_num,
        "batched_numeric_seconds": ba_num,
        "numeric_speedup": sc_num / ba_num if ba_num > 0 else 0.0,
        "numeric_flushes": ba_stats.numeric_flushes,
        "numeric_batched_systems": ba_stats.numeric_batched,
        "scalar": sc_stats.as_dict(),
        "batched": ba_stats.as_dict(),
    }


def run_backends(circuits: Sequence[str], seeds: Sequence[int],
                 outer_iters: int, quick: bool,
                 min_numeric_speedup: float) -> Tuple[Dict, int]:
    """The backend experiment; returns (report, exit code)."""
    from repro.numeric import batching_available

    if not batching_available():
        return {"skipped": "numpy batching unavailable"}, 0
    # The gate circuit's ratio gets the min-of-repeats treatment; the
    # ungated circuits only need one (identity-checked) pass each.
    records = [compare_backends(
        name, seeds, outer_iters,
        repeats=2 if name == NUMERIC_GATE_CIRCUIT and not quick else 1)
        for name in circuits]
    report = {
        "workload": {"circuits": list(circuits),
                     "seeds": list(seeds),
                     "objectives": [THROUGHPUT, POWER],
                     "max_outer_iters": outer_iters,
                     "quick": quick},
        "circuits": records,
        "gate_circuit": NUMERIC_GATE_CIRCUIT,
        "min_numeric_speedup": min_numeric_speedup,
    }
    code = 0
    for rec in records:
        if not rec["identical"]:
            print(f"FAIL: {rec['circuit']}: batched-backend output "
                  f"diverges from the scalar baseline", file=sys.stderr)
            code = 1
    if code == 0 and not quick:
        gated = [r for r in records
                 if r["circuit"] == NUMERIC_GATE_CIRCUIT]
        for rec in gated:
            if rec["numeric_speedup"] < min_numeric_speedup:
                print(f"FAIL: {rec['circuit']} numeric-core speedup "
                      f"{rec['numeric_speedup']:.2f}x < "
                      f"{min_numeric_speedup}x", file=sys.stderr)
                code = 2
    return report, code


def _print_backend_report(report: Dict) -> None:
    if "skipped" in report:
        print(f"numeric backend axis skipped: {report['skipped']}")
        return
    print(f"{'circuit':8} {'scal s':>8} {'batch s':>8} {'wall x':>7} "
          f"{'num scal':>9} {'num batch':>9} {'num x':>7} "
          f"{'identical':>9} {'flushes':>8}")
    for rec in report["circuits"]:
        print(f"{rec['circuit']:8} {rec['scalar_seconds']:8.2f} "
              f"{rec['batched_seconds']:8.2f} "
              f"{rec['wall_speedup']:7.2f} "
              f"{rec['scalar_numeric_seconds']:9.3f} "
              f"{rec['batched_numeric_seconds']:9.3f} "
              f"{rec['numeric_speedup']:7.2f} "
              f"{str(rec['identical']):>9} "
              f"{rec['numeric_flushes']:8d}")


# -- observability no-op overhead guard ---------------------------------

def bench_obs_overhead(campaign_seconds: float, campaign_runs: int,
                       outer_iters: int = OUTER_ITERS) -> Dict:
    """Project the disabled-tracer cost against the campaign wall.

    Instrumented call sites pay one ``NULL_TRACER.span()`` no-op per
    span when tracing is off (docs/observability.md documents the
    < 2 % budget).  There is no un-instrumented build to diff against,
    so the guard is a projection: per-call no-op cost x the span count
    a traced run actually emits, as a fraction of the measured
    untraced campaign wall.  The ratio is machine-relative, so a slow
    CI box does not produce spurious failures.
    """
    from repro.obs.trace import NULL_TRACER, Tracer

    calls = 50_000
    per_call = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(calls):
            with NULL_TRACER.span("evaluate"):
                pass
        per_call = min(per_call, (time.perf_counter() - t0) / calls)

    # span volume of one representative traced run (gcd, one seed)
    c = circuit("gcd")
    behavior = c.behavior()
    probs = dict(profile(behavior, c.traces(behavior)).branch_probs)
    tracer = Tracer()
    Fact(config=FactConfig(
        sched=c.sched,
        search=SearchConfig(seed=0, max_outer_iters=outer_iters,
                            workers=0)), trace=tracer).optimize(
        behavior, c.allocation, objective=THROUGHPUT,
        branch_probs=probs)
    spans_per_run = len(tracer.spans)
    projected = per_call * spans_per_run * campaign_runs
    fraction = projected / campaign_seconds if campaign_seconds else 0.0
    return {"null_span_ns": per_call * 1e9,
            "spans_per_run": spans_per_run,
            "campaign_runs": campaign_runs,
            "projected_seconds": projected,
            "projected_fraction": fraction,
            "budget_fraction": 0.02}


# -- reservation-table free-list micro-benchmark ------------------------

def _naive_next_free(table: LinearTable, cycle: int, resource: str,
                     nid: int) -> int:
    """The pre-free-list placement scan: probe one cycle at a time."""
    while not table.can_place(cycle, 1, resource, nid):
        cycle += 1
    return cycle


def bench_freelist(n_ops: int = 3000) -> Dict:
    """Time placement scans over a saturated table, both ways.

    Every op starts its scan at cycle 0 (the list scheduler's worst
    case: ready ops whose predecessors finished long ago), so the naive
    probe walks the whole booked prefix while the free-list jumps it.
    """
    def capacity_of(_resource: str) -> int:
        return 2

    def fill(table: LinearTable) -> List[int]:
        placed = []
        for nid in range(n_ops):
            cycle = table.next_free_cycle(0, "alu")
            while not table.can_place(cycle, 1, "alu", nid):
                cycle = table.next_free_cycle(cycle + 1, "alu")
            table.place(cycle, 1, "alu", nid)
            placed.append(cycle)
        return placed

    def fill_naive(table: LinearTable) -> List[int]:
        placed = []
        for nid in range(n_ops):
            cycle = _naive_next_free(table, 0, "alu", nid)
            table.place(cycle, 1, "alu", nid)
            placed.append(cycle)
        return placed

    t0 = time.perf_counter()
    fast = fill(LinearTable(capacity_of))
    fast_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive = fill_naive(LinearTable(capacity_of))
    naive_s = time.perf_counter() - t0
    assert fast == naive, "free-list scan placed ops differently"
    return {"ops": n_ops, "freelist_seconds": fast_s,
            "naive_seconds": naive_s,
            "speedup": naive_s / fast_s if fast_s > 0 else 0.0}


# -- reporting ----------------------------------------------------------

def run_all(circuits: Sequence[str], seeds: Sequence[int],
            outer_iters: int, quick: bool,
            min_speedup: float) -> Tuple[Dict, int]:
    """The whole experiment; returns (report, exit code)."""
    records = [compare_circuit(name, seeds, outer_iters)
               for name in circuits]
    slowest = max(records, key=lambda r: r["full_seconds"])
    freelist = bench_freelist(500 if quick else 3000)
    obs = bench_obs_overhead(
        sum(r["incremental_seconds"] for r in records),
        sum(r["runs"] for r in records), outer_iters)
    report = {
        "workload": {"circuits": list(circuits),
                     "seeds": list(seeds),
                     "objectives": [THROUGHPUT, POWER],
                     "max_outer_iters": outer_iters,
                     "quick": quick},
        "circuits": records,
        "slowest": slowest["circuit"],
        "slowest_speedup": slowest["speedup"],
        "restable_freelist": freelist,
        "obs_overhead": obs,
    }
    code = 0
    if obs["projected_fraction"] >= obs["budget_fraction"]:
        print(f"FAIL: disabled-tracer overhead projects to "
              f"{100 * obs['projected_fraction']:.2f}% of the "
              f"campaign (budget "
              f"{100 * obs['budget_fraction']:.0f}%)",
              file=sys.stderr)
        code = 3
    for rec in records:
        if not rec["identical"]:
            print(f"FAIL: {rec['circuit']}: incremental output diverges "
                  f"from the full-evaluation baseline", file=sys.stderr)
            code = 1
    if code == 0 and not quick \
            and slowest["speedup"] < min_speedup:
        print(f"FAIL: {slowest['circuit']} (slowest) speedup "
              f"{slowest['speedup']:.2f}x < {min_speedup}x",
              file=sys.stderr)
        code = 2
    return report, code


def _print_report(report: Dict) -> None:
    print(f"{'circuit':8} {'inc s':>8} {'full s':>8} {'speedup':>8} "
          f"{'identical':>9} {'resched%':>9} {'hit rate':>9}")
    for rec in report["circuits"]:
        inc = rec["incremental"]
        print(f"{rec['circuit']:8} {rec['incremental_seconds']:8.2f} "
              f"{rec['full_seconds']:8.2f} {rec['speedup']:8.2f} "
              f"{str(rec['identical']):>9} "
              f"{100 * inc['reschedule_fraction']:9.1f} "
              f"{rec['region_cache'].get('hit_rate', 0.0):9.2f}")
    fl = report["restable_freelist"]
    print(f"restable free-list: {fl['ops']} ops, "
          f"{fl['naive_seconds'] * 1000:.1f} ms naive -> "
          f"{fl['freelist_seconds'] * 1000:.1f} ms "
          f"({fl['speedup']:.1f}x)")
    obs = report["obs_overhead"]
    print(f"obs no-op overhead: {obs['null_span_ns']:.0f} ns/span x "
          f"{obs['spans_per_run']} spans x {obs['campaign_runs']} runs "
          f"-> {100 * obs['projected_fraction']:.3f}% of the campaign "
          f"(budget {100 * obs['budget_fraction']:.0f}%)")
    print(f"slowest benchmark: {report['slowest']} at "
          f"{report['slowest_speedup']:.2f}x")


# -- pytest entry points (quick workload only; not tier-1) --------------

def test_incremental_identical(benchmark):
    """Quick campaign: both modes agree bit-for-bit on gcd."""
    from .conftest import once
    rec = once(benchmark, lambda: compare_circuit("gcd", range(2)))
    assert rec["identical"]


def test_freelist_equivalent(benchmark):
    """The free-list scan places ops exactly like the naive probe."""
    from .conftest import once
    fl = once(benchmark, lambda: bench_freelist(500))
    assert fl["ops"] == 500


def test_numeric_backends_identical(benchmark):
    """Quick campaign: both numeric backends agree bit-for-bit on gcd."""
    import pytest

    from repro.numeric import batching_available
    from .conftest import once
    if not batching_available():
        pytest.skip("numpy batching unavailable")
    rec = once(benchmark, lambda: compare_backends("gcd", range(2)))
    assert rec["identical"]
    assert rec["numeric_flushes"] > 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small gcd-only campaign; equivalence is "
                             "enforced, wall-clock ratios are not")
    parser.add_argument("--circuit", action="append", dest="circuits",
                        choices=CIRCUITS,
                        help="restrict to one circuit (repeatable)")
    parser.add_argument("--seeds", type=int, default=SEEDS,
                        help=f"search seeds per circuit ({SEEDS})")
    parser.add_argument("--iters", type=int, default=OUTER_ITERS,
                        help=f"max outer iterations ({OUTER_ITERS})")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"required speedup on the slowest circuit "
                             f"({MIN_SPEEDUP})")
    parser.add_argument("--backends", action="store_true",
                        help="compare numeric backends (scalar vs. "
                             "batched) instead of evaluation modes")
    parser.add_argument("--min-numeric-speedup", type=float,
                        default=MIN_NUMERIC_SPEEDUP,
                        help=f"required numeric-core speedup on "
                             f"{NUMERIC_GATE_CIRCUIT} with --backends "
                             f"({MIN_NUMERIC_SPEEDUP})")
    parser.add_argument("--out", default=None,
                        help="report path (BENCH_incremental.json, or "
                             "BENCH_numeric.json with --backends)")
    args = parser.parse_args(argv)
    if args.quick:
        circuits = args.circuits or ["gcd"]
        seeds = range(min(args.seeds, 2))
    else:
        circuits = args.circuits or list(CIRCUITS)
        seeds = range(args.seeds)
    if args.backends:
        out = args.out or "BENCH_numeric.json"
        report, code = run_backends(circuits, list(seeds), args.iters,
                                    args.quick,
                                    args.min_numeric_speedup)
        printer = _print_backend_report
    else:
        out = args.out or "BENCH_incremental.json"
        report, code = run_all(circuits, list(seeds), args.iters,
                               args.quick, args.min_speedup)
        printer = _print_report
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    printer(report)
    print(f"report written to {out}")
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Experiment: streaming campaign pipeline vs. the generation barrier.

Runs pool-backend *exploration campaigns* twice — once with the legacy
generation barrier (``--streaming`` off: evaluate a whole generation,
wait, then admit) and once through the streaming pipeline
(``ExploreConfig.streaming``: bounded in-flight window, results
admitted into the Pareto front as they land, exact boundary
speculation with carried-over futures; see ``docs/pipeline.md``) —
and compares both wall clock and the exported fronts.

Requirements:

* every campaign exports a **byte-identical** Pareto front
  (``front.to_json()``) in both modes, on every circuit, seed and
  worker count — streaming is a scheduling change, never a search
  change;
* on the gate circuit (``test2``, pool backend) the streaming campaign
  is >= 1.2x faster end-to-end.  The win comes from pipelining the
  generation boundary: while the main process runs selection,
  expansion, store lookups and the checkpoint write, the pool workers
  are already evaluating the (exactly predicted) next generation.
  That is a *parallel-capacity* win by construction, so the gate is
  only asserted when the host exposes at least two CPUs
  (``available_cpus() >= 2``); on a single-CPU host there is nothing
  to overlap with — the admission policy itself turns speculation off
  there — and the gate is reported as skipped, exactly like the
  numeric-backend gate skips when numpy is absent.

Each mode runs against its own fresh run store and checkpoint, so
neither campaign warms the other.  The report (``BENCH_stream.json``)
carries the per-mode wall clocks and the streaming run's
:class:`~repro.stream.StreamStats` — enqueue/submit/merge counters and
the two queue-depth high-water marks (in-flight window, in-order
commit reorder depth) that show the pipeline actually streamed.

The ``--quick`` mode (used by the CI ``stream-smoke`` job) runs a
small gcd campaign and enforces only the front-equivalence
requirement — wall-clock ratios are reported but not asserted, so a
loaded single-core CI machine cannot produce a spurious failure.

Run standalone:  PYTHONPATH=src python benchmarks/bench_stream_pipeline.py
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.api import explore
from repro.bench.circuits import circuit
from repro.explore.runner import ExploreConfig
from repro.profiling.profiler import profile
from repro.stream import available_cpus

CIRCUITS = ("gcd", "test2")
GATE_CIRCUIT = "test2"
MIN_SPEEDUP = 1.2
SEEDS = 2
GENERATIONS = 6
POPULATION = 4
WORKERS = 4


def run_campaign(name: str, streaming: bool, seeds: Sequence[int],
                 generations: int = GENERATIONS,
                 population: int = POPULATION,
                 workers: int = WORKERS) -> Tuple[float, list, Dict]:
    """One campaign per seed; returns (wall s, fronts, stream stats).

    ``warm_start`` is off: the experiment isolates the generational
    loop the pipeline restructures (the warm-start searches are the
    same code in both modes and would only dilute the ratio).
    """
    c = circuit(name)
    behavior = c.behavior()
    probs = dict(profile(behavior, c.traces(behavior)).branch_probs)
    fronts = []
    stream_doc: Dict = {}
    start = time.perf_counter()
    for seed in seeds:
        with tempfile.TemporaryDirectory() as store:
            cfg = ExploreConfig(
                generations=generations, population_size=population,
                seed=seed, workers=workers, sched=c.sched,
                warm_start=False, streaming=streaming)
            res = explore(behavior, config=cfg, alloc=c.allocation,
                          branch_probs=dict(probs), store=store,
                          checkpoint=str(Path(store) / "ck.json"))
            fronts.append(res.front.to_json())
            stream = getattr(res.telemetry, "stream", None)
            if stream is not None:
                for key, value in stream.as_dict().items():
                    if key.startswith("max_"):
                        stream_doc[key] = max(stream_doc.get(key, 0),
                                              value)
                    else:
                        stream_doc[key] = stream_doc.get(key, 0) + value
    return time.perf_counter() - start, fronts, stream_doc


def compare_circuit(name: str, seeds: Sequence[int],
                    generations: int = GENERATIONS,
                    workers: int = WORKERS,
                    repeats: int = 1) -> Dict:
    """Both modes on one circuit; returns the JSON-ready record.

    ``repeats`` reruns each mode and keeps the fastest wall clock (the
    standard low-noise estimator; campaigns are deterministic, so
    repeats only sample machine noise).  Fronts from every repeat must
    agree byte-for-byte, which the identity check folds in.
    """
    ba_runs = [run_campaign(name, False, seeds, generations,
                            workers=workers) for _ in range(repeats)]
    st_runs = [run_campaign(name, True, seeds, generations,
                            workers=workers) for _ in range(repeats)]
    ba_wall, ba_fronts, _ = min(ba_runs, key=lambda r: r[0])
    st_wall, st_fronts, stream = min(st_runs, key=lambda r: r[0])
    identical = all(r[1] == ba_fronts for r in ba_runs + st_runs)
    return {
        "circuit": name,
        "campaigns": len(ba_fronts),
        "identical": identical,
        "repeats": repeats,
        "workers": workers,
        "barrier_seconds": ba_wall,
        "streaming_seconds": st_wall,
        "speedup": ba_wall / st_wall if st_wall > 0 else 0.0,
        "stream": stream,
    }


def run_all(circuits: Sequence[str], seeds: Sequence[int],
            generations: int, workers: int, quick: bool,
            min_speedup: float) -> Tuple[Dict, int]:
    """The whole experiment; returns (report, exit code)."""
    cpus = available_cpus()
    gate = "enforced"
    if quick:
        gate = "skipped (--quick)"
    elif cpus < 2:
        gate = "skipped (single CPU: no parallel capacity to pipeline)"
    records = [compare_circuit(
        name, seeds, generations, workers,
        repeats=2 if name == GATE_CIRCUIT and gate == "enforced" else 1)
        for name in circuits]
    report = {
        "workload": {"circuits": list(circuits), "seeds": list(seeds),
                     "generations": generations, "workers": workers,
                     "population": POPULATION, "quick": quick},
        "circuits": records,
        "gate_circuit": GATE_CIRCUIT,
        "min_speedup": min_speedup,
        "cpus": cpus,
        "gate": gate,
    }
    code = 0
    for rec in records:
        if not rec["identical"]:
            print(f"FAIL: {rec['circuit']}: streaming front diverges "
                  f"from the barrier baseline", file=sys.stderr)
            code = 1
    if code == 0 and gate == "enforced":
        for rec in records:
            if rec["circuit"] != GATE_CIRCUIT:
                continue
            if rec["speedup"] < min_speedup:
                print(f"FAIL: {rec['circuit']} streaming speedup "
                      f"{rec['speedup']:.2f}x < {min_speedup}x",
                      file=sys.stderr)
                code = 2
    return report, code


def _print_report(report: Dict) -> None:
    print(f"{'circuit':8} {'barrier s':>10} {'stream s':>10} "
          f"{'speedup':>8} {'identical':>9}")
    for rec in report["circuits"]:
        print(f"{rec['circuit']:8} {rec['barrier_seconds']:10.2f} "
              f"{rec['streaming_seconds']:10.2f} "
              f"{rec['speedup']:8.2f} {str(rec['identical']):>9}")
        stream = rec.get("stream") or {}
        if stream:
            print(f"  stream: {stream.get('enqueued', 0)} enqueued, "
                  f"{stream.get('submitted', 0)} submitted, "
                  f"{stream.get('cache_hits', 0)} cache hits, "
                  f"{stream.get('speculated', 0)} speculated "
                  f"({stream.get('carried', 0)} carried, "
                  f"{stream.get('adopted', 0)} adopted), "
                  f"peak inflight {stream.get('max_inflight', 0)}, "
                  f"peak reorder {stream.get('max_reorder_depth', 0)}")
    print(f"cpus: {report['cpus']}  gate ({report['gate_circuit']} >= "
          f"{report['min_speedup']}x): {report['gate']}")


# -- pytest entry points (quick workload only; not tier-1) --------------

def test_streaming_front_identical(benchmark):
    """Quick campaign: streaming and barrier fronts agree on gcd."""
    from .conftest import once
    rec = once(benchmark, lambda: compare_circuit(
        "gcd", range(2), generations=3, workers=0))
    assert rec["identical"]


def test_streaming_pool_front_identical(benchmark):
    """Quick pool campaign: streaming and barrier fronts agree."""
    from .conftest import once
    rec = once(benchmark, lambda: compare_circuit(
        "gcd", range(1), generations=3, workers=2))
    assert rec["identical"]
    assert rec["stream"].get("enqueued", 0) > 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small gcd-only campaign; front equivalence "
                             "is enforced, wall-clock ratios are not")
    parser.add_argument("--circuit", action="append", dest="circuits",
                        choices=CIRCUITS,
                        help="restrict to one circuit (repeatable)")
    parser.add_argument("--seeds", type=int, default=SEEDS,
                        help=f"campaign seeds per circuit ({SEEDS})")
    parser.add_argument("--generations", type=int, default=GENERATIONS,
                        help=f"generations per campaign ({GENERATIONS})")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help=f"pool workers ({WORKERS})")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"required streaming speedup on "
                             f"{GATE_CIRCUIT} ({MIN_SPEEDUP})")
    parser.add_argument("--out", default="BENCH_stream.json",
                        help="report path (BENCH_stream.json)")
    args = parser.parse_args(argv)
    if args.quick:
        circuits = args.circuits or ["gcd"]
        seeds = range(min(args.seeds, 1))
        generations = min(args.generations, 3)
    else:
        circuits = args.circuits or list(CIRCUITS)
        seeds = range(args.seeds)
        generations = args.generations
    report, code = run_all(circuits, list(seeds), generations,
                           args.workers, args.quick, args.min_speedup)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    _print_report(report)
    print(f"report written to {args.out}")
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Experiment: Table 2, throughput-optimization columns.

For every circuit, run M1 (schedule only), Flamel (transform-first,
static heuristics) and FACT (schedule-guided search) under the Table-3
allocation and 25 ns clock, and report cycles⁻¹ × 1000 per CDFG
iteration next to the paper's values.

Shape requirements (absolute values depend on our reconstructed
sources and traces; see EXPERIMENTS.md):

* FACT ≥ Flamel ≥ M1 for every circuit;
* FIR shows the largest FACT gain (≥ 4× — paper 6×, via strength
  reduction to a fully pipelined shift-add datapath);
* Test2 lands at the paper's exact 2.0 / 2.0 / 2.5 row;
* PPS: Flamel = FACT (pure tree-height reduction, paper 333 = 333);
* the FACT/M1 geomean is ≥ 1.8 (paper mean 2.7×).
"""

from typing import Dict

import pytest

from repro.bench.table2 import (ThroughputRow, format_throughput_table,
                                run_throughput_row)

from .conftest import once

_ROWS: Dict[str, ThroughputRow] = {}

ORDER = ["gcd", "fir", "test2", "sintran", "igf", "pps"]


def _row(name: str) -> ThroughputRow:
    if name not in _ROWS:
        _ROWS[name] = run_throughput_row(name)
    return _ROWS[name]


@pytest.mark.parametrize("name", ORDER)
def test_table2_throughput_row(benchmark, name):
    row = once(benchmark, lambda: _row(name))
    ours = row.ours()
    paper = row.circuit.paper_throughput
    print(f"\n{name}: ours M1/Fl/FACT = "
          f"{ours[0]:.1f}/{ours[1]:.1f}/{ours[2]:.1f}  "
          f"paper = {paper[0]}/{paper[1]}/{paper[2]}")
    # Ordering: FACT >= Flamel >= M1 (small tolerance for estimator
    # noise).
    assert ours[2] >= ours[1] * 0.99
    assert ours[1] >= ours[0] * 0.99


def test_table2_throughput_summary(benchmark):
    rows = once(benchmark, lambda: [_row(n) for n in ORDER])
    print()
    print(format_throughput_table(rows))
    by_name = {r.circuit.name: r for r in rows}

    # FIR: the headline result — strength reduction pipelines to ~II 1.
    assert by_name["fir"].fact_over_m1 >= 4.0
    # Test2: the Example-2 row, exact.
    t2 = by_name["test2"].ours()
    assert t2[0] == pytest.approx(2.0, abs=0.1)
    assert t2[2] == pytest.approx(2.5, abs=0.15)
    # PPS: associativity alone; Flamel matches FACT.
    pps = by_name["pps"].ours()
    assert pps[1] == pytest.approx(pps[2], rel=0.05)
    assert pps[0] == pytest.approx(125.0, abs=2.0)
    # Aggregate factor.
    geomean = 1.0
    for row in rows:
        geomean *= row.fact_over_m1
    geomean **= 1.0 / len(rows)
    assert geomean >= 1.8, f"geomean FACT/M1 {geomean:.2f}"

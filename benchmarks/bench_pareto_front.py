"""Experiment: the FIR Pareto front covers both paper endpoints.

Tables 2 and 3 of the paper are two points on one trade-off surface:
the throughput-optimized FIR design and the power-optimized one.  A
single ``repro explore`` run should recover *both* — its front must
contain a design within 5% of this reproduction's Table-2 throughput
result and one within 5% of its Table-3 power result, under the same
seed and search budget.

The references are the same single-objective rows the table benchmarks
regenerate (``run_throughput_row`` / ``run_power_row``); the front's
power cost uses the identical iso-throughput Vdd-scaling formula, so
the comparison is apples-to-apples.

Run standalone:  PYTHONPATH=src python benchmarks/bench_pareto_front.py
"""

from typing import Dict, Tuple

from repro.bench.circuits import circuit
from repro.bench.table2 import (PowerRow, ThroughputRow, run_power_row,
                                run_throughput_row)
from repro.core.search import SearchConfig
from repro.explore import ExploreConfig, ExploreResult, ExploreRunner
from repro.profiling.profiler import profile

CIRCUIT = "fir"
TOLERANCE = 0.05

#: One budget for the single-objective references *and* the explorer's
#: warm start, so the endpoint comparison is seed-for-seed fair.
SEARCH = SearchConfig(max_outer_iters=4, seed=3)

_RUNS: Dict[str, object] = {}


def _rows() -> Tuple[ThroughputRow, PowerRow]:
    if "rows" not in _RUNS:
        _RUNS["rows"] = (run_throughput_row(CIRCUIT, search=SEARCH),
                         run_power_row(CIRCUIT, search=SEARCH))
    return _RUNS["rows"]


def _explore(tmp_root) -> ExploreResult:
    if "explore" not in _RUNS:
        c = circuit(CIRCUIT)
        beh = c.behavior()
        probs = dict(profile(beh, c.traces(beh)).branch_probs)
        cfg = ExploreConfig(generations=2, population_size=4,
                            max_candidates_per_seed=8,
                            seed=SEARCH.seed, sched=c.sched,
                            search=SEARCH)
        runner = ExploreRunner(beh, c.allocation, config=cfg,
                               branch_probs=probs,
                               store=tmp_root / "store")
        _RUNS["explore"] = runner.run()
    return _RUNS["explore"]


def _report(thr: ThroughputRow, pwr: PowerRow,
            result: ExploreResult) -> str:
    front = result.front
    best_t = front.best(0).objectives[0]
    best_p = front.best(1).objectives[1]
    return "\n".join([
        f"FIR Pareto front vs single-objective references "
        f"(seed={SEARCH.seed}, tol {TOLERANCE:.0%})",
        f"  front: {len(front)} designs, "
        f"{result.generations} generations, "
        f"store hit rate {result.store_hit_rate:.2f}",
        f"  throughput endpoint: len {best_t:8.2f}  "
        f"(Table-2 FACT len {thr.fact.length:8.2f})",
        f"  power endpoint:      pwr {best_p:8.3f}  "
        f"(Table-3 FACT pwr {pwr.fact_power:8.3f})",
    ])


def test_front_covers_table2_and_table3(benchmark, tmp_path_factory):
    from .conftest import once

    def experiment():
        tmp_root = tmp_path_factory.mktemp("pareto-store")
        rows = _rows()
        return rows, _explore(tmp_root)

    (thr, pwr), result = once(benchmark, experiment)
    print()
    print(_report(thr, pwr, result))
    front = result.front
    # A front member matches (or beats) the Table-2 throughput design.
    best_t = front.best(0).objectives[0]
    assert best_t <= thr.fact.length * (1.0 + TOLERANCE), (
        f"throughput endpoint {best_t:.2f} not within {TOLERANCE:.0%} "
        f"of the Table-2 result {thr.fact.length:.2f}")
    # And another matches (or beats) the Table-3 power design.
    best_p = front.best(1).objectives[1]
    assert best_p <= pwr.fact_power * (1.0 + TOLERANCE), (
        f"power endpoint {best_p:.3f} not within {TOLERANCE:.0%} "
        f"of the Table-3 result {pwr.fact_power:.3f}")
    # The front is a genuine surface, not a single compromise point.
    assert len(front) >= 2


if __name__ == "__main__":
    import pathlib
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        thr_row, pwr_row = _rows()
        res = _explore(pathlib.Path(tmp))
        print(_report(thr_row, pwr_row, res))
        ok_t = (res.front.best(0).objectives[0]
                <= thr_row.fact.length * (1.0 + TOLERANCE))
        ok_p = (res.front.best(1).objectives[1]
                <= pwr_row.fact_power * (1.0 + TOLERANCE))
        print(f"throughput endpoint {'OK' if ok_t else 'MISS'}, "
              f"power endpoint {'OK' if ok_p else 'MISS'}")

"""Experiment: Example 3 / Figure 4 — distributivity across basic blocks.

With one multiplier and two subtracters, the matched thread of the
Figure-4(a) CDFG takes three datapath cycles (two serialized multiplies
feeding a subtract); after the cross-join factoring it takes two (one
subtract, one multiply).  Other threads are untouched, and the two
generated implementations are mutually exclusive.
"""

import pytest

from repro.bench import (example3_allocation, example3_behavior,
                         matched_path_probs)
from repro.cdfg import GuardAnalysis, OpKind, execute
from repro.hw import dac98_library
from repro.sched import SchedConfig, Scheduler
from repro.transforms import Distributivity

from .conftest import once

LIB = dac98_library()

#: Condition-resolution state + output latch, excluded when counting
#: the paper's datapath cycles.
OVERHEAD_STATES = 2


def schedule_length(behavior, take_c):
    probs = matched_path_probs(behavior, take_c)
    result = Scheduler(behavior, LIB, example3_allocation(),
                       SchedConfig(), probs).schedule()
    return result.average_length()


@pytest.fixture(scope="module")
def transformed():
    behavior = example3_behavior()
    cands = [c for c in Distributivity().find(behavior)
             if "across joins" in c.description]
    assert cands, "cross-block site must be recognized"
    return behavior, cands[0].apply(behavior)


def test_example3_matched_thread_3_to_2_cycles(benchmark, transformed):
    original, rewritten = transformed

    def run():
        return (schedule_length(original, True),
                schedule_length(rewritten, True))

    before, after = once(benchmark, run)
    print("\n=== Example 3 (cross-block distributivity) ===")
    print(f"matched thread: {before - OVERHEAD_STATES:.0f} -> "
          f"{after - OVERHEAD_STATES:.0f} datapath cycles "
          f"(paper: 3 -> 2)")
    assert before - OVERHEAD_STATES == pytest.approx(3.0)
    assert after - OVERHEAD_STATES == pytest.approx(2.0)


def test_example3_other_threads_unaffected(benchmark, transformed):
    original, rewritten = transformed

    def run():
        return (schedule_length(original, False),
                schedule_length(rewritten, False))

    before, after = once(benchmark, run)
    assert after == pytest.approx(before)


def test_example3_functionality_every_thread(transformed):
    original, rewritten = transformed
    for c in (5, 0, -7):
        stim = {"x1": 3, "x2": 11, "x3": 4, "x4": 50, "x5": 8, "c": c}
        assert execute(rewritten, stim).outputs \
            == execute(original, stim).outputs


def test_example3_single_multiplier_after_rewrite(transformed):
    _original, rewritten = transformed
    muls = [n.id for n in rewritten.graph if n.kind is OpKind.MUL]
    assert len(muls) == 1


def test_example3_implementations_mutually_exclusive(transformed):
    _original, rewritten = transformed
    g = rewritten.graph
    subs = [n.id for n in g if n.kind is OpKind.SUB]
    assert len(subs) == 2
    assert GuardAnalysis(g).mutually_exclusive(*subs)

"""Experiment: service campaign throughput and serial equivalence.

Simulates the ``repro serve`` workload the service layer was built
for: dozens of concurrent submitted jobs (gcd and test2 sweeps across
seeds) drained as one campaign by a
:class:`~repro.service.orchestrator.CampaignOrchestrator`.  Two
configurations run the *identical* queue:

* **serial** — one in-process worker (``workers=1``), the sharded
  equivalent of calling ``repro explore`` per job;
* **parallel** — a two-process worker pool with work stealing over the
  shared shard board (``workers=2``).

Requirements:

* every job's merged Pareto front is **byte-identical** between the
  two configurations, and for the reference jobs (one gcd seed, one
  test2 job) also byte-identical to a plain serial ``repro.explore``
  run with the same knobs — sharding, worker count and work stealing
  must never change results;
* the two-worker campaign sustains >= 1.8x the serial campaign's job
  throughput (jobs per second over identical work).  The wall-clock
  requirement is only meaningful with at least ``workers`` CPUs — on a
  single-core host two processes merely time-share, so the ratio is
  reported (with the measured CPU count) but not asserted.

Jobs run with ``isolate_stores``: each job evaluates into a private
sub-store merged into the main store on completion (the multi-machine
federation path), so cross-job store sharing cannot mute the
measurement and every sync pass is exercised dozens of times.

The ``--quick`` mode (CI ``service-smoke``) runs a handful of jobs and
enforces only the equivalence requirements — wall-clock ratios are
reported, not asserted, so a loaded CI machine cannot produce a
spurious failure; the report still lands in ``BENCH_service.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.bench.circuits import circuit
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import (JobQueue, JobSpec, PARETO,
                                expand_shards)
from repro.service.orchestrator import (CampaignOrchestrator,
                                        OrchestratorConfig)

#: Per-job search shape: small enough that dozens of jobs finish in
#: minutes, large enough that a job is real work (profiling + warm
#: start + one NSGA-II generation over three shards).
KNOBS = dict(generations=1, population=4, candidates_per_seed=6,
             iterations=1)

GCD_JOBS = 16
TEST2_JOBS = 8
MIN_SPEEDUP = 1.8
WORKERS = 2


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _alloc_string(name: str) -> str:
    counts = circuit(name).allocation.counts
    return ",".join(f"{k}={v}" for k, v in sorted(counts.items()))


def build_jobs(gcd_jobs: int, test2_jobs: int) -> List[JobSpec]:
    """The simulated submission burst: seed sweeps over two circuits."""
    jobs = [JobSpec(source=circuit("gcd").source,
                    alloc=_alloc_string("gcd"), seed=seed, **KNOBS)
            for seed in range(gcd_jobs)]
    jobs += [JobSpec(source=circuit("test2").source,
                     alloc=_alloc_string("test2"), seed=seed, **KNOBS)
             for seed in range(test2_jobs)]
    return jobs


def serial_reference(spec: JobSpec, store) -> str:
    """Plain ``repro.explore`` bytes for a job's pareto-cell config."""
    pareto = [s for s in expand_shards(spec) if s.cell == PARETO][0]
    result = repro.explore(spec.source, alloc=spec.alloc,
                           config=pareto.explore_config(), store=store)
    assert result.ok
    return result.front.to_json()


def run_campaign(jobs: Sequence[JobSpec], root, workers: int
                 ) -> Tuple[float, Dict[str, str], MetricsRegistry]:
    """Submit every job to a fresh queue, drain it as one campaign.

    Returns (wall seconds, job_id -> merged-front bytes, metrics).
    """
    queue = JobQueue(root / "queue")
    records = [queue.submit(spec) for spec in jobs]
    metrics = MetricsRegistry()
    orchestrator = CampaignOrchestrator(
        queue, records, store=root / "store",
        config=OrchestratorConfig(workers=workers, poll=0.02,
                                  isolate_stores=True),
        metrics=metrics)
    t0 = time.perf_counter()
    results = orchestrator.run()
    elapsed = time.perf_counter() - t0
    fronts = {}
    for record in records:
        result = results[record.job_id]
        assert result.ok, f"job {record.job_id}: {result.error}"
        fronts[record.job_id] = result.front.to_json()
    return elapsed, fronts, metrics


def run_all(gcd_jobs: int, test2_jobs: int, workers: int, quick: bool,
            min_speedup: float, out_root) -> Tuple[Dict, int]:
    """The whole experiment; returns (report, exit code)."""
    jobs = build_jobs(gcd_jobs, test2_jobs)
    print(f"campaign: {len(jobs)} jobs "
          f"({gcd_jobs} gcd + {test2_jobs} test2), "
          f"{sum(len(expand_shards(s)) for s in jobs)} shards")

    serial_s, serial_fronts, _ = run_campaign(
        jobs, out_root / "serial", workers=1)
    print(f"serial  (1 worker):  {serial_s:7.1f}s")
    parallel_s, parallel_fronts, metrics = run_campaign(
        jobs, out_root / "parallel", workers=workers)
    print(f"parallel ({workers} workers): {parallel_s:7.1f}s")

    identical = sum(serial_fronts[jid] == parallel_fronts[jid]
                    for jid in serial_fronts)
    # Reference jobs: first gcd job and first test2 job against a
    # plain (unsharded) repro.explore run.
    references = {}
    for label, spec in (("gcd", jobs[0]), ("test2", jobs[gcd_jobs])):
        expected = serial_reference(spec, out_root / f"ref-{label}")
        jid = spec.job_id()
        references[label] = (parallel_fronts[jid] == expected
                             and serial_fronts[jid] == expected)

    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    cpus = _cpus()
    report = {
        "workload": {"gcd_jobs": gcd_jobs, "test2_jobs": test2_jobs,
                     "knobs": KNOBS, "workers": workers,
                     "quick": quick},
        "cpus": cpus,
        "jobs": len(jobs),
        "shards": int(metrics.value("service.shards_total")),
        "steals": int(metrics.value("service.steals")),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "identical_jobs": identical,
        "reference_identity": references,
    }
    code = 0
    if identical != len(jobs):
        print(f"FAIL: only {identical}/{len(jobs)} merged fronts are "
              f"byte-identical between 1 and {workers} workers",
              file=sys.stderr)
        code = 3
    for label, same in references.items():
        if not same:
            print(f"FAIL: {label}: campaign front differs from the "
                  f"serial repro.explore reference", file=sys.stderr)
            code = 3
    if not quick and speedup < min_speedup:
        if cpus >= workers:
            print(f"FAIL: {workers}-worker speedup {speedup:.2f}x < "
                  f"{min_speedup}x", file=sys.stderr)
            code = 3
        else:
            print(f"NOTE: only {cpus} CPU(s) available for "
                  f"{workers} workers; the {min_speedup}x wall-clock "
                  f"requirement is not asserted on this host",
                  file=sys.stderr)
    return report, code


def _print_report(report: Dict) -> None:
    print(f"merged fronts identical: "
          f"{report['identical_jobs']}/{report['jobs']} jobs; "
          f"serial-explore reference: "
          f"{report['reference_identity']}")
    print(f"throughput: {report['speedup']:.2f}x at "
          f"{report['workload']['workers']} workers on "
          f"{report['cpus']} CPU(s) "
          f"({report['serial_seconds']:.1f}s -> "
          f"{report['parallel_seconds']:.1f}s, "
          f"{report['steals']} steals)")


def test_service_campaign_matches_serial(benchmark, tmp_path):
    """Tiny campaign: 2-worker merge equals the 1-worker merge."""
    from .conftest import once
    jobs = build_jobs(2, 1)
    _, one, _ = run_campaign(jobs, tmp_path / "one", workers=1)
    _, two, _ = once(benchmark, lambda: run_campaign(
        jobs, tmp_path / "two", workers=2))
    assert one == two


def main(argv: Optional[Sequence[str]] = None) -> int:
    from pathlib import Path
    import tempfile
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="few jobs; identity is enforced, "
                             "wall-clock ratios are not")
    parser.add_argument("--gcd-jobs", type=int, default=GCD_JOBS)
    parser.add_argument("--test2-jobs", type=int, default=TEST2_JOBS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--min-speedup", type=float,
                        default=MIN_SPEEDUP)
    parser.add_argument("--out", default="BENCH_service.json",
                        help="report path (BENCH_service.json)")
    args = parser.parse_args(argv)
    gcd_jobs = 3 if args.quick else args.gcd_jobs
    test2_jobs = 1 if args.quick else args.test2_jobs
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        report, code = run_all(gcd_jobs, test2_jobs, args.workers,
                               args.quick, args.min_speedup,
                               Path(tmp))
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    _print_report(report)
    print(f"report written to {args.out}")
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Experiment: search-strategy quality at equal evaluation budget.

Three claims about the strategy layer (``repro.search``), each checked
on the paper's designs:

* **identity** — ``TransformSearch`` running the default ``greedy``
  strategy is byte-identical to the frozen pre-refactor loop
  (``repro.search.reference``): same best, lineage, history and
  counters under fixed seeds.  Enforced in every mode; this is the
  refactor's contract.
* **quality** — with the same ``max_evaluations`` budget, the macro or
  portfolio strategy finds a strictly better best cost than greedy on
  the ``test2`` power landscape (a grid over seeds and neighborhood
  caps; greedy stalls when its one-rewrite neighborhood is tight,
  chains and racing do not).
* **warm start** — an exploration seeded from a prior campaign's
  transfer front (``ExploreConfig.warm_start_transfer``) reaches the
  cold-from-scratch run's final front quality (hypervolume proxy) in
  strictly fewer scheduled evaluations at a shifted clock context.

The ``--quick`` mode (the CI ``bench-search`` job) runs only the
identity gate — it is machine-independent and must never flake; the
quality and warm-start gates run in the full mode.  The report is
written to ``BENCH_search.json`` either way.

Run standalone:  PYTHONPATH=src python benchmarks/bench_search_quality.py
"""

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.circuits import circuit
from repro.core.objectives import POWER, THROUGHPUT, Objective
from repro.core.search import SearchConfig, TransformSearch
from repro.explore.runner import ExploreConfig, ExploreRunner
from repro.hw import dac98_library
from repro.profiling.profiler import profile
from repro.search.reference import reference_search
from repro.sched.types import SchedConfig
from repro.transforms import default_library

LIB = dac98_library()

IDENTITY_CIRCUITS = ("gcd", "test2")
#: quality grid: the power objective on test2 with a tight one-rewrite
#: neighborhood — the regime where greedy's single-step moves stall
QUALITY_CIRCUIT = "test2"
QUALITY_SEEDS = (0, 1)
QUALITY_NEIGHBORHOODS = (2, 3)
QUALITY_BUDGET = 25
WARM_CIRCUIT = "test2"
WARM_CLOCK_FROM = 25.0
WARM_CLOCK_TO = 30.0


def _fixture(name: str):
    c = circuit(name)
    beh = c.behavior()
    return beh, c.allocation, profile(beh, c.traces(beh)).branch_probs


def _search(fix, objective: str, cfg: SearchConfig):
    beh, alloc, probs = fix
    return TransformSearch(default_library(), LIB, alloc,
                           Objective(objective), branch_probs=probs,
                           config=cfg).run(beh)


# -- gate 1: greedy is the legacy loop ---------------------------------

def run_identity(circuits: Sequence[str]) -> Tuple[List[Dict], int]:
    records, divergences = [], 0
    for name in circuits:
        fix = _fixture(name)
        cfg = SearchConfig(max_outer_iters=3, max_moves=2, seed=11,
                           max_candidates_per_seed=12, workers=0)
        got = _search(fix, THROUGHPUT, cfg)
        beh, alloc, probs = fix
        want = reference_search(default_library(), LIB, alloc,
                                Objective(THROUGHPUT), beh,
                                branch_probs=probs, config=cfg)
        identical = (got.best.score == want.best.score
                     and got.best.lineage == want.best.lineage
                     and got.history == want.history
                     and got.generations == want.generations
                     and got.evaluated_count == want.evaluated_count)
        if not identical:
            divergences += 1
        records.append({
            "circuit": name, "identical": identical,
            "strategy_best": got.best.score,
            "reference_best": want.best.score,
            "generations": got.generations,
            "evaluated": got.evaluated_count,
        })
    return records, divergences


# -- gate 2: macro/portfolio beat greedy at equal budget ---------------

def run_quality() -> Tuple[List[Dict], int]:
    fix = _fixture(QUALITY_CIRCUIT)
    cells, wins = [], 0
    for seed in QUALITY_SEEDS:
        for mcs in QUALITY_NEIGHBORHOODS:
            base = dict(max_outer_iters=6, max_moves=2, seed=seed,
                        max_candidates_per_seed=mcs, workers=0,
                        max_evaluations=QUALITY_BUDGET)
            greedy = _search(fix, POWER, SearchConfig(**base))
            macro = _search(fix, POWER,
                            SearchConfig(strategy="macro", **base))
            portfolio = _search(
                fix, POWER, SearchConfig(strategy="portfolio",
                                         portfolio_size=3, **base))
            best = min(macro.best.score, portfolio.best.score)
            win = best < greedy.best.score - 1e-9
            wins += win
            cells.append({
                "circuit": QUALITY_CIRCUIT, "objective": POWER,
                "seed": seed, "neighborhood": mcs,
                "budget": QUALITY_BUDGET,
                "greedy": greedy.best.score,
                "greedy_spent": greedy.telemetry.eval.scheduled,
                "macro": macro.best.score,
                "macro_spent": macro.telemetry.eval.scheduled,
                "portfolio": portfolio.best.score,
                "portfolio_spent":
                    portfolio.telemetry.eval.scheduled,
                "strict_win": win,
            })
    return cells, wins


# -- gate 3: warm-start transfer saves evaluations ---------------------

def _explore(clock: float, store, *, warm: bool,
             generations: int):
    c = circuit(WARM_CIRCUIT)
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    cfg = ExploreConfig(generations=generations, population_size=4,
                        seed=3, max_candidates_per_seed=6,
                        sched=SchedConfig(clock=clock),
                        warm_start_transfer=warm)
    return ExploreRunner(beh, c.allocation, config=cfg,
                         branch_probs=probs, store=store).run()


def run_warm_start(workdir: str) -> Dict:
    import os
    prior_store = os.path.join(workdir, "prior")
    cold_store = os.path.join(workdir, "cold")
    prior = _explore(WARM_CLOCK_FROM, prior_store, warm=False,
                     generations=4)
    cold = _explore(WARM_CLOCK_TO, cold_store, warm=False,
                    generations=4)
    warm = _explore(WARM_CLOCK_TO, prior_store, warm=True,
                    generations=1)
    target = cold.front.hypervolume_proxy()
    reached = warm.front.hypervolume_proxy() >= target - 1e-9
    return {
        "circuit": WARM_CIRCUIT,
        "clock_from": WARM_CLOCK_FROM, "clock_to": WARM_CLOCK_TO,
        "prior_evaluations": prior.telemetry.eval.scheduled,
        "cold_generations": 4,
        "cold_evaluations": cold.telemetry.eval.scheduled,
        "cold_hypervolume": target,
        "warm_generations": 1,
        "warm_evaluations": warm.telemetry.eval.scheduled,
        "warm_hypervolume": warm.front.hypervolume_proxy(),
        "front_reached": reached,
        "saved_evaluations": (cold.telemetry.eval.scheduled
                              - warm.telemetry.eval.scheduled),
    }


def run_all(quick: bool, workdir: str) -> Tuple[Dict, int]:
    identity, divergences = run_identity(
        IDENTITY_CIRCUITS[:1] if quick else IDENTITY_CIRCUITS)
    report: Dict[str, object] = {
        "workload": {"quick": quick,
                     "quality_budget": QUALITY_BUDGET},
        "identity": identity,
    }
    code = 0
    if divergences:
        print(f"FAIL: greedy diverged from the reference loop on "
              f"{divergences} circuit(s)", file=sys.stderr)
        code = 1
    if quick:
        return report, code
    cells, wins = run_quality()
    report["quality"] = cells
    if not wins:
        print("FAIL: no grid cell had macro or portfolio strictly "
              "beat greedy at equal budget", file=sys.stderr)
        code = code or 2
    warm = run_warm_start(workdir)
    report["warm_start"] = warm
    if not (warm["front_reached"]
            and warm["warm_evaluations"] < warm["cold_evaluations"]):
        print("FAIL: warm start did not reach the cold front in "
              "fewer evaluations", file=sys.stderr)
        code = code or 3
    return report, code


def _print_report(report: Dict) -> None:
    for rec in report["identity"]:
        print(f"identity {rec['circuit']}: "
              f"{'identical' if rec['identical'] else 'DIVERGED'} "
              f"({rec['generations']} generations, "
              f"{rec['evaluated']} evaluations)")
    for cell in report.get("quality", ()):
        print(f"quality {cell['circuit']}/{cell['objective']} "
              f"seed={cell['seed']} neighborhood={cell['neighborhood']}"
              f": greedy {cell['greedy']:.2f}, "
              f"macro {cell['macro']:.2f}, "
              f"portfolio {cell['portfolio']:.2f}"
              + ("  [strict win]" if cell["strict_win"] else ""))
    warm = report.get("warm_start")
    if warm:
        print(f"warm-start {warm['circuit']}: cold "
              f"{warm['cold_evaluations']} evals for hypervolume "
              f"{warm['cold_hypervolume']:.4f}; warm "
              f"{warm['warm_evaluations']} evals, reached="
              f"{warm['front_reached']} "
              f"(saved {warm['saved_evaluations']})")


# -- pytest entry point (quick workload only; not tier-1) ---------------

def test_greedy_identity(benchmark):
    """Quick gate: the strategy layer's greedy is the legacy loop."""
    from .conftest import once
    _, divergences = once(
        benchmark, lambda: run_identity(("gcd",)))
    assert divergences == 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="identity gate only (the CI mode); "
                             "quality and warm-start gates need the "
                             "full mode")
    parser.add_argument("--out", default="BENCH_search.json",
                        help="report path (BENCH_search.json)")
    args = parser.parse_args(argv)
    import tempfile
    with tempfile.TemporaryDirectory() as workdir:
        report, code = run_all(args.quick, workdir)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    _print_report(report)
    print(f"report written to {args.out}")
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Shared configuration for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables / figures.  The
heavy experiments (full FACT searches) run exactly once per session via
``benchmark.pedantic(rounds=1, iterations=1)`` and cache their results
in module-scope fixtures, so asserting on several aspects of one
experiment does not re-run it.
"""

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Experiment: evaluation-engine scaling (memoization + workers).

Runs the same seeded FACT search on Test2 (the paper's Example-2
circuit) under three engine configurations:

* **baseline** — serial, cache disabled (``cache_size=0`` skips
  fingerprinting entirely) and ``incremental=False``: the pre-engine
  code path;
* **memo** — serial with the memoization cache (and the default
  incremental region-schedule cache);
* **memo+4w** — memoization plus a 4-worker process pool.

Requirements:

* all three configurations return the *identical* best score, schedule
  length, and transformation lineage (bit-for-bit reproducible seeded
  search, whatever the backend);
* the engine (memo, or memo+workers — whichever is faster on this
  machine) beats the baseline by >= 1.5x wall clock.  On a single-CPU
  container the memoization axis alone carries this; on multicore
  hardware the worker pool adds on top;
* the cache hit rate is substantial (>= 0.3) at this search budget.

Run standalone:  PYTHONPATH=src python benchmarks/bench_search_scaling.py
"""

import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.bench.circuits import circuit
from repro.core.fact import Fact, FactConfig, FactResult
from repro.core.objectives import THROUGHPUT
from repro.core.search import SearchConfig
from repro.hw import dac98_library
from repro.profiling.profiler import profile

CIRCUIT = "test2"

#: A budget deep enough (wide ``in_set``, 3 moves per lineage) that
#: different lineages frequently reach equivalent candidates.
SEARCH = SearchConfig(max_outer_iters=8, max_moves=3, in_set_size=5,
                      seed=2, max_candidates_per_seed=48)

CONFIGS: Dict[str, Tuple[int, int, bool]] = {
    # name -> (workers, cache_size, incremental)
    "baseline": (0, 0, False),
    "memo": (0, 4096, True),
    "memo+4w": (4, 4096, True),
}


def run_search(workers: int, cache_size: int,
               incremental: bool) -> Tuple[FactResult, float]:
    """One seeded FACT run on Test2; returns (result, wall seconds)."""
    c = circuit(CIRCUIT)
    lib = dac98_library()
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    search = replace(SEARCH, workers=workers, cache_size=cache_size,
                     incremental=incremental)
    fact = Fact(lib, config=FactConfig(sched=c.sched, search=search))
    start = time.perf_counter()
    res = fact.optimize(beh, c.allocation, branch_probs=probs,
                        objective=THROUGHPUT)
    return res, time.perf_counter() - start


_RUNS: Dict[str, Tuple[FactResult, float]] = {}


def _run(name: str) -> Tuple[FactResult, float]:
    if name not in _RUNS:
        _RUNS[name] = run_search(*CONFIGS[name])
    return _RUNS[name]


def _report() -> str:
    base_time = _run("baseline")[1]
    lines = [f"search scaling on {CIRCUIT} "
             f"(seed={SEARCH.seed}, {SEARCH.max_outer_iters} outer iters)",
             f"{'config':10} {'wall s':>8} {'speedup':>8} "
             f"{'best len':>9} {'hit rate':>9}"]
    for name in CONFIGS:
        res, wall = _run(name)
        tel = res.telemetry
        hit = tel.cache_hit_rate if tel is not None else 0.0
        lines.append(f"{name:10} {wall:8.2f} {base_time / wall:8.2f} "
                     f"{res.best_length:9.2f} {hit:9.2f}")
    return "\n".join(lines)


def test_engine_results_identical(benchmark):
    """Every backend/cache combination finds the same optimum."""
    from .conftest import once
    runs = once(benchmark, lambda: {n: _run(n) for n in CONFIGS})
    base = runs["baseline"][0]
    for name in ("memo", "memo+4w"):
        res = runs[name][0]
        assert res.best_length == base.best_length, name
        assert res.best.score == base.best.score, name
        assert res.best.lineage == base.best.lineage, name
        assert res.search.history == base.search.history, name


def test_engine_speedup(benchmark):
    """The engine beats the cache-less serial baseline by >= 1.5x."""
    from .conftest import once
    runs = once(benchmark, lambda: {n: _run(n) for n in CONFIGS})
    print()
    print(_report())
    base_time = runs["baseline"][1]
    best_time = min(runs["memo"][1], runs["memo+4w"][1])
    speedup = base_time / best_time
    assert speedup >= 1.5, f"engine speedup {speedup:.2f}x < 1.5x"
    memo_tel = runs["memo"][0].telemetry
    assert memo_tel is not None
    assert memo_tel.cache_hit_rate >= 0.3


if __name__ == "__main__":
    for _name in CONFIGS:
        _run(_name)
    print(_report())
    base = _run("baseline")[0]
    assert all(_run(n)[0].best_length == base.best_length
               for n in CONFIGS), "backends disagree on the optimum"
    speedup = _run("baseline")[1] / min(_run("memo")[1],
                                        _run("memo+4w")[1])
    print(f"engine speedup: {speedup:.2f}x "
          f"({'OK' if speedup >= 1.5 else 'BELOW TARGET'} >= 1.5x)")

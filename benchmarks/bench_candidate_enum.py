"""Experiment: incremental candidate enumeration vs. full re-scan.

Replays the enumeration workload of a search campaign on the paper's
``test2`` design (Figure 2): a population of behaviors per generation,
every member enumerated, a capped set of candidates applied, and the
children folded into the next population.  Two
:class:`~repro.rewrite.driver.RewriteDriver` modes run in lockstep over
the *identical* behavior sequence:

* **incremental** — enumeration results memoized per behavior (raw
  fingerprint) and, for children the driver itself applied, LOCAL
  patterns carry cached matches forward and re-scan only their
  ``rescan_roots`` against the rewrite's dirty set;
* **full** — ``incremental=False`` with a disabled memo: every request
  re-runs every pattern's whole-behavior scan (the legacy
  ``TransformLibrary.candidates`` cost model).

Requirements:

* at every single request both modes enumerate the **identical match
  set** (compared by canonical candidate sort keys: transform name,
  footprint, match fingerprint) — any divergence is a hard failure;
* over the whole campaign the incremental driver's enumeration time is
  >= 2x faster than the full re-scan baseline.

The ``--quick`` mode (used by the CI ``bench-enumeration`` job) runs a
shorter campaign and enforces only the equivalence requirement —
wall-clock ratios are reported but not asserted, so a loaded CI machine
cannot produce a spurious failure; the report is still written to
``BENCH_enum.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_candidate_enum.py
"""

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.circuits import circuit
from repro.core.evalcache import cached_raw_fingerprint
from repro.errors import ReproError
from repro.rewrite import RewriteDriver
from repro.transforms import default_library

CIRCUIT = "test2"
#: Enough generations for the campaign to reach the regime real
#: searches spend most of their time in: grown (unrolled) graphs with a
#: persistent elite — where memoized and carried enumeration pays.
GENERATIONS = 16
POPULATION = 6
MAX_APPLIES_PER_SEED = 8
MIN_SPEEDUP = 2.0


def run_campaign(name: str, generations: int, population: int
                 ) -> Tuple[Dict, int]:
    """Drive both enumeration modes over one campaign.

    Returns (JSON-ready record, divergent request count).  Selection is
    deterministic (children sorted by raw fingerprint), so the workload
    — and therefore the comparison — is reproducible bit-for-bit.
    """
    behavior = circuit(name).behavior()
    inc = RewriteDriver(default_library(), incremental=True)
    full = RewriteDriver(default_library(), incremental=False,
                         cache_size=0)
    divergences = 0
    requests = 0
    seeds = [behavior]
    seen = {cached_raw_fingerprint(behavior)}
    for _gen in range(generations):
        children: List = []
        for seed in seeds:
            got = inc.candidates(seed)
            want = full.candidates(seed)
            requests += 1
            if [c.sort_key for c in got] != [c.sort_key for c in want]:
                divergences += 1
            for cand in got[:MAX_APPLIES_PER_SEED]:
                try:
                    children.append(inc.apply(seed, cand))
                except ReproError:
                    continue
        fresh = []
        for child in sorted(children, key=cached_raw_fingerprint):
            fp = cached_raw_fingerprint(child)
            if fp not in seen:
                seen.add(fp)
                fresh.append(child)
        # Elitist selection, like the real search: surviving seeds are
        # re-enumerated next generation (memo hits), fresh children fill
        # the remaining slots (incremental re-enumeration).
        keep = seeds[:max(1, population // 2)]
        seeds = (keep + fresh)[:population]
        if not fresh:
            break
    inc_s = inc.stats.enum_seconds
    full_s = full.stats.enum_seconds
    record = {
        "circuit": name,
        "generations": generations,
        "population": population,
        "requests": requests,
        "divergences": divergences,
        "incremental_seconds": inc_s,
        "full_seconds": full_s,
        "speedup": full_s / inc_s if inc_s > 0 else 0.0,
        "incremental": inc.stats.as_dict(),
        "full": full.stats.as_dict(),
    }
    return record, divergences


def run_all(generations: int, population: int, quick: bool,
            min_speedup: float) -> Tuple[Dict, int]:
    """The whole experiment; returns (report, exit code)."""
    record, divergences = run_campaign(CIRCUIT, generations, population)
    report = {
        "workload": {"circuit": CIRCUIT, "generations": generations,
                     "population": population,
                     "max_applies_per_seed": MAX_APPLIES_PER_SEED,
                     "quick": quick},
        "campaign": record,
    }
    code = 0
    if divergences:
        print(f"FAIL: {divergences}/{record['requests']} requests "
              f"enumerated different match sets in the two modes",
              file=sys.stderr)
        code = 1
    elif not quick and record["speedup"] < min_speedup:
        print(f"FAIL: enumeration speedup {record['speedup']:.2f}x "
              f"< {min_speedup}x", file=sys.stderr)
        code = 2
    return report, code


def _print_report(report: Dict) -> None:
    rec = report["campaign"]
    inc, full = rec["incremental"], rec["full"]
    print(f"{rec['circuit']}: {rec['requests']} enumeration requests "
          f"over {rec['generations']} generations "
          f"(population {rec['population']})")
    print(f"  incremental: {rec['incremental_seconds'] * 1000:8.1f} ms "
          f"({inc['memo_hits']} memo hits, "
          f"{inc['incremental_scans']} incremental / "
          f"{inc['full_scans']} full scans; "
          f"{inc['carried_matches']} carried, "
          f"{inc['rescanned_matches']} rescanned)")
    print(f"  full rescan: {rec['full_seconds'] * 1000:8.1f} ms "
          f"({full['full_scans']} full scans)")
    print(f"  speedup: {rec['speedup']:.2f}x, "
          f"divergences: {rec['divergences']}")


# -- pytest entry point (quick workload only; not tier-1) ---------------

def test_enum_identical(benchmark):
    """Quick campaign: both modes enumerate identical match sets."""
    from .conftest import once
    rec, divergences = once(
        benchmark, lambda: run_campaign(CIRCUIT, 3, 4))
    assert divergences == 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short campaign; match-set equivalence is "
                             "enforced, the wall-clock ratio is not")
    parser.add_argument("--generations", type=int, default=GENERATIONS,
                        help=f"campaign generations ({GENERATIONS})")
    parser.add_argument("--population", type=int, default=POPULATION,
                        help=f"behaviors kept per generation "
                             f"({POPULATION})")
    parser.add_argument("--min-speedup", type=float,
                        default=MIN_SPEEDUP,
                        help=f"required enumeration speedup "
                             f"({MIN_SPEEDUP})")
    parser.add_argument("--out", default="BENCH_enum.json",
                        help="report path (BENCH_enum.json)")
    args = parser.parse_args(argv)
    generations = 3 if args.quick else args.generations
    population = 4 if args.quick else args.population
    report, code = run_all(generations, population, args.quick,
                           args.min_speedup)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    _print_report(report)
    print(f"report written to {args.out}")
    return code


if __name__ == "__main__":
    sys.exit(main())

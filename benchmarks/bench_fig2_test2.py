"""Experiment: Example 2 / Figures 2–3 — scheduling-guided reassociation.

Test2 runs two independent loops concurrently: L1 (one addition per
element) and L3 (``(y1[m]+y2[m]) − (y3[m]+y4[m])``).  Untransformed, L3
needs two adders per iteration while L1 holds one, so L3 initiates only
every other cycle while L1 is live; rewriting its body to
``(y1−y3) + (y2−y4)`` retargets it at the free subtracters and one
iteration of L3 starts every cycle (Figure 3(b)).

Paper numbers: ≈510 cycles untransformed, ≈408 transformed, a 1.25×
improvement (Table 2's 2.0 → 2.5).
"""

import pytest

from repro.bench import circuit
from repro.bench.table2 import default_search_config, run_throughput_row
from repro.cdfg import OpKind
from repro.core import THROUGHPUT

from .conftest import once


@pytest.fixture(scope="module")
def row(request):
    return run_throughput_row("test2")


def test_fig2_schedule_lengths(benchmark):
    from repro.bench import phase_diagram

    row = once(benchmark, lambda: run_throughput_row("test2"))
    print("\n=== Example 2 / Fig. 2 (Test2) ===")
    print("untransformed phases (paper Fig. 2(b)):")
    print(phase_diagram(row.m1.result))
    print("transformed phases (paper Fig. 2(c)):")
    print(phase_diagram(row.fact.result))
    print(f"untransformed schedule: {row.m1.length:.0f} cycles "
          f"(paper ~510)")
    print(f"transformed schedule:   {row.fact.length:.0f} cycles "
          f"(paper ~408)")
    print(f"improvement: {row.fact_over_m1:.2f}x (paper 1.25x)")
    assert row.m1.length == pytest.approx(510, rel=0.05)
    assert row.fact.length == pytest.approx(408, rel=0.05)
    assert row.fact_over_m1 == pytest.approx(1.25, abs=0.08)

    # The winning move is Example 2's reassociation.
    assert any("associativity" in step for step in row.fact.lineage), \
        row.fact.lineage

    # Figure 3's resource story: the rewritten L3 body trades an adder
    # for a subtracter.
    original = row.m1.behavior
    rewritten = row.fact.behavior

    def count(beh, kind):
        return sum(1 for n in beh.graph if n.kind is kind)

    assert count(original, OpKind.ADD) == 3   # L1's + L3's two
    assert count(rewritten, OpKind.ADD) == 2
    assert count(rewritten, OpKind.SUB) == 2


def test_fig2_flamel_sees_no_gain(benchmark):
    """Flamel's static metrics rate both shapes identical — only the
    schedule knows the difference (the paper's central claim)."""
    row = once(benchmark, lambda: run_throughput_row("test2"))
    assert row.flamel.length == pytest.approx(row.m1.length, rel=0.02)

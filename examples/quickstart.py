#!/usr/bin/env python3
"""Quickstart: compile a behavior, schedule it, and optimize it.

This walks the whole FACT pipeline on the paper's GCD benchmark:

1. compile BDL source into a CDFG (:mod:`repro.lang`);
2. execute it with the interpreter to see it is a real program;
3. profile it against random traces (branch probabilities);
4. schedule it (M1 — no transformations) into a state transition graph;
5. run the FACT transformation search and compare.

Run:  python examples/quickstart.py
"""

from repro.bench import allocation_for
from repro.cdfg import execute
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.profiling import profile, uniform_traces
from repro.sched import Scheduler

GCD_SOURCE = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def main() -> None:
    library = dac98_library()
    allocation = allocation_for("gcd")

    # 1. Compile.
    behavior = compile_source(GCD_SOURCE)
    print(f"compiled {behavior.name!r}: "
          f"{behavior.graph.stats()['nodes']} CDFG nodes")

    # 2. Execute.
    result = execute(behavior, {"a": 36, "b": 60})
    print(f"gcd(36, 60) = {result.outputs['g']}  "
          f"({result.loop_iterations['L1']} loop iterations)")

    # 3. Profile.
    traces = uniform_traces(behavior, 16, lo=1, hi=255, seed=7)
    prof = profile(behavior, traces)
    print(f"profiled {prof.runs} traces; loop continues with "
          f"p={prof.branch_probs[behavior.loop('L1').cond]:.3f}")

    # 4. Schedule (the M1 baseline).
    m1 = Scheduler(behavior, library, allocation,
                   branch_probs=prof.branch_probs).schedule()
    print(f"M1 schedule: {m1.n_states()} states, "
          f"{m1.average_length():.1f} expected cycles per run")

    # 5. Optimize with FACT.
    fact = Fact(library, config=FactConfig(
        search=SearchConfig(max_outer_iters=4, seed=1)))
    res = fact.optimize(behavior, allocation,
                        branch_probs=prof.branch_probs,
                        objective=THROUGHPUT)
    print(f"FACT schedule: {res.best_length:.1f} expected cycles "
          f"({res.speedup:.2f}x speedup)")
    print("applied transformations:")
    for step in res.best.lineage:
        print(f"  - {step}")

    # The optimized behavior still computes gcd.
    check = execute(res.best.behavior, {"a": 36, "b": 60})
    assert check.outputs["g"] == 12
    print("functional check passed: optimized design still computes "
          "gcd(36, 60) = 12")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compile a behavior, schedule it, and optimize it.

This walks the whole FACT pipeline on the paper's GCD benchmark using
the top-level facade (``repro.compile`` / ``repro.schedule`` /
``repro.optimize``):

1. compile BDL source into a CDFG;
2. execute it with the interpreter to see it is a real program;
3. profile it against random traces (branch probabilities);
4. schedule it (M1 — no transformations) into a state transition graph;
5. run the FACT transformation search and compare.

Run:  python examples/quickstart.py
"""

import repro
from repro.bench import allocation_for
from repro.cdfg import execute
from repro.profiling import profile, uniform_traces

GCD_SOURCE = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def main() -> None:
    allocation = allocation_for("gcd")

    # 1. Compile.
    behavior = repro.compile(GCD_SOURCE)
    print(f"compiled {behavior.name!r}: "
          f"{behavior.graph.stats()['nodes']} CDFG nodes")

    # 2. Execute.
    result = execute(behavior, {"a": 36, "b": 60})
    print(f"gcd(36, 60) = {result.outputs['g']}  "
          f"({result.loop_iterations['L1']} loop iterations)")

    # 3. Profile.
    traces = uniform_traces(behavior, 16, lo=1, hi=255, seed=7)
    prof = profile(behavior, traces)
    print(f"profiled {prof.runs} traces; loop continues with "
          f"p={prof.branch_probs[behavior.loop('L1').cond]:.3f}")

    # 4. Schedule (the M1 baseline).
    m1 = repro.schedule(behavior, alloc=allocation,
                        branch_probs=prof.branch_probs)
    print(f"M1 schedule: {m1.n_states()} states, "
          f"{m1.average_length():.1f} expected cycles per run")

    # 5. Optimize with FACT.
    config = repro.ReproConfig(
        search=repro.SearchConfig(max_outer_iters=4, seed=1))
    res = repro.optimize(behavior, alloc=allocation, config=config,
                         branch_probs=prof.branch_probs)
    print(f"FACT schedule: {res.best_length:.1f} expected cycles "
          f"({res.speedup:.2f}x speedup)")
    print("applied transformations:")
    for step in res.best.lineage:
        print(f"  - {step}")
    tel = res.telemetry
    print(f"engine: {tel.evaluations} evaluations over "
          f"{len(tel.generations)} generations, cache hit rate "
          f"{tel.cache_hit_rate:.0%}")

    # The optimized behavior still computes gcd.
    check = execute(res.best.behavior, {"a": 36, "b": 60})
    assert check.outputs["g"] == 12
    print("functional check passed: optimized design still computes "
          "gcd(36, 60) = 12")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Example 1 walkthrough: the paper's worked power estimate for TEST1.

Reconstructs the Figure-1(c) schedule, runs the Markov analysis of the
paper's reference [10], prices every component with the Table-1 library,
and performs the supply-voltage scaling — printing our numbers next to
the paper's at each step.

Run:  python examples/test1_power_model.py
"""

from repro.bench import (test1_behavior, test1_branch_probs,
                         test1_fig1c_stg)
from repro.hw import table1_allocation, table1_library
from repro.power import estimate_power, scaled_vdd_for_schedule
from repro.sched import Scheduler, SchedConfig
from repro.stg import average_schedule_length, state_probabilities


def main() -> None:
    behavior = test1_behavior()
    library = table1_library()

    # The Figure-1(c) STG (reconstructed from the paper's arithmetic).
    stg = test1_fig1c_stg(behavior)
    print(f"Figure-1(c) STG: {len(stg)} states")

    length = average_schedule_length(stg)
    print(f"average schedule length: {length:.2f} cycles "
          f"(paper: 119.11)")

    probs = state_probabilities(stg)
    print("state probabilities (paper P_S5 = 0.404):")
    for sid in stg.state_ids():
        label = stg.states[sid].label
        print(f"  {label}: {probs[sid]:.3f}")

    est = estimate_power(stg, behavior.graph, library, vdd=5.0)
    print("\nper-component energy (Vdd^2 units):")
    paper = {"incr1": 34.27, "comp1": 108.75, "cla1": 63.64,
             "w_mult1": 41.70}
    for fu, energy in sorted(est.fu_energy.items()):
        print(f"  {fu:10} {energy:7.2f}  (paper {paper.get(fu, 0):.2f})")
    print(f"  {'registers':10} {est.register_energy:7.2f}  (paper 99.38)")
    print(f"  {'memory':10} {est.memory_energy:7.2f}  (paper 93.10)")
    print(f"total energy: {est.total_energy:.2f} (paper 665.58)")

    # Vdd scaling against the untransformed design's 151.30 cycles.
    vdd = scaled_vdd_for_schedule(length, 151.30)
    power = est.total_energy * vdd ** 2 / 151.30
    print(f"\nscaled Vdd: {vdd:.2f} V (paper 4.29 V)")
    print(f"power: {power:.2f} / cycle_time (paper 80.96)")

    # For comparison: what our own scheduler produces for TEST1 under
    # the same branch probabilities.
    result = Scheduler(behavior, library, table1_allocation(),
                       SchedConfig(),
                       test1_branch_probs(behavior)).schedule()
    print(f"\nour scheduler on the same behavior: "
          f"{result.average_length():.2f} cycles, "
          f"{result.n_states()} states")


if __name__ == "__main__":
    main()

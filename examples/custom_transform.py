#!/usr/bin/env python3
"""Extending the framework with a user-defined transformation.

The paper: "Other transformations can easily be incorporated within the
framework."  This walkthrough defines a new rewrite — ``x + x → x << 1``
(a doubling add becomes a free constant shift) — registers it in the
library, and lets the FACT search decide where it pays off.

The demo behavior folds a vector through repeated doublings and
additions under a single-adder allocation; freeing the doublings from
the adder lets the loop pipeline tighter.

Run:  python examples/custom_transform.py
"""

from repro.cdfg import OpKind, execute
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.rewrite import LOCAL, Match
from repro.transforms import Transformation, default_library
from repro.transforms.cleanup import fresh_const, place_like


class DoubleToShift(Transformation):
    """Rewrite ``x + x`` into ``x << 1`` (wiring, in hardware).

    Written against the pattern API: a LOCAL scope plus ``match_at``
    lets the rewrite driver re-scan only nodes a previous rewrite
    touched, and the picklable :class:`Match` (footprint + params)
    replaces the old closure-based candidate.
    """

    name = "double2shift"
    scope = LOCAL

    def match_at(self, behavior, analyses, nid):
        g = behavior.graph
        if g.nodes[nid].kind is not OpKind.ADD:
            return []
        ins = g.data_inputs(nid)
        if len(ins) != 2 or ins[0] != ins[1]:
            return []
        return [Match(self.name, f"add#{nid} x+x -> x<<1",
                      (nid,), (nid, ins[0]))]

    def apply(self, behavior, match):
        nid, src = match.params
        g = behavior.graph
        shl = g.add_node(OpKind.SHL)
        g.set_data_edge(src, shl, 0)
        g.set_data_edge(fresh_const(behavior, 1), shl, 1)
        for cond, pol in g.control_inputs(nid):
            g.add_control_edge(cond, shl, pol)
        place_like(behavior, shl, nid)
        g.replace_uses(nid, shl)

    def dependencies(self, behavior, match):
        nid, src = match.params
        return frozenset((nid, src))


SOURCE = """
proc fold(array x[64], array y[64]) {
    for (i = 0; i < 64; i = i + 1) {
        var v = x[i];
        var d = v + v;
        var q = d + d;
        y[i] = q + i;
    }
}
"""


def main() -> None:
    library = dac98_library()
    behavior = compile_source(SOURCE)
    allocation = Allocation({"a1": 1, "cp1": 1, "i1": 1})

    transforms = default_library().add(DoubleToShift())
    print("library now contains:", ", ".join(transforms.names()))

    fact = Fact(library, transforms=transforms, config=FactConfig(
        search=SearchConfig(max_outer_iters=5, seed=4)))
    result = fact.optimize(behavior, allocation, objective=THROUGHPUT)

    print(f"schedule: {result.initial_length:.0f} -> "
          f"{result.best_length:.0f} cycles "
          f"({result.speedup:.2f}x)")
    for step in result.best.lineage:
        print(f"  - {step}")
    assert any("double2shift" in step for step in result.best.lineage), \
        "the search should pick the user transformation here"

    # The optimized behavior still folds correctly.
    data = list(range(64))
    ref = execute(behavior, arrays={"x": data})
    got = execute(result.best.behavior, arrays={"x": data})
    assert got.arrays["y"] == ref.arrays["y"]
    print("functional check passed")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Power optimization of the FIR filter (Table 2, P-opt columns).

FACT's power mode trades the throughput headroom created by
transformations for quadratic energy savings: after strength reduction
removes the multiplier traffic, the filter runs far faster than the
baseline, so the supply voltage can be scaled down until the schedule
stretches back to the baseline's length (Example 1's iso-throughput
rule).

Run:  python examples/fir_power.py
"""

from repro.bench import circuit
from repro.core import Fact, FactConfig, POWER, SearchConfig
from repro.hw import dac98_library
from repro.power import estimate_power, scaled_vdd_for_schedule
from repro.profiling import profile
from repro.sched import Scheduler
from repro.synth import simulate_power, synthesize


def main() -> None:
    library = dac98_library()
    c = circuit("fir")
    behavior = c.behavior()
    prof = profile(behavior, c.traces(behavior))

    # Baseline: schedule without transformations, estimate power at 5V.
    m1 = Scheduler(behavior, library, c.allocation, c.sched,
                   prof.branch_probs).schedule()
    m1_est = estimate_power(m1.stg, behavior.graph, library, vdd=5.0)
    print(f"M1: {m1.average_length():.0f} cycles, "
          f"power {m1_est.power:.1f} units at 5.0 V")
    print("  energy breakdown:", {k: round(v, 1)
                                  for k, v in m1_est.fu_energy.items()})

    # FACT in power mode.
    fact = Fact(library, config=FactConfig(
        sched=c.sched,
        search=SearchConfig(max_outer_iters=8, seed=2)))
    res = fact.optimize(behavior, c.allocation,
                        branch_probs=prof.branch_probs, objective=POWER)
    report = res.power_report(library)
    print(f"FACT: {res.best_length:.0f} cycles at 5 V; scaling to "
          f"{report['scaled_vdd']:.2f} V restores the baseline length")
    print(f"power {report['initial_power']:.1f} -> "
          f"{report['optimized_power']:.1f} units "
          f"({100 * report['reduction']:.0f}% reduction; paper: "
          f"7.6 -> 1.7 mW, 78%)")
    print("transformations:", list(res.best.lineage))

    # RTL-level synthesis of the optimized design.
    assert res.best.result is not None
    design = synthesize(res.best.result)
    print(f"synthesized datapath: "
          f"{sum(len(v) for v in design.binding.instances.values())} FU "
          f"instances, {design.registers.count} registers, "
          f"{design.interconnect.mux_inputs} mux inputs, "
          f"area {design.area.total:.1f}")

    # Cross-check the closed-form estimate with activity simulation.
    sim = simulate_power(res.best.result, runs=100, seed=5, rho=0.9)
    print(f"activity-based simulation: power {sim.power:.1f} units at "
          f"activity {sim.activity:.2f} (correlated stimuli)")


if __name__ == "__main__":
    main()

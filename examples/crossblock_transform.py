#!/usr/bin/env python3
"""Example 3 walkthrough: a transformation applied across basic blocks.

Reproduces the paper's Figure 4 story step by step: a subtraction whose
operands arrive through join operations is recognized as distributable
(``a·b − a·c → a·(b − c)``) on the execution thread where both joins
select their multiply inputs, while every other thread keeps a fallback
implementation.  Mutual exclusion between the threads keeps the result
compact.

Run:  python examples/crossblock_transform.py
"""

from repro.bench import (example3_allocation, example3_behavior,
                         matched_path_probs)
from repro.cdfg import GuardAnalysis, OpKind, behavior_to_dot, execute
from repro.hw import dac98_library
from repro.sched import SchedConfig, Scheduler
from repro.transforms import Distributivity


def count(behavior, kind):
    return sum(1 for n in behavior.graph if n.kind is kind)


def main() -> None:
    library = dac98_library()
    behavior = example3_behavior()
    print("original CDFG:", behavior.graph.stats())
    print(f"  multiplies: {count(behavior, OpKind.MUL)}, "
          f"subtractions: {count(behavior, OpKind.SUB)}, "
          f"joins: {count(behavior, OpKind.JOIN)}")

    # 1. Recognition across joins.
    candidates = Distributivity().find(behavior)
    cross = [c for c in candidates if "across joins" in c.description]
    print(f"\nfound {len(candidates)} distributivity candidates, "
          f"{len(cross)} across basic blocks:")
    for cand in cross:
        print(f"  - {cand.description}")

    # 2. Application.
    transformed = cross[0].apply(behavior)
    print(f"\nafter the rewrite: multiplies "
          f"{count(transformed, OpKind.MUL)}, subtractions "
          f"{count(transformed, OpKind.SUB)}")
    guards = GuardAnalysis(transformed.graph)
    subs = [n.id for n in transformed.graph if n.kind is OpKind.SUB]
    print(f"the two implementations are mutually exclusive: "
          f"{guards.mutually_exclusive(*subs)}")

    # 3. Schedules on the matched thread (condition C true).
    alloc = example3_allocation()
    for label, beh in (("original", behavior),
                       ("transformed", transformed)):
        probs = matched_path_probs(behavior, take_c=True)
        result = Scheduler(beh, library, alloc, SchedConfig(),
                           probs).schedule()
        datapath = result.average_length() - 2  # minus cond + latch
        print(f"{label}: {datapath:.0f} datapath cycles on the matched "
              f"thread")

    # 4. Functionality on every thread.
    for c in (1, -1):
        stim = {"x1": 3, "x2": 11, "x3": 4, "x4": 50, "x5": 8, "c": c}
        a = execute(behavior, stim).outputs["r"]
        b = execute(transformed, stim).outputs["r"]
        thread = "matched (C)" if c > 0 else "fallback (!C)"
        print(f"thread {thread}: original {a}, transformed {b}")
        assert a == b

    # 5. DOT export for inspection.
    dot = behavior_to_dot(transformed)
    print(f"\nDOT export: {len(dot.splitlines())} lines "
          f"(render with `dot -Tpng`)")


if __name__ == "__main__":
    main()

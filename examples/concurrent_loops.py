#!/usr/bin/env python3
"""Example 2 walkthrough: scheduling-guided transformation of Test2.

Two independent loops execute concurrently under a shared allocation
(2 adders, 2 subtracters).  The untransformed L3 body needs two adders
per iteration while L1 occupies one, so L3 only initiates every other
cycle; re-associating ``(y1+y2)-(y3+y4)`` into ``(y1-y3)+(y2-y4)``
retargets it at the idle subtracters and both loops run at one
iteration per cycle — a fact only visible to a scheduler, which is why
Flamel's static heuristics never apply this rewrite.

Run:  python examples/concurrent_loops.py
"""

from repro.baselines import run_flamel, run_m1
from repro.bench import circuit
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library
from repro.profiling import profile


def main() -> None:
    library = dac98_library()
    c = circuit("test2")
    behavior = c.behavior()
    prof = profile(behavior, c.traces(behavior))
    probs = prof.branch_probs

    m1 = run_m1(behavior, library, c.allocation, c.sched, probs)
    print(f"untransformed (M1): {m1.average_length():.0f} cycles "
          f"(paper ~510)")

    fl = run_flamel(behavior, library, c.allocation, c.sched, probs)
    print(f"Flamel (static heuristics): "
          f"{fl.result.average_length():.0f} cycles — no gain: both "
          f"shapes have identical op counts and tree heights")

    fact = Fact(library, config=FactConfig(
        sched=c.sched, search=SearchConfig(max_outer_iters=6, seed=2)))
    res = fact.optimize(behavior, c.allocation, branch_probs=probs,
                        objective=THROUGHPUT)
    print(f"FACT (schedule-guided): {res.best_length:.0f} cycles "
          f"(paper ~408), {res.speedup:.2f}x")
    print("applied:", list(res.best.lineage))

    print("\nThroughput x1000 (paper Table 2: 2.0 / 2.0 / 2.5):")
    print(f"  M1     {1000 / m1.average_length():.1f}")
    print(f"  Flamel {1000 / fl.result.average_length():.1f}")
    print(f"  FACT   {1000 / res.best_length:.1f}")


if __name__ == "__main__":
    main()

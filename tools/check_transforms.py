#!/usr/bin/env python
"""Transformation-library lint for CI: every transformation must be a
well-formed rewrite pattern.

Checks, over :func:`repro.transforms.default_library` and every bench
circuit:

1. **Pattern API** — each in-library transformation implements
   ``match``/``match_at`` + ``apply`` (no legacy closure-based ``find``
   overriders; those are still *supported* for user code, but the
   shipped library must be fully migrated so the incremental driver
   never falls back).
2. **Footprints** — every enumerated match names at least one concrete
   node, and every named node exists in the graph (a match whose
   footprint has leaked out of the behavior can never be invalidated
   correctly).
3. **Dependencies** — LOCAL patterns must declare a non-empty
   dependency set covering the footprint, the contract the driver's
   carry-forward logic relies on.
4. **Picklability** — matches must survive a pickle round trip (they
   cross process boundaries with checkpointed populations).

Run:  PYTHONPATH=src python tools/check_transforms.py
Exit status is the number of failing checks (0 = everything passes).
"""

from __future__ import annotations

import os
import pickle
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.circuits import CIRCUITS, circuit            # noqa: E402
from repro.rewrite import (LOCAL, AnalysisManager,            # noqa: E402
                           RewriteDriver, supports_pattern_api)
from repro.transforms import default_library                  # noqa: E402


def check_library() -> int:
    errors = 0
    library = default_library()
    for t in library.transformations:
        if not supports_pattern_api(t):
            print(f"FAIL: {t.name}: overrides find() instead of the "
                  f"pattern API (match/match_at + apply)",
                  file=sys.stderr)
            errors += 1
    for name in sorted(CIRCUITS):
        behavior = circuit(name).behavior()
        nodes = set(behavior.graph.nodes)
        analyses = AnalysisManager(behavior)
        count = 0
        for t in library.transformations:
            if not supports_pattern_api(t):
                continue
            for match in t.match(behavior, analyses):
                count += 1
                where = f"{name}: {t.name}: {match.description!r}"
                if not match.footprint:
                    print(f"FAIL: {where}: empty footprint",
                          file=sys.stderr)
                    errors += 1
                stray = set(match.footprint) - nodes
                if stray:
                    print(f"FAIL: {where}: footprint names absent "
                          f"nodes {sorted(stray)}", file=sys.stderr)
                    errors += 1
                if t.scope == LOCAL:
                    deps = frozenset(t.dependencies(behavior, match))
                    if not deps:
                        print(f"FAIL: {where}: LOCAL pattern with "
                              f"empty dependency set", file=sys.stderr)
                        errors += 1
                    elif not set(match.footprint) <= deps:
                        print(f"FAIL: {where}: dependencies "
                              f"{sorted(deps)} do not cover footprint "
                              f"{list(match.footprint)}",
                              file=sys.stderr)
                        errors += 1
                clone = pickle.loads(pickle.dumps(match))
                if clone.fingerprint != match.fingerprint:
                    print(f"FAIL: {where}: fingerprint not stable "
                          f"across pickling", file=sys.stderr)
                    errors += 1
        # The driver must agree with direct enumeration (same library).
        driver = RewriteDriver(library)
        if len(driver.candidates(behavior)) != count:
            print(f"FAIL: {name}: driver enumerates a different "
                  f"candidate count than the patterns", file=sys.stderr)
            errors += 1
        print(f"  {name}: {count} matches OK")
    return errors


def main() -> int:
    errors = check_library()
    if not errors:
        print("transform library OK")
    return min(errors, 99)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Documentation checks for CI: link integrity + runnable examples.

Two passes over the repository's markdown:

1. **Link check** — every relative link ``[text](target)`` in every
   tracked ``*.md`` must resolve: the target file must exist, and a
   ``#fragment`` must match a heading anchor (GitHub slugification) in
   the target. External ``http(s):``/``mailto:`` links are skipped
   (CI has no network); links inside fenced code blocks are ignored.
2. **Doctest** — ``>>>`` examples in the docs listed in
   :data:`DOCTEST_FILES` are executed with :mod:`doctest` (the
   package importable from ``src/``), so the observability and
   architecture guides cannot drift from the API they document.

Run:  PYTHONPATH=src python tools/check_docs.py
Exit status is the number of failing files (0 = everything passes).
"""

from __future__ import annotations

import doctest
import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Docs whose examples must execute (satellite guides with ``>>>``).
DOCTEST_FILES = ("docs/observability.md", "docs/architecture.md",
                 "docs/transformations.md", "docs/service.md",
                 "docs/fuzzing.md", "docs/pipeline.md",
                 "docs/search.md")

#: Directories never scanned for markdown.
SKIP_DIRS = {".git", ".github", "node_modules", "__pycache__",
             ".pytest_cache", ".repro-store"}

_FENCE = re.compile(r"^(```|~~~)")
_LINK = re.compile(r"(?<!\!)\[[^\]^\[]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> List[str]:
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                out.append(os.path.join(root, name))
    return sorted(out)


def _strip_fences(text: str) -> str:
    """Blank out fenced code blocks (links inside them are examples)."""
    lines, inside = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            inside = not inside
            lines.append("")
            continue
        lines.append("" if inside else line)
    return "\n".join(lines)


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for a heading line (approximation of the
    published algorithm: markdown markup dropped, lowercased,
    punctuation removed, spaces to hyphens, duplicates numbered)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)                      # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: str, cache: Dict[str, Set[str]]) -> Set[str]:
    if path not in cache:
        seen: Dict[str, int] = {}
        found: Set[str] = set()
        with open(path, encoding="utf-8") as handle:
            text = _strip_fences(handle.read())
        for line in text.splitlines():
            match = _HEADING.match(line)
            if match:
                found.add(github_slug(match.group(2), seen))
        cache[path] = found
    return cache[path]


def check_links(paths: List[str]) -> List[str]:
    errors: List[str] = []
    anchor_cache: Dict[str, Set[str]] = {}
    for path in paths:
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as handle:
            text = _strip_fences(handle.read())
        targets = [m.group(1) for m in _LINK.finditer(text)]
        targets += [m.group(1) for m in _IMAGE.finditer(text)]
        for target in targets:
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http(s), mailto, ...
            file_part, _, fragment = target.partition("#")
            if file_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(dest):
                    errors.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                dest = path  # bare #fragment: same file
            if fragment:
                if not dest.endswith(".md") or os.path.isdir(dest):
                    continue  # anchors into non-markdown: not checked
                if fragment not in anchors_of(dest, anchor_cache):
                    errors.append(
                        f"{rel}: missing anchor -> {target}")
    return errors


def run_doctests(rel_paths: Tuple[str, ...]) -> List[str]:
    errors: List[str] = []
    for rel in rel_paths:
        path = os.path.join(REPO, rel)
        if not os.path.exists(path):
            errors.append(f"{rel}: doctest target missing")
            continue
        failures, tried = doctest.testfile(
            path, module_relative=False, verbose=False,
            optionflags=doctest.ELLIPSIS)
        if tried == 0:
            errors.append(f"{rel}: no doctest examples found")
        elif failures:
            errors.append(f"{rel}: {failures}/{tried} doctest "
                          f"examples failed")
        else:
            print(f"  {rel}: {tried} doctest examples OK")
    return errors


def main() -> int:
    paths = markdown_files()
    print(f"link-checking {len(paths)} markdown files...")
    errors = check_links(paths)
    print(f"running doctests over {len(DOCTEST_FILES)} docs...")
    errors += run_doctests(DOCTEST_FILES)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if not errors:
        print("docs OK")
    return min(len(errors), 99)


if __name__ == "__main__":
    sys.exit(main())

"""Lowering tests: BDL source → behavior → execution."""

import pytest

from repro.cdfg import OpKind, execute
from repro.errors import SemanticError
from repro.lang import compile_source

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

TEST1_SRC = """
proc test1(in c1, in c2, array x[256], out a) {
    var i = 0;
    var acc = 0;
    while (c2 > i) {
        if (i < c1) {
            var t1 = acc + 7;
            acc = 13 * t1;
        } else {
            acc = acc + 17;
        }
        i = i + 1;
        x[i] = acc;
    }
    a = acc;
}
"""


class TestEndToEnd:
    @pytest.mark.parametrize("a,b,g", [(12, 18, 6), (35, 14, 7), (9, 9, 9)])
    def test_gcd(self, a, b, g):
        beh = compile_source(GCD_SRC)
        assert execute(beh, {"a": a, "b": b}).outputs["g"] == g

    def test_test1_matches_python(self):
        beh = compile_source(TEST1_SRC)
        res = execute(beh, {"c1": 3, "c2": 10})
        i = acc = 0
        x = [0] * 256
        while 10 > i:
            acc = 13 * (acc + 7) if i < 3 else acc + 17
            i += 1
            x[i] = acc
        assert res.outputs["a"] == acc
        assert res.arrays["x"] == x

    def test_for_loop_sum(self):
        beh = compile_source("""
            proc asum(array x[8], out s) {
                var acc = 0;
                for (i = 0; i < 8; i = i + 1) { acc = acc + x[i]; }
                s = acc;
            }
        """)
        res = execute(beh, arrays={"x": [1, 2, 3, 4, 5, 6, 7, 8]})
        assert res.outputs["s"] == 36

    def test_trip_count_detected(self):
        beh = compile_source("""
            proc p(out s) {
                var acc = 0;
                for (i = 0; i < 17; i = i + 2) { acc = acc + i; }
                s = acc;
            }
        """)
        assert beh.loop("L1").trip_count == 9

    def test_trip_count_unknown_for_dynamic_bound(self):
        beh = compile_source("""
            proc p(in n, out s) {
                var acc = 0;
                for (i = 0; i < n; i = i + 1) { acc = acc + i; }
                s = acc;
            }
        """)
        assert beh.loop("L1").trip_count is None

    def test_inc_peephole(self):
        beh = compile_source("""
            proc p(in n, out r) { r = n + 1; }
        """)
        kinds = [node.kind for node in beh.graph]
        assert OpKind.INC in kinds
        assert OpKind.ADD not in kinds
        assert execute(beh, {"n": 41}).outputs["r"] == 42

    def test_unary_and_bitwise(self):
        beh = compile_source("""
            proc p(in a, in b, out r) { r = (-a & b) ^ ~b; }
        """)
        res = execute(beh, {"a": 12, "b": 10})
        assert res.outputs["r"] == ((-12 & 10) ^ ~10)

    def test_logical_ops(self):
        beh = compile_source("""
            proc p(in a, in b, out r) {
                if (a > 0 && b > 0) { r = 1; } else { r = 0; }
            }
        """)
        assert execute(beh, {"a": 1, "b": 1}).outputs["r"] == 1
        assert execute(beh, {"a": 1, "b": 0}).outputs["r"] == 0

    def test_shift_expression(self):
        beh = compile_source("proc p(in a, out r) { r = a << 3 >> 1; }")
        assert execute(beh, {"a": 5}).outputs["r"] == (5 << 3) >> 1


class TestCarriedVariables:
    def test_loop_carried_temporary_not_joined(self):
        beh = compile_source("""
            proc p(in n, out s) {
                var acc = 0;
                var i = 0;
                while (i < n) {
                    var t = i * 2;
                    acc = acc + t;
                    i = i + 1;
                }
                s = acc;
            }
        """)
        loop = beh.loop("L1")
        names = {lv.name for lv in loop.loop_vars}
        assert names == {"acc", "i"}
        assert execute(beh, {"n": 5}).outputs["s"] == 20

    def test_value_live_after_loop(self):
        beh = compile_source("""
            proc p(in n, out last) {
                var i = 0;
                var x = 0;
                while (i < n) {
                    x = i * i;
                    i = i + 1;
                }
                last = x;
            }
        """)
        assert execute(beh, {"n": 4}).outputs["last"] == 9
        assert execute(beh, {"n": 0}).outputs["last"] == 0


class TestSemanticErrors:
    def test_unassigned_output(self):
        with pytest.raises(SemanticError):
            compile_source("proc p(in a, out r) { a = a + 1; }")

    def test_read_before_assign(self):
        with pytest.raises(SemanticError):
            compile_source("proc p(out r) { r = ghost + 1; }")

    def test_undeclared_array(self):
        with pytest.raises(SemanticError):
            compile_source("proc p(out r) { r = m[0]; }")

"""Lexer and parser unit tests."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang import (Binary, For, If, IntLit, TokKind, VarRef, While,
                        parse, tokenize)


class TestLexer:
    def test_simple_tokens(self):
        toks = tokenize("proc f(in a) { a = a + 1; }")
        texts = [t.text for t in toks if t.kind is not TokKind.EOF]
        assert texts == ["proc", "f", "(", "in", "a", ")", "{", "a", "=",
                         "a", "+", "1", ";", "}"]

    def test_multichar_operators(self):
        toks = tokenize("a <= b >> 2 != c && d")
        ops = [t.text for t in toks if t.kind is TokKind.OP]
        assert ops == ["<=", ">>", "!=", "&&"]

    def test_line_comments(self):
        toks = tokenize("a // hello\n b")
        idents = [t.text for t in toks if t.kind is TokKind.IDENT]
        assert idents == ["a", "b"]

    def test_block_comments(self):
        toks = tokenize("a /* x\n y */ b")
        idents = [t.text for t in toks if t.kind is TokKind.IDENT]
        assert idents == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_bad_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a = $b;")
        assert err.value.line == 1

    def test_positions(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_bad_numeric_literal(self):
        with pytest.raises(LexError):
            tokenize("x = 12ab;")


class TestParser:
    def test_gcd_shape(self):
        proc = parse("""
            proc gcd(in a, in b, out g) {
                while (a != b) {
                    if (a < b) { b = b - a; } else { a = a - b; }
                }
                g = a;
            }
        """)
        assert proc.name == "gcd"
        assert [p.direction for p in proc.params] == ["in", "in", "out"]
        loop = proc.body[0]
        assert isinstance(loop, While)
        assert isinstance(loop.body[0], If)

    def test_precedence(self):
        proc = parse("proc p(in a, in b, in c, out r) { r = a + b * c; }")
        expr = proc.body[0].value
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        proc = parse("proc p(in a, in b, out r) { r = a + 1 < b; }")
        expr = proc.body[0].value
        assert expr.op == "<"
        assert isinstance(expr.left, Binary) and expr.left.op == "+"

    def test_parentheses(self):
        proc = parse("proc p(in a, in b, in c, out r) { r = (a + b) * c; }")
        expr = proc.body[0].value
        assert expr.op == "*"
        assert isinstance(expr.left, Binary) and expr.left.op == "+"

    def test_for_loop(self):
        proc = parse("""
            proc p(array x[8], out s) {
                var s0 = 0;
                for (i = 0; i < 8; i = i + 1) { s0 = s0 + x[i]; }
                s = s0;
            }
        """)
        loop = proc.body[1]
        assert isinstance(loop, For)
        assert loop.var == "i"
        assert isinstance(loop.init, IntLit) and loop.init.value == 0

    def test_for_update_must_match_var(self):
        with pytest.raises(ParseError):
            parse("proc p() { for (i = 0; i < 8; j = j + 1) { } }")

    def test_else_if_chain(self):
        proc = parse("""
            proc p(in a, out r) {
                if (a < 0) { r = 0; }
                else if (a < 10) { r = 1; }
                else { r = 2; }
            }
        """)
        outer = proc.body[0]
        assert isinstance(outer, If)
        assert isinstance(outer.else_body[0], If)

    def test_array_reference(self):
        proc = parse("proc p(array m[4], out r) { r = m[2]; }")
        assert proc.body[0].value.name == "m"

    def test_loop_labels_are_sequential(self):
        proc = parse("""
            proc p(in n) {
                var i = 0;
                while (i < n) { i = i + 1; }
                for (j = 0; j < n; j = j + 1) { i = i + 1; }
            }
        """)
        assert proc.body[1].label == "L1"
        assert proc.body[2].label == "L2"

    @pytest.mark.parametrize("bad", [
        "proc p( { }",
        "proc p() { a = ; }",
        "proc p() { if a > 0 { } }",
        "proc p() { a = 1; } trailing",
        "proc p(inout x) { }",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

"""Frontend hardening: malformed or adversarial BDL must fail with
error-family exceptions (ParseError / SemanticError), never a raw
Python RecursionError or an unexplained crash.  Pinned here because the
fuzz harness folds *unexpected* exception types into findings — these
shapes are the documented rejections."""

import pytest

from repro.errors import ParseError, ReproError, SemanticError
from repro.lang.lower import compile_source
from repro.lang.parser import MAX_EXPR_NEST, MAX_STMT_NEST, parse


def _proc(body):
    return f"proc p(in a, out b) {{\n{body}\nb = a;\n}}"


def test_deeply_nested_parens_are_a_parse_error():
    depth = MAX_EXPR_NEST + 5
    expr = "(" * depth + "a" + ")" * depth
    with pytest.raises(ParseError, match="nested deeper"):
        parse(_proc(f"b = {expr};"))


def test_deeply_nested_ifs_are_a_parse_error():
    depth = MAX_STMT_NEST + 5
    body = ""
    for _ in range(depth):
        body += "if (a) {\n"
    body += "b = 1;\n" + "}\n" * depth
    with pytest.raises(ParseError, match="nested deeper"):
        parse(_proc(body))


def test_huge_operator_chain_is_a_semantic_error():
    # Unparenthesized chains parse iteratively but lower recursively;
    # the lowerer's own depth cap must fire, not Python's.
    chain = " + ".join(["a"] * 5000)
    with pytest.raises(SemanticError, match="split it across"):
        compile_source(_proc(f"b = {chain};"))


def test_reasonable_nesting_still_compiles():
    expr = "(" * 20 + "a" + ")" * 20
    chain = " + ".join(["a"] * 200)
    compile_source(_proc(f"b = {expr};\nb = {chain};"))


def test_duplicate_parameter_is_a_semantic_error():
    with pytest.raises(SemanticError, match="duplicate parameter"):
        compile_source("proc p(in a, in a, out b) { b = a; }")


@pytest.mark.parametrize("source", [
    "proc p(in a, out b) { b = a }",          # missing semicolon
    "proc p(in a, out b) { b = ; }",          # missing expression
    "proc p(in a, out b) { if a { b = 1; } }",  # missing parens
    "proc p(in a, out b) { b = a; ",          # unterminated block
    "proc p(in a, out b) { b = a; } trailing",
    "proc p(in a, out b) { @ }",              # unknown character
])
def test_malformed_programs_raise_error_family_parse_errors(source):
    with pytest.raises(ReproError):
        compile_source(source)


@pytest.mark.parametrize("source,match", [
    ("proc p(in a, out b) { b = c; }", "before assignment"),
    ("proc p(in a, out b) { a = 1; b = a; }", None),
    ("proc p(in a, out b) { }", "never assigned"),
])
def test_semantic_rejections_carry_useful_messages(source, match):
    if match is None:
        # Writing to an input is currently allowed (it becomes a local
        # shadow); pin that it at least doesn't crash.
        try:
            compile_source(source)
        except ReproError:
            pass
        return
    with pytest.raises(SemanticError, match=match):
        compile_source(source)

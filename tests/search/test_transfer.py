"""Store-backed warm-start transfer: record, index, adopt."""

import os

import pytest

from repro.bench.circuits import circuit
from repro.core.evalcache import behavior_fingerprint
from repro.explore.runner import ExploreConfig, ExploreRunner
from repro.explore.store import RunStore
from repro.profiling.profiler import profile


@pytest.fixture(scope="module")
def gcd():
    c = circuit("gcd")
    beh = c.behavior()
    return beh, c.allocation, profile(beh, c.traces(beh)).branch_probs


def _runner(gcd, store, vdd=5.0, warm=False, seed=7):
    beh, alloc, probs = gcd
    cfg = ExploreConfig(generations=1, population_size=4, seed=seed,
                        vdd=vdd, warm_start_transfer=warm)
    return ExploreRunner(beh, alloc, config=cfg, branch_probs=probs,
                         store=store)


class TestStoreIndex:
    def test_record_and_load_round_trip(self, gcd, tmp_path):
        beh, alloc, probs = gcd
        store = RunStore(tmp_path)
        entries = [(beh, ("step1", "step2"))]
        store.record_transfer("run-a", behavior_fingerprint(beh),
                              {"vdd": 5.0, "alloc.a1": 2.0}, entries)
        docs = store.transfers()
        assert len(docs) == 1
        doc = docs[0]
        assert doc["run"] == "run-a"
        assert doc["front_size"] == 1
        assert doc["lineages"] == [["step1", "step2"]]
        loaded = store.load_transfer("run-a")
        assert loaded is not None
        (got_beh, got_lineage), = loaded
        assert got_lineage == ("step1", "step2")
        assert behavior_fingerprint(got_beh) \
            == behavior_fingerprint(beh)

    def test_nearest_prefers_closest_context(self, gcd, tmp_path):
        beh, _, _ = gcd
        store = RunStore(tmp_path)
        fp = behavior_fingerprint(beh)
        store.record_transfer("far", fp, {"vdd": 3.0}, [(beh, ())])
        store.record_transfer("near", fp, {"vdd": 4.9}, [(beh, ())])
        doc = store.nearest_transfer(fp, {"vdd": 5.0})
        assert doc["run"] == "near"

    def test_nearest_requires_same_behavior(self, gcd, tmp_path):
        beh, _, _ = gcd
        store = RunStore(tmp_path)
        store.record_transfer("other", "deadbeef", {"vdd": 5.0},
                              [(beh, ())])
        assert store.nearest_transfer(behavior_fingerprint(beh),
                                      {"vdd": 5.0}) is None

    def test_nearest_honors_exclude(self, gcd, tmp_path):
        beh, _, _ = gcd
        store = RunStore(tmp_path)
        fp = behavior_fingerprint(beh)
        store.record_transfer("self", fp, {"vdd": 5.0}, [(beh, ())])
        assert store.nearest_transfer(fp, {"vdd": 5.0},
                                      exclude="self") is None

    def test_corrupt_meta_is_skipped(self, gcd, tmp_path):
        beh, _, _ = gcd
        store = RunStore(tmp_path)
        store.record_transfer("ok", behavior_fingerprint(beh),
                              {"vdd": 5.0}, [(beh, ())])
        bad = tmp_path / "transfer" / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        from repro.explore.store import RunStoreWarning
        with pytest.warns(RunStoreWarning):
            docs = store.transfers()
        assert [d["run"] for d in docs] == ["ok"]


class TestRunnerTransfer:
    def test_run_records_front_unconditionally(self, gcd, tmp_path):
        _runner(gcd, tmp_path).run()
        docs = RunStore(tmp_path).transfers()
        assert len(docs) == 1
        assert docs[0]["front_size"] >= 1
        assert docs[0]["features"]["vdd"] == 5.0

    def test_warm_start_adopts_nearest_front(self, gcd, tmp_path):
        _runner(gcd, tmp_path, vdd=5.0).run()
        warm = _runner(gcd, tmp_path, vdd=4.5, warm=True)
        doc = warm.store.nearest_transfer(
            behavior_fingerprint(gcd[0]), warm._transfer_features(),
            exclude=warm.run_fingerprint)
        assert doc is not None
        result = warm.run()
        assert len(result.front) >= 1
        assert len(RunStore(tmp_path).transfers()) == 2

    def test_warm_start_changes_run_identity(self, gcd, tmp_path):
        cold = _runner(gcd, tmp_path)
        warm = _runner(gcd, tmp_path, warm=True)
        assert cold.run_fingerprint != warm.run_fingerprint

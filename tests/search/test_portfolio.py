"""Portfolio racing: deterministic, budget-fair, fully reported."""

import pytest

from repro.bench.circuits import circuit
from repro.core.objectives import THROUGHPUT, Objective
from repro.core.search import SearchConfig, TransformSearch
from repro.hw import dac98_library
from repro.profiling.profiler import profile
from repro.transforms import default_library

LIB = dac98_library()


def _fixture(name="gcd"):
    c = circuit(name)
    beh = c.behavior()
    return beh, c.allocation, profile(beh, c.traces(beh)).branch_probs


def _run(beh, alloc, probs, **kw):
    base = dict(max_outer_iters=2, max_moves=2, seed=5,
                max_candidates_per_seed=8, workers=0,
                strategy="portfolio", portfolio_size=3)
    base.update(kw)
    cfg = SearchConfig(**base)
    return TransformSearch(default_library(), LIB, alloc,
                           Objective(THROUGHPUT), branch_probs=probs,
                           config=cfg).run(beh)


def _signature(res):
    return (res.best.score, res.best.lineage, tuple(res.history),
            res.generations, res.evaluated_count,
            tuple(sorted((label, stats["spent"],
                          stats["generations"], stats["best_score"])
                         for label, stats
                         in res.telemetry.members.items())))


def test_portfolio_deterministic_serial():
    beh, alloc, probs = _fixture()
    assert _signature(_run(beh, alloc, probs)) \
        == _signature(_run(beh, alloc, probs))


def test_portfolio_pool_matches_serial():
    beh, alloc, probs = _fixture()
    serial = _run(beh, alloc, probs)
    pooled = _run(beh, alloc, probs, workers=2)
    assert _signature(serial) == _signature(pooled)


def test_portfolio_reports_every_member():
    beh, alloc, probs = _fixture()
    res = _run(beh, alloc, probs)
    assert res.strategy == "portfolio"
    assert res.telemetry.strategy == "portfolio"
    assert set(res.telemetry.members) == {"greedy", "macro", "explore"}
    for stats in res.telemetry.members.values():
        assert stats["generations"] >= 1
    # member 0 is plain greedy on the run seed: the portfolio can only
    # match or beat it
    greedy = res.telemetry.members["greedy"]
    assert res.best.score <= greedy["best_score"] + 1e-9
    # per-member metrics land in the registry
    metrics = res.telemetry.metrics()
    assert metrics.value("search.member.greedy.best_score") \
        == greedy["best_score"]


def test_portfolio_best_never_above_any_member():
    beh, alloc, probs = _fixture("test2")
    res = _run(beh, alloc, probs)
    floor = min(stats["best_score"]
                for stats in res.telemetry.members.values())
    assert res.best.score <= floor + 1e-9

"""The strategy layer's greedy equals the frozen legacy loop.

``repro.search.reference`` is the pre-refactor ``TransformSearch.run``
kept verbatim; these tests pin the byte-identity contract the refactor
ships under — same best, same lineage, same history, same counters,
serial and pooled.
"""

import pytest

from repro.bench.circuits import circuit
from repro.core.objectives import THROUGHPUT, Objective
from repro.core.search import (SearchConfig, SearchResult,
                               TransformSearch)
from repro.errors import SearchError
from repro.hw import dac98_library
from repro.profiling.profiler import profile
from repro.search import make_strategy
from repro.search.reference import reference_search
from repro.transforms import default_library

LIB = dac98_library()


def _probs(name):
    c = circuit(name)
    beh = c.behavior()
    return beh, c.allocation, profile(beh, c.traces(beh)).branch_probs


def _cfg(**kw):
    base = dict(max_outer_iters=3, max_moves=2, in_set_size=3,
                seed=11, max_candidates_per_seed=12, workers=0)
    base.update(kw)
    return SearchConfig(**base)


def run_both(name, cfg):
    beh, alloc, probs = _probs(name)
    got = TransformSearch(default_library(), LIB, alloc,
                          Objective(THROUGHPUT), branch_probs=probs,
                          config=cfg).run(beh)
    want = reference_search(default_library(), LIB, alloc,
                            Objective(THROUGHPUT), beh,
                            branch_probs=probs, config=cfg)
    return got, want


def assert_identical(got, want):
    assert got.best.score == want.best.score
    assert got.best.lineage == want.best.lineage
    assert got.history == want.history
    assert got.generations == want.generations
    assert got.evaluated_count == want.evaluated_count


@pytest.mark.parametrize("name", ["gcd", "test2"])
def test_greedy_matches_reference_serial(name):
    got, want = run_both(name, _cfg())
    assert_identical(got, want)
    assert got.strategy == "greedy"


def test_greedy_matches_reference_pool():
    got, want = run_both("gcd", _cfg(workers=2, max_outer_iters=2))
    assert_identical(got, want)


@pytest.mark.parametrize("kw", [dict(max_moves=0),
                                dict(max_outer_iters=0),
                                dict(max_candidates_per_seed=1)])
def test_greedy_matches_reference_edge_configs(kw):
    got, want = run_both("gcd", _cfg(**kw))
    assert_identical(got, want)


def test_greedy_matches_reference_streaming():
    got, want = run_both("gcd", _cfg(streaming=True))
    assert_identical(got, want)


def test_macro_strategy_never_worse_than_its_own_seeds():
    beh, alloc, probs = _probs("test2")
    cfg = _cfg(strategy="macro")
    res = TransformSearch(default_library(), LIB, alloc,
                          Objective(THROUGHPUT), branch_probs=probs,
                          config=cfg).run(beh)
    assert res.strategy == "macro"
    assert res.best.score <= res.history[0]
    # history is the running best: monotone non-increasing
    assert all(b <= a for a, b in zip(res.history, res.history[1:]))


def test_max_evaluations_caps_scheduled_work():
    beh, alloc, probs = _probs("test2")
    free = TransformSearch(default_library(), LIB, alloc,
                           Objective(THROUGHPUT), branch_probs=probs,
                           config=_cfg()).run(beh)
    budget = free.telemetry.eval.scheduled // 2
    capped = TransformSearch(default_library(), LIB, alloc,
                             Objective(THROUGHPUT), branch_probs=probs,
                             config=_cfg(max_evaluations=budget)
                             ).run(beh)
    # soft cap: the generation in flight completes, nothing after it
    assert capped.generations < free.generations
    assert capped.telemetry.eval.scheduled < \
        free.telemetry.eval.scheduled


def test_unknown_strategy_raises():
    with pytest.raises(SearchError, match="unknown search strategy"):
        make_strategy(_cfg(strategy="anneal"), lambda depth: None)


class TestImprovement:
    """Regression: both-zero scores mean "no change", not infinity."""

    def _result(self, initial, best):
        from repro.core.engine import Evaluated
        return SearchResult(
            best=Evaluated(behavior=None, result=None, score=best),
            initial=Evaluated(behavior=None, result=None,
                              score=initial),
            generations=0, evaluated_count=0, history=[initial])

    def test_both_zero_is_neutral(self):
        assert self._result(0.0, 0.0).improvement == 1.0

    def test_zero_best_from_positive_initial_is_infinite(self):
        assert self._result(4.0, 0.0).improvement == float("inf")

    def test_ratio(self):
        assert self._result(8.0, 2.0).improvement == 4.0

"""Benchmark circuits: functional correctness and configuration."""

import math
import random

import pytest

from repro.bench import TABLE3, allocation_for
from repro.bench.circuits import CIRCUITS, circuit
from repro.cdfg import execute, validate_behavior, wrap
from repro.errors import BenchError


class TestAllocations:
    def test_table3_rows_present(self):
        assert set(TABLE3) == {"gcd", "fir", "test2", "sintran", "igf",
                               "pps"}

    def test_gcd_row_matches_paper(self):
        alloc = allocation_for("GCD")
        assert alloc.counts == {"sb1": 2, "cp1": 1, "e1": 1}

    def test_pps_is_adders_only(self):
        assert allocation_for("pps").counts == {"a1": 5}

    def test_unknown_circuit_raises(self):
        with pytest.raises(BenchError):
            allocation_for("nonesuch")

    def test_allocation_is_a_copy(self):
        a = allocation_for("gcd")
        a.counts["sb1"] = 99
        assert allocation_for("gcd").counts["sb1"] == 2


class TestCircuitDefinitions:
    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_compiles_and_validates(self, name):
        beh = circuit(name).behavior()
        validate_behavior(beh)

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_traces_execute(self, name):
        c = circuit(name)
        beh = c.behavior()
        traces = c.traces(beh)
        assert len(traces) >= 4
        case = traces.cases[0]
        execute(beh, case.inputs, case.arrays, max_steps=5_000_000)

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_paper_rows_recorded(self, name):
        c = circuit(name)
        assert len(c.paper_throughput) == 3
        assert len(c.paper_power) == 2


class TestGcdFunctional:
    def test_matches_math_gcd(self):
        beh = circuit("gcd").behavior()
        rng = random.Random(1)
        for _ in range(10):
            a, b = rng.randint(1, 300), rng.randint(1, 300)
            assert execute(beh, {"a": a, "b": b}).outputs["g"] \
                == math.gcd(a, b)


class TestFirFunctional:
    COEFFS = [1, -2, -4, -8, 16, -32]

    def reference(self, x):
        hist = [0] * 6
        out = []
        for sample in x:
            hist = [sample] + hist[:5]
            out.append(wrap(sum(c * h
                                for c, h in zip(self.COEFFS, hist))))
        return out

    def test_matches_reference_filter(self):
        beh = circuit("fir").behavior()
        rng = random.Random(2)
        x = [rng.randint(-500, 500) for _ in range(64)]
        res = execute(beh, arrays={"x": x})
        assert res.arrays["y"] == self.reference(x)


class TestTest2Functional:
    def test_matches_reference(self):
        beh = circuit("test2").behavior()
        rng = random.Random(3)
        arrays = {
            "xa": [rng.randint(0, 99) for _ in range(128)],
            "xb": [rng.randint(0, 99) for _ in range(128)],
            "y1": [rng.randint(0, 99) for _ in range(512)],
            "y2": [rng.randint(0, 99) for _ in range(512)],
            "y3": [rng.randint(0, 99) for _ in range(512)],
            "y4": [rng.randint(0, 99) for _ in range(512)],
        }
        res = execute(beh, arrays=arrays)
        for i in range(100):
            assert res.arrays["xd"][i] == arrays["xa"][i] + arrays["xb"][i]
        for m in range(400):
            expected = (arrays["y1"][m] + arrays["y2"][m]
                        - (arrays["y3"][m] + arrays["y4"][m]))
            assert res.arrays["y"][m] == expected


class TestSintranFunctional:
    def reference_sample(self, a, x):
        q = a
        if a > 511:
            q = a - 512
        if q > 255:
            q = 512 - q
        s = (5333 * q - ((q * q * q) >> 6)) >> 8
        if a > 511:
            s = -s
        return wrap((x * s) >> 8)

    def test_matches_reference(self):
        beh = circuit("sintran").behavior()
        rng = random.Random(4)
        w = [rng.randint(0, 1023) for _ in range(192)]
        x = [rng.randint(0, 1023) for _ in range(192)]
        res = execute(beh, arrays={"w": w, "x": x},
                      max_steps=5_000_000)
        for k in range(192):
            assert res.arrays["y"][k] == self.reference_sample(w[k], x[k])

    def test_quadrant_symmetry(self):
        """sin(a) == -sin(a + pi) in the fixed-point model."""
        beh = circuit("sintran").behavior()
        a = 137
        res = execute(beh, arrays={"w": [a, a + 512], "x": [256, 256]},
                      max_steps=5_000_000)
        assert res.arrays["y"][0] == -res.arrays["y"][1]


class TestIgfFunctional:
    def reference(self, a, x):
        term = x * 512
        total = 0
        n = 1
        while term > 8:
            total += term >> 6
            term = (term * x - term * a) >> 10
            n += 1
        return wrap(total + n)

    def test_matches_reference(self):
        beh = circuit("igf").behavior()
        for a, x in [(0, 1015), (1, 1020), (3, 1022), (2, 900)]:
            res = execute(beh, {"a": a, "x": x}, max_steps=5_000_000)
            assert res.outputs["g"] == self.reference(a, x)

    def test_converges_quickly_for_small_x(self):
        beh = circuit("igf").behavior()
        res = execute(beh, {"a": 0, "x": 2})
        assert res.loop_iterations["L1"] <= 3


class TestPpsFunctional:
    def test_prefix_sums(self):
        beh = circuit("pps").behavior()
        xs = {f"x{i}": (i + 1) * 3 for i in range(8)}
        res = execute(beh, xs)
        acc = 0
        for i in range(8):
            acc += xs[f"x{i}"]
            assert res.outputs[f"s{i}"] == acc

    def test_chaining_disabled_for_paper_fidelity(self):
        assert circuit("pps").sched.allow_chaining is False

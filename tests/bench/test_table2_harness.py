"""Table-2 harness unit tests (fast circuits only)."""

import pytest

from repro.bench.table2 import (MethodRun, PowerRow, ThroughputRow,
                                _geo_mean, default_search_config,
                                format_power_table,
                                format_throughput_table,
                                run_power_row, run_throughput_row)


class TestGeoMean:
    def test_basic(self):
        assert _geo_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert _geo_mean([]) == 0.0


@pytest.fixture(scope="module")
def pps_row():
    return run_throughput_row("pps")


class TestThroughputRow:
    def test_pps_values(self, pps_row):
        m1, fl, fact = pps_row.ours()
        assert m1 == pytest.approx(125.0, abs=1.0)
        assert fact >= fl >= m1

    def test_speedup_accessors(self, pps_row):
        assert pps_row.fact_over_m1 == pytest.approx(
            pps_row.m1.length / pps_row.fact.length)

    def test_lineage_recorded(self, pps_row):
        assert any("associativity" in step
                   for step in pps_row.fact.lineage)

    def test_format_table(self, pps_row):
        text = format_throughput_table([pps_row])
        assert "pps" in text
        assert "geomean" in text
        assert "125.0" in text


class TestPowerRow:
    @pytest.fixture(scope="class")
    def row(self):
        return run_power_row("pps")

    def test_reduction_positive(self, row):
        assert 0.0 < row.reduction < 1.0
        assert row.scaled_vdd < 5.0

    def test_iso_throughput(self, row):
        assert row.fact_length <= row.m1_length * 1.001

    def test_format_table(self, row):
        text = format_power_table([row])
        assert "pps" in text
        assert "mean power reduction" in text


class TestSearchConfig:
    def test_default_budget(self):
        cfg = default_search_config(seed=5)
        assert cfg.seed == 5
        assert cfg.max_outer_iters >= 4

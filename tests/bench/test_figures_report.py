"""Phase diagrams, kernel tables and power report formatting."""

import pytest

from repro.baselines import run_m1
from repro.bench import circuit, kernel_table, phase_diagram
from repro.hw import dac98_library
from repro.power import estimate_power, format_power_estimate
from repro.profiling import profile

LIB = dac98_library()


@pytest.fixture(scope="module")
def test2_m1():
    c = circuit("test2")
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    return run_m1(beh, LIB, c.allocation, c.sched, probs)


class TestPhaseDiagram:
    def test_fig2_node_structure(self, test2_m1):
        text = phase_diagram(test2_m1)
        # Figure 2(b): concurrent phase then the long loop alone.
        assert "L1+L2" in text
        assert "501.0 expected cycles" in text
        lines = text.splitlines()
        concurrent = next(l for l in lines if "L1+L2" in l)
        solo = next(l for l in lines if " L2 " in l and "L1" not in l)
        assert "200.0" in concurrent
        assert "300.0" in solo

    def test_kernel_table_shows_resource_contention(self, test2_m1):
        text = kernel_table(test2_m1, "L1+L2")
        # Untransformed: both adds of L3's body plus L1's add force the
        # two-cycle kernel; the first cycle uses both adders.
        assert "a1:[add, add]" in text

    def test_unknown_phase(self, test2_m1):
        assert "no states" in kernel_table(test2_m1, "nonesuch")


class TestPowerReport:
    def test_format_contains_components_and_total(self, test2_m1):
        est = estimate_power(test2_m1.stg, test2_m1.behavior.graph, LIB)
        text = format_power_estimate(est, title="test2 @ 5V")
        assert text.startswith("test2 @ 5V")
        assert "a1" in text
        assert "memory" in text
        assert "total" in text
        assert f"{est.total_energy:.2f}" in text
        assert "power" in text

"""Example-3 module helpers."""

import pytest

from repro.bench import (EXAMPLE3_ALLOCATION, example3_allocation,
                         example3_behavior, matched_path_probs)
from repro.cdfg import OpKind, execute, validate_behavior


class TestExample3Behavior:
    def test_validates(self):
        validate_behavior(example3_behavior())

    def test_structure_matches_figure4(self):
        beh = example3_behavior()
        kinds = {}
        for n in beh.graph:
            kinds[n.kind] = kinds.get(n.kind, 0) + 1
        assert kinds[OpKind.MUL] == 2     # *1, *2
        assert kinds[OpKind.SUB] == 1     # -1
        assert kinds[OpKind.JOIN] == 2    # J1, J2

    def test_thread_semantics(self):
        beh = example3_behavior()
        # C true: x1*x2 - x1*x3.
        out = execute(beh, {"x1": 3, "x2": 7, "x3": 2, "x4": 0,
                            "x5": 0, "c": 1})
        assert out.outputs["r"] == 3 * 7 - 3 * 2
        # C false: x4 - x5.
        out = execute(beh, {"x1": 3, "x2": 7, "x3": 2, "x4": 50,
                            "x5": 8, "c": 0})
        assert out.outputs["r"] == 42

    def test_allocation_is_fresh_copy(self):
        a = example3_allocation()
        a.counts["mt1"] = 99
        assert example3_allocation().counts == EXAMPLE3_ALLOCATION

    def test_matched_path_probs(self):
        beh = example3_behavior()
        on = matched_path_probs(beh, True)
        off = matched_path_probs(beh, False)
        (cond_on, p_on), = on.items()
        (cond_off, p_off), = off.items()
        assert cond_on == cond_off
        assert (p_on, p_off) == (1.0, 0.0)

"""Loop fusion and constant-branch elimination tests."""

import random

import pytest

from repro.cdfg import OpKind, execute, validate_behavior
from repro.errors import TransformError
from repro.lang import compile_source
from repro.transforms import (BranchElimination, LoopFusion,
                              eliminate_branch, fuse_loops,
                              loops_independent)

TWO_LOOPS = """
proc p(array a[16], array b[16], array c[16], array d[16]) {
    for (i = 0; i < 16; i = i + 1) { c[i] = a[i] + b[i]; }
    for (j = 0; j < 16; j = j + 1) { d[j] = a[j] - b[j]; }
}
"""

DEPENDENT_LOOPS = """
proc p(array a[16], array b[16], array c[16]) {
    for (i = 0; i < 16; i = i + 1) { b[i] = a[i] + 1; }
    for (j = 0; j < 16; j = j + 1) { c[j] = b[j] * 2; }
}
"""

UNEQUAL_TRIPS = """
proc p(array a[16], array b[16]) {
    for (i = 0; i < 16; i = i + 1) { a[i] = i; }
    for (j = 0; j < 8; j = j + 1) { b[j] = j; }
}
"""


class TestLoopFusion:
    def test_candidate_found_for_independent_equal_loops(self):
        beh = compile_source(TWO_LOOPS)
        cands = LoopFusion().find(beh)
        assert len(cands) == 1
        assert "fuse L1 + L2" in cands[0].description

    def test_fusion_preserves_functionality(self):
        beh = compile_source(TWO_LOOPS)
        fused = LoopFusion().find(beh)[0].apply(beh)
        validate_behavior(fused)
        rng = random.Random(5)
        arrays = {"a": [rng.randint(0, 99) for _ in range(16)],
                  "b": [rng.randint(0, 99) for _ in range(16)]}
        ref = execute(beh, arrays=arrays)
        got = execute(fused, arrays=arrays)
        assert got.arrays == ref.arrays

    def test_fused_behavior_has_one_loop(self):
        beh = compile_source(TWO_LOOPS)
        fused = LoopFusion().find(beh)[0].apply(beh)
        assert len(fused.loops()) == 1
        loop = fused.loops()[0]
        names = {lv.name for lv in loop.loop_vars}
        assert names == {"i", "j"}

    def test_dependent_loops_not_fused(self):
        beh = compile_source(DEPENDENT_LOOPS)
        assert LoopFusion().find(beh) == []
        l1, l2 = beh.loops()
        assert not loops_independent(beh, l1, l2)

    def test_unequal_trip_counts_not_fused(self):
        beh = compile_source(UNEQUAL_TRIPS)
        assert LoopFusion().find(beh) == []

    def test_fuse_loops_rejects_non_siblings(self):
        beh = compile_source(DEPENDENT_LOOPS)
        with pytest.raises(TransformError):
            fuse_loops(beh.copy(), "L1", "L2")  # dependent


CONST_BRANCH = """
proc p(in x, out r) {
    var v = 0;
    if (3 > 1) { v = x + 5; } else { v = x * 7; }
    r = v;
}
"""

NESTED_CONST = """
proc p(in x, out r) {
    var v = 0;
    if (1 > 3) {
        if (x > 0) { v = 1; } else { v = 2; }
    } else {
        v = x + 10;
    }
    r = v;
}
"""


class TestBranchElimination:
    def test_true_branch_kept(self):
        beh = compile_source(CONST_BRANCH)
        cands = BranchElimination().find(beh)
        assert len(cands) == 1
        t = cands[0].apply(beh)
        # The multiply (dead else branch) is gone; add unguarded.
        assert not any(n.kind is OpKind.MUL for n in t.graph)
        adds = [n.id for n in t.graph if n.kind is OpKind.ADD]
        assert adds and not t.graph.control_inputs(adds[0])
        assert execute(t, {"x": 4}).outputs["r"] == 9

    def test_nested_dead_branch_removed_transitively(self):
        beh = compile_source(NESTED_CONST)
        t = BranchElimination().find(beh)[0].apply(beh)
        validate_behavior(t)
        # The whole inner if (under the dead outer branch) vanishes.
        assert sum(1 for n in t.graph
                   if t.graph.control_users(n.id)) == 0
        assert execute(t, {"x": -3}).outputs["r"] == 7

    def test_loop_condition_not_a_candidate(self):
        beh = compile_source("""
            proc p(out r) {
                var i = 0;
                while (1 > 0) { i = i + 1; r = i; }
            }
        """, )
        # Non-terminating loop: cond is constant but protected.
        assert BranchElimination().find(beh) == []

    def test_equivalence_on_random_inputs(self):
        beh = compile_source(CONST_BRANCH)
        t = BranchElimination().find(beh)[0].apply(beh)
        for x in (-100, 0, 1, 77):
            assert execute(t, {"x": x}).outputs \
                == execute(beh, {"x": x}).outputs


class TestUnrollThenEliminate:
    def test_pipeline_of_extensions(self):
        """Fusion-style pipelines: unroll exposes constant branches."""
        beh = compile_source("""
            proc p(array x[8], out s) {
                var acc = 0;
                for (i = 0; i < 8; i = i + 1) {
                    if (0 > 1) { acc = acc - x[i]; }
                    else { acc = acc + x[i]; }
                }
                s = acc;
            }
        """)
        cands = BranchElimination().find(beh)
        assert cands
        t = cands[0].apply(beh)
        assert not any(n.kind is OpKind.SUB for n in t.graph)
        data = list(range(8))
        assert execute(t, arrays={"x": data}).outputs["s"] == sum(data)

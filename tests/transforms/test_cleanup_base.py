"""Framework-level tests: DCE, hygiene CSE, TransformLibrary."""

import pytest

from repro.cdfg import BehaviorBuilder, OpKind, execute
from repro.errors import TransformError
from repro.lang import compile_source
from repro.transforms import (Candidate, TransformLibrary,
                              Transformation, dead_code_elimination,
                              default_library, merge_duplicates_inplace)


def with_dead_code():
    b = BehaviorBuilder("dead")
    x = b.input("x")
    live = b.add(x, x)
    b.mul(x, x)          # dead: no users
    t = b.sub(x, x)      # dead chain
    b.neg(t)
    b.assign("r", live)
    b.output("r")
    return b.finish()


class TestDce:
    def test_removes_dead_chains(self):
        beh = with_dead_code()
        removed = dead_code_elimination(beh)
        assert removed == 3
        kinds = {n.kind for n in beh.graph}
        assert OpKind.MUL not in kinds
        assert OpKind.NEG not in kinds
        assert execute(beh, {"x": 21}).outputs["r"] == 42

    def test_keeps_stores_and_outputs(self):
        b = BehaviorBuilder("st")
        x = b.input("x")
        b.array("m", 4)
        b.store("m", b.const(0), x)
        b.assign("r", x)
        b.output("r")
        beh = b.finish()
        assert dead_code_elimination(beh) == 0
        assert any(n.kind is OpKind.STORE for n in beh.graph)

    def test_keeps_loop_structure(self):
        beh = compile_source("""
            proc p(in n, out r) {
                var i = 0;
                while (i < n) { i = i + 1; }
                r = i;
            }
        """)
        dead_code_elimination(beh)
        loop = beh.loop("L1")
        assert loop.cond in beh.graph
        assert all(lv.join in beh.graph for lv in loop.loop_vars)

    def test_removes_dead_guard_sources(self):
        b = BehaviorBuilder("gc")
        x = b.input("x")
        c = b.lt(x, b.const(3))
        with b.if_(c):
            b.assign("v", b.const(9))
        # 'v' never read: the whole guarded structure is dead, and then
        # so is the comparison.
        b.assign("r", x)
        b.output("r")
        beh = b.finish()
        dead_code_elimination(beh)
        assert not any(n.kind is OpKind.LT for n in beh.graph)


class TestHygieneCse:
    def test_merges_duplicates_in_place(self):
        b = BehaviorBuilder("dups")
        x = b.input("x")
        y = b.input("y")
        p = b.add(x, y)
        q = b.add(x, y)
        b.assign("r", b.mul(p, q))
        b.output("r")
        beh = b.finish()
        merged = merge_duplicates_inplace(beh)
        assert merged == 1
        dead_code_elimination(beh)
        assert sum(1 for n in beh.graph if n.kind is OpKind.ADD) == 1
        assert execute(beh, {"x": 3, "y": 4}).outputs["r"] == 49

    def test_does_not_merge_across_guards(self):
        b = BehaviorBuilder("guarded")
        x = b.input("x")
        c = b.lt(x, b.const(0))
        with b.if_(c):
            b.assign("a", b.add(x, x))
            b.otherwise()
            b.assign("a", b.add(x, x))  # same expr, opposite guard
        b.output("a")
        beh = b.finish()
        assert merge_duplicates_inplace(beh) == 0


class TestLibraryApi:
    def test_names_and_filter(self):
        lib = default_library()
        assert "distributivity" in lib.names()
        beh = compile_source(
            "proc p(in a, in b, in c, out r) { r = a * b - a * c; }")
        only = lib.candidates(beh, only=["distributivity"])
        assert only
        assert all(c.transform == "distributivity" for c in only)

    def test_add_custom_transformation(self):
        class Nop(Transformation):
            name = "nop"

            def find(self, behavior):
                return [Candidate("nop", "do nothing",
                                  lambda b: None)]

        lib = TransformLibrary().add(Nop())
        beh = compile_source("proc p(in a, out r) { r = a + a; }")
        cands = lib.candidates(beh)
        assert len(cands) == 1
        out = cands[0].apply(beh)
        assert execute(out, {"a": 5}).outputs["r"] == 10

    def test_candidate_touches(self):
        c = Candidate("t", "d", lambda b: None, sites=(3, 7))
        assert c.touches({7, 9})
        assert not c.touches({1, 2})
        # A footprint-less candidate matches *no* hot set: the old
        # permissive default silently defeated hot-block focusing.
        assert not Candidate("t", "d", lambda b: None).touches({1})

"""Targeted structural tests per transformation."""

import random

import pytest

from repro.cdfg import GuardAnalysis, OpKind, execute
from repro.transforms import (Associativity, CommonSubexpression,
                              Commutativity, ConstantPropagation,
                              Distributivity, LoopInvariantMotion,
                              LoopUnrolling, Speculation,
                              StrengthReduction, csd_digits,
                              eliminate_all_cse, fold_all_constants,
                              unroll_loop)

from .behaviors import (ALL, const_expr, const_mul, counted_sum, gcd,
                        guarded_muls, loop_invariant, mixed_sum,
                        prefix_sums, shared_mul)


def count_kind(behavior, kind):
    return sum(1 for n in behavior.graph if n.kind is kind)


class TestConstProp:
    def test_fold_to_fixpoint_removes_arithmetic(self):
        beh = fold_all_constants(const_expr())
        # After folding: r = x + 14 (3*4+2 folded; x+0, *1, -x*0 gone).
        assert count_kind(beh, OpKind.MUL) == 0
        assert execute(beh, {"x": 5}).outputs["r"] == 19

    def test_finds_identity_sites(self):
        cands = ConstantPropagation().find(const_expr())
        assert any("identity" in c.description for c in cands)
        assert any("fold" in c.description for c in cands)


class TestCommutativity:
    def test_swap_preserves_and_flips_comparisons(self):
        beh = gcd()
        cands = Commutativity().find(beh)
        flips = [c for c in cands if "flip" in c.description]
        assert flips
        t = flips[0].apply(beh)
        assert execute(t, {"a": 12, "b": 18}).outputs["g"] == 6


class TestAssociativity:
    def test_mixed_sum_balance_trades_adds_for_subs(self):
        beh = mixed_sum()  # (y1+y2) - (y3+y4): 2 ADD, 1 SUB
        assert count_kind(beh, OpKind.ADD) == 2
        cands = [c for c in Associativity().find(beh)
                 if "balance" in c.description]
        assert cands
        t = cands[0].apply(beh)
        # Example 2's target shape: (y1-y3) + (y2-y4): 1 ADD, 2 SUB.
        assert count_kind(t, OpKind.ADD) == 1
        assert count_kind(t, OpKind.SUB) == 2

    def test_group_restores_add_heavy_shape(self):
        beh = mixed_sum()
        balance = [c for c in Associativity().find(beh)
                   if "balance" in c.description][0].apply(beh)
        cands = [c for c in Associativity().find(balance)
                 if "group" in c.description]
        assert cands
        back = cands[0].apply(balance)
        assert count_kind(back, OpKind.ADD) == 2
        assert count_kind(back, OpKind.SUB) == 1

    def test_chain_balancing_reduces_height(self):
        beh = ALL["expr_chain"]()
        cands = Associativity().find(beh)
        assert cands
        t = cands[0].apply(beh)
        g = t.graph
        # Balanced (a+b)+(c+d): the root's operands are both adds.
        adds = [n.id for n in t.graph if n.kind is OpKind.ADD]
        roots = [a for a in adds
                 if not any(g.nodes[d].kind is OpKind.ADD
                            for d, _ in g.data_users(a))]
        assert len(roots) == 1
        ins = g.data_inputs(roots[0])
        assert all(g.nodes[i].kind is OpKind.ADD for i in ins)


class TestCse:
    def test_prefix_sums_share_subtrees_after_balancing(self):
        beh = prefix_sums()
        # Balance every prefix chain, then CSE.
        for _ in range(4):
            cands = Associativity().find(beh)
            if not cands:
                break
            beh = cands[0].apply(beh)
        before = count_kind(beh, OpKind.ADD)
        beh = eliminate_all_cse(beh)
        assert count_kind(beh, OpKind.ADD) <= before
        res = execute(beh, {"x0": 1, "x1": 2, "x2": 3, "x3": 4})
        assert [res.outputs[f"s{i}"] for i in range(4)] == [1, 3, 6, 10]

    def test_direct_duplicates_merged(self):
        from repro.cdfg import BehaviorBuilder
        b = BehaviorBuilder("dups")
        x = b.input("x")
        y = b.input("y")
        b.assign("p", b.add(x, y))
        b.assign("q", b.add(y, x))  # commutative duplicate
        b.assign("r", b.mul(b.var("p"), b.var("q")))
        b.output("r")
        beh = b.finish()
        cands = CommonSubexpression().find(beh)
        assert cands
        t = cands[0].apply(beh)
        assert count_kind(t, OpKind.ADD) == 1
        assert execute(t, {"x": 3, "y": 4}).outputs["r"] == 49


class TestStrengthReduction:
    @pytest.mark.parametrize("value", [1, 2, 3, 7, 12, 105, 255, 1000])
    def test_csd_digits_reconstruct(self, value):
        assert sum(s * (1 << k) for s, k in csd_digits(value)) == value

    def test_csd_is_sparse(self):
        # 255 = 256 - 1: two digits, not eight.
        assert len(csd_digits(255)) == 2

    def test_mul_by_constant_becomes_shift_add(self):
        beh = const_mul()  # x * 105
        cands = StrengthReduction().find(beh)
        assert cands
        t = cands[0].apply(beh)
        assert count_kind(t, OpKind.MUL) == 0
        assert count_kind(t, OpKind.SHL) >= 2
        for x in (0, 1, 7, -13, 999):
            assert execute(t, {"x": x}).outputs["r"] == \
                execute(beh, {"x": x}).outputs["r"]

    def test_power_of_two_needs_no_arithmetic(self):
        from repro.lang import compile_source
        beh = compile_source("proc p(in x, out r) { r = x * 8; }")
        t = StrengthReduction().find(beh)[0].apply(beh)
        assert count_kind(t, OpKind.MUL) == 0
        assert count_kind(t, OpKind.ADD) == 0
        assert count_kind(t, OpKind.SUB) == 0
        assert execute(t, {"x": 5}).outputs["r"] == 40


class TestSpeculation:
    def test_gcd_subtractions_become_unguarded(self):
        beh = gcd()
        g = beh.graph
        subs = [n.id for n in g if n.kind is OpKind.SUB]
        assert all(g.control_inputs(s) for s in subs)
        cands = Speculation().find(beh)
        t = beh
        for _ in range(4):
            cands = Speculation().find(t)
            if not cands:
                break
            t = cands[0].apply(t)
        subs_t = [n.id for n in t.graph if n.kind is OpKind.SUB]
        assert subs_t and all(not t.graph.control_inputs(s)
                              for s in subs_t)
        assert execute(t, {"a": 36, "b": 48}).outputs["g"] == 12

    def test_cone_speculation_lifts_producers(self):
        beh = ALL["test1"]()
        cands = [c for c in Speculation().find(beh)
                 if "mul" in c.description]
        assert cands and "+1 producers" in cands[0].description
        t = cands[0].apply(beh)
        muls = [n.id for n in t.graph if n.kind is OpKind.MUL]
        assert all(not t.graph.control_inputs(m) for m in muls)
        ref = execute(beh, {"c1": 3, "c2": 9})
        got = execute(t, {"c1": 3, "c2": 9})
        assert ref.outputs == got.outputs


class TestHoisting:
    def test_invariant_mul_moves_before_loop(self):
        beh = loop_invariant()
        cands = [c for c in LoopInvariantMotion().find(beh)
                 if "mul" in c.description]
        assert cands
        t = cands[0].apply(beh)
        loop_ids = t.loop("L1").node_ids()
        muls = [n.id for n in t.graph if n.kind is OpKind.MUL]
        assert muls and all(m not in loop_ids for m in muls)
        assert execute(t, {"a": 3, "b": 4, "n": 5}).outputs["s"] == 60


class TestUnrolling:
    @pytest.mark.parametrize("factor", [2, 4])
    def test_unrolled_sum_equivalent(self, factor):
        beh = counted_sum()
        t = beh.copy()
        unroll_loop(t, "L1", factor)
        assert t.loop("L1").trip_count == 16 // factor
        rng = random.Random(7)
        data = [rng.randint(0, 99) for _ in range(16)]
        assert execute(t, arrays={"x": data}).outputs["s"] == sum(data)

    def test_find_offers_divisible_factors_only(self):
        beh = counted_sum()  # trip count 16
        cands = LoopUnrolling((2, 3, 4)).find(beh)
        descriptions = [c.description for c in cands]
        assert any("x2" in d for d in descriptions)
        assert any("x4" in d for d in descriptions)
        assert not any("x3" in d for d in descriptions)

    def test_unrolled_body_has_cloned_ops(self):
        beh = counted_sum()
        before = count_kind(beh, OpKind.ADD) + count_kind(beh, OpKind.INC)
        t = beh.copy()
        unroll_loop(t, "L1", 2)
        after = count_kind(t, OpKind.ADD) + count_kind(t, OpKind.INC)
        assert after >= 2 * before - 2


class TestDistributivity:
    def test_local_factoring(self):
        beh = shared_mul()  # a*b - a*c
        cands = [c for c in Distributivity().find(beh)
                 if "factor" in c.description]
        assert cands
        t = cands[0].apply(beh)
        assert count_kind(t, OpKind.MUL) == 1
        for a, b, c in [(3, 7, 2), (0, 5, 5), (-4, 9, 11)]:
            assert execute(t, {"a": a, "b": b, "c": c}).outputs["r"] \
                == a * b - a * c

    def test_expansion_direction(self):
        from repro.lang import compile_source
        beh = compile_source(
            "proc p(in a, in b, in c, out r) { r = a * (b + c); }")
        cands = [c for c in Distributivity().find(beh)
                 if "expand" in c.description]
        assert cands
        t = cands[0].apply(beh)
        assert count_kind(t, OpKind.MUL) == 2
        assert execute(t, {"a": 3, "b": 4, "c": 5}).outputs["r"] == 27

    def test_cross_block_factoring_example3(self):
        """Example 3: the pattern matched through joins."""
        beh = guarded_muls()
        cands = [c for c in Distributivity().find(beh)
                 if "across joins" in c.description]
        assert cands, "cross-block site not recognized"
        t = cands[0].apply(beh)
        # Under C (c>0): one multiply instead of two.
        assert count_kind(t, OpKind.MUL) == 1
        for c_val in (1, 0, -3):
            stim = {"x1": 3, "x2": 7, "x3": 2, "x4": 10, "x5": 4,
                    "c": c_val}
            expected = 3 * 7 - 3 * 2 if c_val > 0 else 10 - 4
            assert execute(t, stim).outputs["r"] == expected

    def test_cross_block_impls_are_guarded_mutually_exclusive(self):
        beh = guarded_muls()
        cand = [c for c in Distributivity().find(beh)
                if "across joins" in c.description][0]
        t = cand.apply(beh)
        g = t.graph
        ga = GuardAnalysis(g)
        subs = [n.id for n in g if n.kind is OpKind.SUB]
        assert len(subs) == 2
        assert ga.mutually_exclusive(subs[0], subs[1])

"""Shared corpus of behaviors for transformation testing."""

from repro.cdfg import BehaviorBuilder
from repro.lang import compile_source


def gcd():
    return compile_source("""
        proc gcd(in a, in b, out g) {
            while (a != b) {
                if (a < b) { b = b - a; } else { a = a - b; }
            }
            g = a;
        }
    """)


def test1():
    return compile_source("""
        proc test1(in c1, in c2, array x[64], out a) {
            var i = 0;
            var acc = 0;
            while (c2 > i) {
                if (i < c1) { acc = 13 * (acc + 7); }
                else { acc = acc + 17; }
                i = i + 1;
                x[i] = acc;
            }
            a = acc;
        }
    """)


def expr_chain():
    return compile_source("""
        proc chain(in a, in b, in c, in d, out r) {
            r = ((a + b) + c) + d;
        }
    """)


def shared_mul():
    """Distributivity pattern: a*b - a*c."""
    return compile_source("""
        proc sm(in a, in b, in c, out r) {
            r = a * b - a * c;
        }
    """)


def mixed_sum():
    """Example-2 style: (y1 + y2) - (y3 + y4)."""
    return compile_source("""
        proc ms(in y1, in y2, in y3, in y4, out r) {
            r = (y1 + y2) - (y3 + y4);
        }
    """)


def const_expr():
    return compile_source("""
        proc ce(in x, out r) {
            var k = 3 * 4 + 2;
            r = (x + 0) * 1 + k - (x * 0);
        }
    """)


def guarded_muls():
    """Example-3 shape: multiplies under a condition merging at a join."""
    return compile_source("""
        proc gm(in x1, in x2, in x3, in x4, in x5, in c, out r) {
            var p = 0;
            var q = 0;
            if (c > 0) { p = x1 * x2; q = x1 * x3; }
            else { p = x4; q = x5; }
            r = p - q;
        }
    """)


def counted_sum():
    return compile_source("""
        proc cs(array x[16], out s) {
            var acc = 0;
            for (i = 0; i < 16; i = i + 1) { acc = acc + x[i]; }
            s = acc;
        }
    """)


def loop_invariant():
    return compile_source("""
        proc li(in a, in b, in n, out s) {
            var acc = 0;
            var i = 0;
            while (i < n) {
                var k = a * b;
                acc = acc + k;
                i = i + 1;
            }
            s = acc;
        }
    """)


def const_mul():
    return compile_source("""
        proc cm(in x, out r) {
            r = x * 105;
        }
    """)


def prefix_sums():
    return compile_source("""
        proc pps(in x0, in x1, in x2, in x3,
                 out s0, out s1, out s2, out s3) {
            s0 = x0;
            s1 = s0 + x1;
            s2 = s1 + x2;
            s3 = s2 + x3;
        }
    """)


ALL = {
    "gcd": gcd,
    "test1": test1,
    "expr_chain": expr_chain,
    "shared_mul": shared_mul,
    "mixed_sum": mixed_sum,
    "const_expr": const_expr,
    "guarded_muls": guarded_muls,
    "counted_sum": counted_sum,
    "loop_invariant": loop_invariant,
    "const_mul": const_mul,
    "prefix_sums": prefix_sums,
}

"""Differential testing: every candidate must preserve functionality.

For each behavior in the corpus and every candidate of every
transformation, the transformed behavior must produce identical outputs
and final memory on a battery of random inputs.  This is the master
safety net for the whole transformation library.
"""

import random

import pytest

from repro.cdfg import execute, validate_behavior
from repro.transforms import default_library

from .behaviors import ALL

LIBRARY = default_library()


def random_stimulus(behavior, rng):
    inputs = {name: rng.randint(1, 60) for name in behavior.inputs}
    arrays = {name: [rng.randint(0, 50) for _ in range(decl.size)]
              for name, decl in behavior.arrays.items()}
    return inputs, arrays


def equivalent(original, transformed, seed=0, runs=6):
    rng = random.Random(seed)
    for _ in range(runs):
        inputs, arrays = random_stimulus(original, rng)
        ref = execute(original, inputs, arrays)
        got = execute(transformed, inputs, arrays)
        if ref.outputs != got.outputs or ref.arrays != got.arrays:
            return False, (inputs, ref.outputs, got.outputs)
    return True, None


@pytest.mark.parametrize("name", sorted(ALL))
def test_all_candidates_preserve_functionality(name):
    behavior = ALL[name]()
    candidates = LIBRARY.candidates(behavior)
    applied = 0
    for cand in candidates:
        transformed = cand.apply(behavior)
        validate_behavior(transformed)
        ok, info = equivalent(behavior, transformed, seed=hash(name) & 0xFF)
        assert ok, f"{cand.transform}: {cand.description}: {info}"
        applied += 1
    # The corpus is designed so every behavior offers at least one site.
    assert applied >= 1, f"no candidates found on {name}"


@pytest.mark.parametrize("name", sorted(ALL))
def test_double_application_still_equivalent(name):
    """Apply two candidates in sequence (search does this constantly)."""
    behavior = ALL[name]()
    first = LIBRARY.candidates(behavior)
    if not first:
        pytest.skip("no candidates")
    step1 = first[0].apply(behavior)
    second = LIBRARY.candidates(step1)
    if not second:
        ok, info = equivalent(behavior, step1, seed=1)
        assert ok, info
        return
    step2 = second[len(second) // 2].apply(step1)
    validate_behavior(step2)
    ok, info = equivalent(behavior, step2, seed=2)
    assert ok, info


def test_candidate_application_does_not_mutate_original():
    behavior = ALL["shared_mul"]()
    before = behavior.graph.stats()
    for cand in LIBRARY.candidates(behavior):
        cand.apply(behavior)
    assert behavior.graph.stats() == before

"""Speculative while-loop unrolling tests."""

import math
import random

import pytest

from repro.cdfg import OpKind, execute, validate_behavior
from repro.errors import TransformError
from repro.lang import compile_source
from repro.transforms import (Speculation, SpeculativeUnrolling,
                              speculative_unroll)

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

COUNTDOWN = """
proc cd(in n, out r) {
    var i = n;
    var acc = 0;
    while (i > 0) {
        acc = acc + i;
        i = i - 1;
    }
    r = acc;
}
"""

WITH_STORE = """
proc ws(in n, array out_buf[64], out last) {
    var i = 0;
    while (i < n) {
        out_buf[i] = i * 3;
        i = i + 1;
    }
    last = i;
}
"""


class TestEligibility:
    def test_gcd_eligible(self):
        beh = compile_source(GCD)
        assert len(SpeculativeUnrolling().find(beh)) == 1

    def test_nested_loops_not_eligible(self):
        beh = compile_source("""
            proc p(in n, out t) {
                var i = 0;
                var acc = 0;
                while (i < n) {
                    var j = 0;
                    while (j < i) { acc = acc + 1; j = j + 1; }
                    i = i + 1;
                }
                t = acc;
            }
        """)
        names = [c.description for c in
                 SpeculativeUnrolling().find(beh)]
        # Only the flat inner loop qualifies.
        assert names == ["speculatively unroll L2"]

    def test_trapping_body_not_eligible(self):
        beh = compile_source("""
            proc p(in n, in d, out r) {
                var i = n;
                while (i > 0) { i = i / d; }
                r = i;
            }
        """)
        assert SpeculativeUnrolling().find(beh) == []


class TestFunctionalEquivalence:
    def test_gcd_exact(self):
        beh = compile_source(GCD)
        t = beh.copy()
        speculative_unroll(t, "L1")
        validate_behavior(t)
        rng = random.Random(3)
        for _ in range(25):
            a, b = rng.randint(1, 500), rng.randint(1, 500)
            assert execute(t, {"a": a, "b": b}).outputs["g"] \
                == math.gcd(a, b)

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8, 31])
    def test_countdown_all_parities(self, n):
        """Odd/even iteration counts exercise the cond2 guard."""
        beh = compile_source(COUNTDOWN)
        t = beh.copy()
        speculative_unroll(t, "L1")
        assert execute(t, {"n": n}).outputs["r"] == n * (n + 1) // 2

    @pytest.mark.parametrize("n", [0, 1, 5, 16, 63])
    def test_guarded_stores_stay_exact(self, n):
        beh = compile_source(WITH_STORE)
        t = beh.copy()
        speculative_unroll(t, "L1")
        ref = execute(beh, {"n": n})
        got = execute(t, {"n": n})
        assert got.arrays == ref.arrays
        assert got.outputs == ref.outputs

    def test_double_unroll_is_still_exact(self):
        beh = compile_source(COUNTDOWN)
        t = beh.copy()
        speculative_unroll(t, "L1")
        speculative_unroll(t, "L1")
        validate_behavior(t)
        for n in (0, 1, 2, 3, 4, 5, 9, 10):
            assert execute(t, {"n": n}).outputs["r"] == n * (n + 1) // 2
        assert t.cond_weights[t.loop("L1").cond] == 4


class TestBookkeeping:
    def test_cond_weight_and_alias_recorded(self):
        beh = compile_source(GCD)
        t = beh.copy()
        cond = t.loop("L1").cond
        speculative_unroll(t, "L1")
        assert t.cond_weights[cond] == 2
        assert cond in t.cond_aliases.values()

    def test_weight_adjusts_estimated_iterations(self):
        """E[iterations] is preserved: p -> p/(2-p) halves E[passes]."""
        from repro.bench import allocation_for
        from repro.hw import dac98_library
        from repro.sched import SchedConfig, Scheduler
        beh = compile_source(COUNTDOWN)
        cond = beh.loop("L1").cond
        probs = {cond: 0.9}  # E[iters] = 9
        t = beh.copy()
        speculative_unroll(t, "L1")
        alloc = allocation_for("gcd").copy()
        alloc.counts.update({"a1": 2, "sb1": 4, "i1": 2, "cp1": 2})
        base = Scheduler(beh, dac98_library(), alloc, SchedConfig(),
                         probs).schedule().average_length()
        unrolled = Scheduler(t, dac98_library(), alloc, SchedConfig(),
                             probs).schedule().average_length()
        # Half the passes; per-pass work fits the widened allocation.
        assert unrolled < base

    def test_ineligible_raises(self):
        beh = compile_source("""
            proc p(in n, in d, out r) {
                var i = n;
                while (i > 0) { i = i / d; }
                r = i;
            }
        """)
        with pytest.raises(TransformError):
            speculative_unroll(beh.copy(), "L1")


class TestSearchDiscovery:
    def test_fact_finds_two_iterations_per_cycle_gcd(self):
        """With four subtracters, FACT chains speculation +
        speculative unrolling and retires two GCD steps per cycle."""
        from repro.core import (Fact, FactConfig, SearchConfig,
                                THROUGHPUT)
        from repro.hw import Allocation, dac98_library
        beh = compile_source(GCD)
        probs = {beh.loop("L1").cond: 0.9}
        fact = Fact(dac98_library(), config=FactConfig(
            search=SearchConfig(max_outer_iters=6, max_moves=2,
                                in_set_size=4, seed=2,
                                max_candidates_per_seed=32)))
        res = fact.optimize(beh, Allocation({"sb1": 4, "cp1": 2,
                                             "e1": 2}),
                            branch_probs=probs, objective=THROUGHPUT)
        assert res.speedup >= 2.5
        assert any("spec_unroll" in step for step in res.best.lineage)
        assert execute(res.best.behavior,
                       {"a": 36, "b": 60}).outputs["g"] == 12

"""Hypothesis strategies shared by the property tests."""

from hypothesis import strategies as st

#: Input variable names available to generated expressions.
VARS = ("a", "b", "c")

#: Binary operators that are total over the integers (no division).
BINOPS = ("+", "-", "*", "&", "|", "^")

COMPARISONS = ("<", ">", "<=", ">=", "==", "!=")


@st.composite
def expressions(draw, depth=3):
    """A BDL expression string over the variables in :data:`VARS`.

    The same string is valid Python (with C-precedence-compatible
    operator set), so generated programs can be checked against
    ``eval``.
    """
    if depth <= 0 or draw(st.booleans()):
        leaf = draw(st.sampled_from(
            VARS + tuple(str(n) for n in (0, 1, 2, 5, 13))))
        return leaf
    op = draw(st.sampled_from(BINOPS))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"({left} {op} {right})"


@st.composite
def straightline_programs(draw, n_stmts=4):
    """A BDL procedure body of chained assignments; returns (src, py).

    ``py`` is an equivalent Python function body operating on wrapped
    integers (the caller applies wrapping).
    """
    lines = []
    names = list(VARS)
    for i in range(draw(st.integers(1, n_stmts))):
        expr = draw(expressions(depth=3))
        name = f"t{i}"
        lines.append((name, expr))
        names.append(name)
    # Result combines the last temporary with an input.
    result_expr = f"({lines[-1][0]} + a)"
    src_stmts = "\n".join(f"    var {name} = {expr};"
                          for name, expr in lines)
    source = (f"proc p(in a, in b, in c, out r) {{\n{src_stmts}\n"
              f"    r = {result_expr};\n}}")
    return source, lines, result_expr


@st.composite
def input_values(draw):
    """Concrete values for the three inputs."""
    val = st.integers(min_value=-(2 ** 20), max_value=2 ** 20)
    return {name: draw(val) for name in VARS}

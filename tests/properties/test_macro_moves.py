"""Macro-move chains preserve semantics and replayable lineage.

A macro candidate is a whole dependent rewrite chain evaluated as one
search move; whatever the chain does to the graph, it must stay an
ordinary sequence of semantics-preserving rewrites — interpreting the
product matches the seed on random stimuli, and the composed lineage
is exactly the per-step entries a one-rewrite-at-a-time search would
have logged.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.circuits import circuit
from repro.cdfg import execute, validate_behavior
from repro.rewrite import RewriteDriver
from repro.search.macro import compose_lineage, expand_macro_chains
from repro.transforms import default_library

import random

NAMES = ["gcd", "test2"]
_BEHAVIORS = {name: circuit(name).behavior() for name in NAMES}


def _chains(name, depth=2, limit=6):
    behavior = _BEHAVIORS[name]
    driver = RewriteDriver(default_library())
    return behavior, expand_macro_chains(
        driver, [(behavior, ("seed",))], depth=depth, limit=limit)


@settings(deadline=None, max_examples=12,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(NAMES), seed=st.integers(0, 2 ** 16))
def test_macro_products_preserve_semantics(name, seed):
    behavior, pairs = _chains(name)
    rng = random.Random(seed)
    inputs = {k: rng.randint(1, 60) for k in behavior.inputs}
    arrays = {k: [rng.randint(0, 50) for _ in range(decl.size)]
              for k, decl in behavior.arrays.items()}
    want = execute(behavior, inputs, {k: list(v)
                                      for k, v in arrays.items()})
    for child, lineage in pairs:
        validate_behavior(child)
        got = execute(child, inputs, {k: list(v)
                                      for k, v in arrays.items()})
        assert got.outputs == want.outputs, lineage
        assert got.arrays == want.arrays, lineage


@pytest.mark.parametrize("name", NAMES)
def test_macro_lineage_composes_and_replays(name):
    behavior, pairs = _chains(name)
    assert pairs, f"no macro chains on {name}"
    driver = RewriteDriver(default_library())
    for child, lineage in pairs:
        assert lineage[0] == "seed"
        steps = lineage[1:]
        assert 2 <= len(steps)
        assert all(":" in s for s in steps)
        # replay: apply each step's candidate by description, in order
        replayed = behavior
        for step in steps:
            transform, _, description = step.partition(":")
            matches = [c for c in driver.candidates(replayed)
                       if c.transform == transform
                       and c.description == description]
            assert matches, f"step {step!r} not re-enumerable"
            replayed = driver.apply(replayed, matches[0])
        from repro.core.evalcache import behavior_fingerprint
        assert behavior_fingerprint(replayed) \
            == behavior_fingerprint(child), lineage


@pytest.mark.parametrize("name", NAMES)
def test_macro_enumeration_deterministic_and_rng_free(name):
    _, first = _chains(name)
    _, second = _chains(name)
    from repro.core.evalcache import behavior_fingerprint
    sig = lambda pairs: [(behavior_fingerprint(b), l)
                         for b, l in pairs]
    assert sig(first) == sig(second)


def test_compose_lineage_appends_steps():
    class FakeCand:
        transform = "t"
        description = "d"
    assert compose_lineage(("a",), [FakeCand(), FakeCand()]) \
        == ("a", "t:d", "t:d")


@pytest.mark.parametrize("name", NAMES)
def test_chain_depth_and_limit_respected(name):
    behavior, pairs = _chains(name, depth=3, limit=4)
    assert len(pairs) <= 4
    for _, lineage in pairs:
        assert len(lineage) - 1 <= 3

"""Properties of the numeric core: wrapping, CSD, Markov, scheduling."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cdfg import DEFAULT_WIDTH, GuardAnalysis, OpKind, evaluate, wrap
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.sched import ResourceModel, SchedConfig, schedule_behavior
from repro.stg import Stg, average_schedule_length, simulate
from repro.transforms import csd_digits

from .strategies import expressions, input_values

LIB = dac98_library()


class TestWrap:
    @given(st.integers())
    def test_wrap_is_idempotent(self, x):
        assert wrap(wrap(x)) == wrap(x)

    @given(st.integers())
    def test_wrap_range(self, x):
        w = wrap(x)
        assert -(2 ** 31) <= w < 2 ** 31

    @given(st.integers(), st.integers())
    def test_add_is_homomorphic(self, x, y):
        assert wrap(wrap(x) + wrap(y)) == wrap(x + y)

    @given(st.integers(), st.integers())
    def test_mul_is_homomorphic(self, x, y):
        assert wrap(wrap(x) * wrap(y)) == wrap(x * y)


class TestEvaluate:
    @given(st.integers(-10 ** 9, 10 ** 9), st.integers(-10 ** 9, 10 ** 9))
    def test_commutativity_of_add_mul(self, x, y):
        assert evaluate(OpKind.ADD, x, y) == evaluate(OpKind.ADD, y, x)
        assert evaluate(OpKind.MUL, x, y) == evaluate(OpKind.MUL, y, x)

    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(-10 ** 6, 10 ** 6),
           st.integers(-10 ** 6, 10 ** 6))
    def test_associativity_modular(self, x, y, z):
        left = evaluate(OpKind.ADD, evaluate(OpKind.ADD, x, y), z)
        right = evaluate(OpKind.ADD, x, evaluate(OpKind.ADD, y, z))
        assert left == right

    @given(st.integers(-10 ** 5, 10 ** 5), st.integers(-10 ** 5, 10 ** 5),
           st.integers(-10 ** 5, 10 ** 5))
    def test_distributivity_modular(self, a, b, c):
        lhs = evaluate(OpKind.MUL, a, evaluate(OpKind.SUB, b, c))
        rhs = evaluate(OpKind.SUB, evaluate(OpKind.MUL, a, b),
                       evaluate(OpKind.MUL, a, c))
        assert lhs == rhs

    @given(st.integers(-10 ** 9, 10 ** 9))
    def test_comparison_flip(self, x):
        assert evaluate(OpKind.LT, x, 5) == evaluate(OpKind.GT, 5, x)


class TestCsd:
    @given(st.integers(1, 2 ** 30))
    def test_reconstruction(self, value):
        digits = csd_digits(value)
        assert sum(s * (1 << k) for s, k in digits) == value

    @given(st.integers(1, 2 ** 30))
    def test_no_adjacent_digits(self, value):
        shifts = sorted(k for _s, k in csd_digits(value))
        assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))

    @given(st.integers(1, 2 ** 20))
    def test_weight_no_worse_than_binary(self, value):
        assert len(csd_digits(value)) <= bin(value).count("1")


class TestMarkovProperties:
    @given(st.lists(st.floats(0.05, 0.95), min_size=1, max_size=6),
           st.integers(0, 2 ** 30))
    @settings(max_examples=40, deadline=None)
    def test_chain_of_self_loops(self, probs, seed):
        """Expected length of chained geometric states is the sum."""
        stg = Stg()
        states = [stg.add_state() for _ in probs]
        exit_ = stg.add_state()
        for sid, p in zip(states, probs):
            stg.add_transition(sid, sid, p)
        for a, b in zip(states, states[1:]):
            stg.add_transition(a, b, 1.0 - probs[states.index(a)])
        stg.add_transition(states[-1], exit_, 1.0 - probs[-1])
        stg.entry, stg.exit = states[0], exit_
        expected = sum(1.0 / (1.0 - p) for p in probs) + 1.0
        assert abs(average_schedule_length(stg) - expected) < 1e-6

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_analysis_matches_simulation(self, p):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        exit_ = stg.add_state()
        stg.add_transition(a, b, 1.0)
        stg.add_transition(b, a, p)
        stg.add_transition(b, exit_, 1.0 - p)
        stg.entry, stg.exit = a, exit_
        exact = average_schedule_length(stg)
        est = simulate(stg, runs=3000, seed=11).mean_length
        assert abs(est - exact) / exact < 0.1


class TestScheduleInvariants:
    @given(expr=expressions(depth=3))
    @settings(max_examples=30, deadline=None)
    def test_states_never_oversubscribe_resources(self, expr):
        source = f"proc p(in a, in b, in c, out r) {{ r = {expr}; }}"
        behavior = compile_source(source)
        alloc = Allocation({"a1": 1, "sb1": 1, "mt1": 1, "n1": 1,
                            "i1": 1, "s1": 1, "cp1": 1, "e1": 1})
        result = schedule_behavior(behavior, LIB, alloc, SchedConfig())
        rm = ResourceModel(behavior.graph, LIB, alloc)
        guards = GuardAnalysis(behavior.graph)
        for state in result.stg.states.values():
            usage = {}
            for op in state.ops:
                res = rm.resource_of(op.node)
                if res is None:
                    continue
                usage.setdefault(res, []).append(op.node)
            for res, ops in usage.items():
                # Count instances needed, allowing mutex sharing.
                needed = 0
                groups = []
                for nid in ops:
                    for group in groups:
                        if all(guards.mutually_exclusive(nid, o)
                               for o in group):
                            group.append(nid)
                            break
                    else:
                        groups.append([nid])
                needed = len(groups)
                assert needed <= rm.capacity_of(res), (res, ops)

    @given(expr=expressions(depth=3))
    @settings(max_examples=20, deadline=None)
    def test_schedule_length_positive_and_finite(self, expr):
        source = f"proc p(in a, in b, in c, out r) {{ r = {expr}; }}"
        behavior = compile_source(source)
        result = schedule_behavior(
            behavior, LIB, Allocation({"a1": 2, "sb1": 2, "mt1": 2,
                                       "n1": 2, "i1": 2, "s1": 2,
                                       "cp1": 2, "e1": 2}),
            SchedConfig())
        length = result.average_length()
        assert 1.0 <= length < 1000.0

"""Property: compiled BDL programs compute what Python computes.

Fully parenthesized expressions over ``+ - * & | ^`` form a ring
homomorphism with 32-bit wrapping, so evaluating the generated source
with Python and wrapping once must equal the interpreter's result.
"""

from hypothesis import given, settings

from repro.cdfg import execute, wrap
from repro.lang import compile_source

from .strategies import expressions, input_values, straightline_programs


@settings(max_examples=60, deadline=None)
@given(expr=expressions(), values=input_values())
def test_expression_compilation_matches_python(expr, values):
    source = f"proc p(in a, in b, in c, out r) {{ r = {expr}; }}"
    behavior = compile_source(source)
    got = execute(behavior, values).outputs["r"]
    expected = wrap(eval(expr, {}, dict(values)))
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(prog=straightline_programs(), values=input_values())
def test_straightline_programs_match_python(prog, values):
    source, lines, result_expr = prog
    behavior = compile_source(source)
    got = execute(behavior, values).outputs["r"]
    env = dict(values)
    for name, expr in lines:
        env[name] = wrap(eval(expr, {}, env))
    expected = wrap(eval(result_expr, {}, env))
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(expr=expressions(depth=2), values=input_values())
def test_conditional_assignment_matches_python(expr, values):
    source = f"""
        proc p(in a, in b, in c, out r) {{
            var v = 0;
            if (a < b) {{ v = {expr}; }} else {{ v = a - c; }}
            r = v;
        }}
    """
    behavior = compile_source(source)
    got = execute(behavior, values).outputs["r"]
    if values["a"] < values["b"]:
        expected = wrap(eval(expr, {}, dict(values)))
    else:
        expected = wrap(values["a"] - values["c"])
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(values=input_values())
def test_bounded_loop_matches_python(values):
    n = abs(values["a"]) % 20
    source = """
        proc p(in n, in b, out r) {
            var acc = b;
            var i = 0;
            while (i < n) {
                acc = acc * 3 + i;
                i = i + 1;
            }
            r = acc;
        }
    """
    behavior = compile_source(source)
    got = execute(behavior, {"n": n, "b": values["b"]}).outputs["r"]
    acc = values["b"]
    for i in range(n):
        acc = wrap(wrap(acc * 3) + i)
    assert got == wrap(acc)

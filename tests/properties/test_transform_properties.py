"""Property: every transformation preserves program semantics.

For arbitrary generated straight-line programs, every candidate offered
by the default transformation library must produce a behavior computing
the same outputs — and so must short random *sequences* of candidates,
which is what the search actually applies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg import execute, validate_behavior, wrap
from repro.lang import compile_source
from repro.transforms import default_library

from .strategies import input_values, straightline_programs

LIBRARY = default_library()

_SAMPLES = [
    {"a": 0, "b": 0, "c": 0},
    {"a": 1, "b": -1, "c": 13},
    {"a": 977, "b": -445, "c": 7},
    {"a": -(2 ** 20), "b": 2 ** 20, "c": 1},
]


def outputs(behavior, values):
    return execute(behavior, values).outputs


@settings(max_examples=25, deadline=None)
@given(prog=straightline_programs())
def test_every_candidate_preserves_semantics(prog):
    source, _lines, _result = prog
    behavior = compile_source(source)
    reference = [outputs(behavior, v) for v in _SAMPLES]
    for cand in LIBRARY.candidates(behavior):
        transformed = cand.apply(behavior)
        validate_behavior(transformed)
        for values, ref in zip(_SAMPLES, reference):
            assert outputs(transformed, values) == ref, cand.description


@settings(max_examples=15, deadline=None)
@given(prog=straightline_programs(),
       picks=st.lists(st.integers(0, 10 ** 6), min_size=3, max_size=3))
def test_candidate_sequences_preserve_semantics(prog, picks):
    source, _lines, _result = prog
    behavior = compile_source(source)
    reference = [outputs(behavior, v) for v in _SAMPLES]
    current = behavior
    for pick in picks:
        candidates = LIBRARY.candidates(current)
        if not candidates:
            break
        current = candidates[pick % len(candidates)].apply(current)
    validate_behavior(current)
    for values, ref in zip(_SAMPLES, reference):
        assert outputs(current, values) == ref


@settings(max_examples=25, deadline=None)
@given(values=input_values(), c=st.integers(-3000, 3000))
def test_strength_reduction_exact_for_any_constant(values, c):
    from repro.transforms import StrengthReduction
    source = f"proc p(in a, in b, in c, out r) {{ r = a * {c}; }}" \
        if c >= 0 else \
        f"proc p(in a, in b, in c, out r) {{ r = a * (0 - {-c}); }}"
    behavior = compile_source(source)
    cands = StrengthReduction().find(behavior)
    for cand in cands:
        transformed = cand.apply(behavior)
        assert execute(transformed, values).outputs["r"] \
            == wrap(values["a"] * c)

"""Pattern rewrites preserve semantics on the paper's seed designs.

Two contracts guard the pattern/driver refactor:

* **semantic equivalence** — for every candidate the driver enumerates
  on a benchmark circuit, interpreting the rewritten behavior on random
  stimuli produces the seed's outputs and final memory;
* **enumeration equivalence** — the legacy ``find()``/
  ``TransformLibrary.candidates`` scan and the
  :class:`~repro.rewrite.driver.RewriteDriver` enumerate the identical
  canonically-ordered candidate set.
"""

import random

import pytest

from repro.bench.circuits import CIRCUITS, circuit
from repro.cdfg import execute, validate_behavior
from repro.errors import ReproError
from repro.rewrite import RewriteDriver
from repro.transforms import default_library

SEED_DESIGNS = ["gcd", "fir", "test2"]


def random_stimulus(behavior, rng):
    inputs = {name: rng.randint(1, 60) for name in behavior.inputs}
    arrays = {name: [rng.randint(0, 50) for _ in range(decl.size)]
              for name, decl in behavior.arrays.items()}
    return inputs, arrays


def assert_equivalent(original, transformed, seed, runs=3, label=""):
    rng = random.Random(seed)
    for _ in range(runs):
        inputs, arrays = random_stimulus(original, rng)
        ref = execute(original, inputs, dict(arrays))
        got = execute(transformed, inputs, dict(arrays))
        assert got.outputs == ref.outputs, (label, inputs)
        assert got.arrays == ref.arrays, (label, inputs)


@pytest.mark.parametrize("name", SEED_DESIGNS)
def test_every_pattern_apply_preserves_semantics(name):
    behavior = circuit(name).behavior()
    driver = RewriteDriver(default_library())
    applied = 0
    for cand in driver.candidates(behavior):
        try:
            transformed = driver.apply(behavior, cand)
        except ReproError:
            continue
        validate_behavior(transformed)
        assert_equivalent(behavior, transformed, seed=hash(name) & 0xFF,
                          label=f"{cand.transform}: {cand.description}")
        applied += 1
    assert applied >= 1, f"no applicable candidates on {name}"


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_driver_equals_legacy_enumeration(name):
    behavior = circuit(name).behavior()
    library = default_library()
    legacy = sorted(library.candidates(behavior), key=lambda c: c.sort_key)
    driven = RewriteDriver(library).candidates(behavior)
    assert [c.sort_key for c in legacy] == [c.sort_key for c in driven]
    assert [c.description for c in legacy] \
        == [c.description for c in driven]


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_find_adapter_agrees_with_match(name):
    """Every transformation's legacy ``find()`` view is exactly its
    pattern matches (one candidate per match, same order)."""
    from repro.rewrite import AnalysisManager
    behavior = circuit(name).behavior()
    analyses = AnalysisManager(behavior)
    for t in default_library().transformations:
        found = t.find(behavior)
        matched = t.match(behavior, analyses)
        assert [c.description for c in found] \
            == [m.description for m in matched], t.name

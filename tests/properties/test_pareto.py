"""Properties of the Pareto layer, plus the Test2 endpoint guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import circuit
from repro.core.fact import Fact, FactConfig
from repro.core.objectives import POWER, THROUGHPUT
from repro.core.search import SearchConfig
from repro.explore import (DesignMetrics, DesignPoint, ExploreConfig,
                           ExploreRunner, ParetoFront, dominates,
                           non_dominated_sort, nsga2_select)
from repro.hw import dac98_library
from repro.profiling import profile
from repro.transforms import default_library

# Small integer coordinates make ties and duplicate vectors common,
# which is exactly where dominance bookkeeping goes wrong.
coordinate = st.integers(0, 6).map(float)
objective_vector = st.tuples(coordinate, coordinate, coordinate)


def points_from(vectors):
    return [DesignPoint(f"p{i:03d}", (),
                        DesignMetrics(length=max(v[0], 0.1),
                                      energy=v[1], area=v[2]), v)
            for i, v in enumerate(vectors)]


class TestFrontInvariants:
    @given(st.lists(objective_vector, max_size=30))
    def test_no_member_dominates_another(self, vectors):
        front = ParetoFront()
        front.update(points_from(vectors))
        members = front.sorted_points()
        for a in members:
            for b in members:
                assert not dominates(a.objectives, b.objectives)

    @given(st.lists(objective_vector, min_size=1, max_size=30))
    def test_every_offer_is_covered_by_the_front(self, vectors):
        front = ParetoFront()
        front.update(points_from(vectors))
        members = front.sorted_points()
        assert members
        for v in vectors:
            assert any(m.objectives == v
                       or dominates(m.objectives, v)
                       for m in members)

    @given(st.lists(objective_vector, max_size=30))
    def test_insertion_order_does_not_change_objectives(self, vectors):
        a = ParetoFront()
        a.update(points_from(vectors))
        b = ParetoFront()
        b.update(points_from(list(reversed(vectors))))
        # Fingerprints differ across orderings only for equal-objective
        # representatives; the objective sets must match exactly.
        assert (sorted(p.objectives for p in a)
                == sorted(p.objectives for p in b))


class TestSortAndSelectInvariants:
    @given(st.lists(objective_vector, max_size=25))
    def test_sort_partitions_and_layers(self, vectors):
        fronts = non_dominated_sort(vectors)
        flat = [i for front in fronts for i in front]
        assert sorted(flat) == list(range(len(vectors)))
        for i in fronts[0] if fronts else ():
            assert not any(dominates(v, vectors[i]) for v in vectors)

    @given(st.lists(objective_vector, max_size=25), st.integers(1, 12))
    def test_select_size_and_membership(self, vectors, size):
        pts = points_from(vectors)
        chosen = nsga2_select(pts, size)
        assert len(chosen) == min(size, len(pts))
        ids = [p.fingerprint for p in chosen]
        assert len(set(ids)) == len(ids)
        assert set(ids) <= {p.fingerprint for p in pts}
        again = nsga2_select(list(pts), size)
        assert [p.fingerprint for p in again] == ids


class TestFrontEndpoints:
    """The exploration front must not trail the paper's single-objective
    flow: with the same seed and budget, its throughput endpoint is at
    least as good as ``optimize(objective="throughput")`` and its power
    endpoint at least as good as ``optimize(objective="power")``."""

    @pytest.mark.slow
    def test_test2_endpoints_cover_single_objective(self, tmp_path):
        c = circuit("test2")
        beh = c.behavior()
        probs = dict(profile(beh, c.traces(beh)).branch_probs)
        budget = SearchConfig(max_outer_iters=2, max_moves=1,
                              in_set_size=2,
                              max_candidates_per_seed=12, seed=5)
        fact = Fact(dac98_library(), default_library(),
                    FactConfig(sched=c.sched, search=budget))
        thr = fact.optimize(beh, c.allocation, objective=THROUGHPUT,
                            branch_probs=probs)
        pwr = fact.optimize(beh, c.allocation, objective=POWER,
                            branch_probs=probs)
        cfg = ExploreConfig(generations=1, population_size=4,
                            max_candidates_per_seed=8, seed=5,
                            sched=c.sched, search=budget)
        result = ExploreRunner(beh, c.allocation, config=cfg,
                               branch_probs=probs,
                               store=tmp_path / "store").run()
        front = result.front
        assert front.best(0).objectives[0] <= thr.best_length + 1e-9
        # The search's power score carries a tiny datapath tie-break
        # the front's power cost deliberately omits, hence <=.
        assert front.best(1).objectives[1] <= pwr.best.score + 1e-9

"""Objective and search-mechanics unit tests."""

import pytest

from repro.core import Objective, POWER, SearchConfig, THROUGHPUT
from repro.core.search import TransformSearch
from repro.errors import SearchError
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.sched import SchedConfig, schedule_behavior
from repro.transforms import TransformLibrary

LIB = dac98_library()


def scheduled(src, counts):
    beh = compile_source(src)
    return schedule_behavior(beh, LIB, Allocation(counts), SchedConfig())


class TestObjective:
    def test_throughput_is_length(self):
        result = scheduled(
            "proc p(in a, out r) { r = a * a; }", {"mt1": 1})
        obj = Objective(THROUGHPUT)
        assert obj.evaluate(result) == pytest.approx(
            result.average_length())

    def test_power_without_baseline_is_nominal_power(self):
        result = scheduled(
            "proc p(in a, out r) { r = a * a; }", {"mt1": 1})
        obj = Objective(POWER)
        from repro.power import estimate_power
        est = estimate_power(result.stg, result.behavior.graph, LIB,
                             vdd=5.0)
        assert obj.evaluate(result) == pytest.approx(est.power)

    def test_power_scales_vdd_against_baseline(self):
        result = scheduled(
            "proc p(in a, out r) { r = a * a; }", {"mt1": 1})
        length = result.average_length()
        fast = Objective(POWER, baseline_length=2 * length)
        nominal = Objective(POWER, baseline_length=length)
        # A design twice as fast as its baseline scales Vdd down and
        # spreads energy over the longer baseline: much cheaper.
        assert fast.evaluate(result) < nominal.evaluate(result)

    def test_power_penalizes_slower_than_baseline(self):
        result = scheduled(
            "proc p(in a, out r) { r = a * a; }", {"mt1": 1})
        length = result.average_length()
        violating = Objective(POWER, baseline_length=length / 2)
        ok = Objective(POWER, baseline_length=length)
        assert violating.evaluate(result) > ok.evaluate(result)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SearchError):
            Objective("area")

    def test_describe_mentions_metric(self):
        result = scheduled(
            "proc p(in a, out r) { r = a * a; }", {"mt1": 1})
        text = Objective(THROUGHPUT).describe(result)
        assert "throughput" in text


class TestSelectionMechanics:
    def _search(self, k0, k_step=0.0, seed=0):
        return TransformSearch(
            TransformLibrary([]), LIB, Allocation({"a1": 1}),
            Objective(THROUGHPUT),
            config=SearchConfig(k0=k0, k_step=k_step, seed=seed,
                                in_set_size=2))

    def test_high_k_selects_best_ranks(self):
        from repro.core.search import Evaluated
        search = self._search(k0=50.0)
        ranked = [Evaluated(None, None, float(i)) for i in range(10)]
        chosen = search._select(ranked, k=50.0)
        assert [e.score for e in chosen] == [0.0, 1.0]

    def test_zero_k_is_uniform_sampling(self):
        from repro.core.search import Evaluated
        counts = {i: 0 for i in range(6)}
        for seed in range(200):
            search = self._search(k0=0.0, seed=seed)
            ranked = [Evaluated(None, None, float(i)) for i in range(6)]
            for e in search._select(ranked, k=0.0):
                counts[int(e.score)] += 1
        # Every rank gets selected sometimes under uniform sampling.
        assert all(c > 20 for c in counts.values()), counts

    def test_selection_without_replacement(self):
        from repro.core.search import Evaluated
        search = self._search(k0=1.0)
        ranked = [Evaluated(None, None, float(i)) for i in range(2)]
        chosen = search._select(ranked, k=1.0)
        assert len(chosen) == 2
        assert {e.score for e in chosen} == {0.0, 1.0}

    def test_unschedulable_behavior_scores_infinite(self):
        beh = compile_source("proc p(in a, out r) { r = a * a; }")
        search = TransformSearch(
            TransformLibrary([]), LIB, Allocation({"a1": 1}),  # no mt1
            Objective(THROUGHPUT))
        evaluated = search.evaluate(beh)
        assert evaluated.score == float("inf")
        assert evaluated.result is None

    def test_run_raises_when_input_unschedulable(self):
        beh = compile_source("proc p(in a, out r) { r = a * a; }")
        search = TransformSearch(
            TransformLibrary([]), LIB, Allocation({"a1": 1}),
            Objective(THROUGHPUT))
        with pytest.raises(SearchError):
            search.run(beh)

    def test_empty_library_returns_initial(self):
        beh = compile_source("proc p(in a, out r) { r = a + a; }")
        search = TransformSearch(
            TransformLibrary([]), LIB, Allocation({"a1": 1}),
            Objective(THROUGHPUT))
        result = search.run(beh)
        assert result.best is result.initial
        assert result.improvement == pytest.approx(1.0)

"""Determinism of candidate enumeration and search trajectories.

The refactored enumeration pipeline promises one canonical candidate
order — (transform name, sorted footprint, match fingerprint) — from
both the legacy library scan and the rewrite driver, on every backend.
These tests pin that contract: same-seed searches must replay
byte-identical trajectories however candidates are enumerated.
"""

import json
import random

from repro.bench import allocation_for
from repro.core import Objective, SearchConfig, THROUGHPUT, TransformSearch
from repro.core.evalcache import cached_raw_fingerprint
from repro.core.search import expand_candidates
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.rewrite import RewriteDriver
from repro.transforms import default_library

LIB = dac98_library()

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _trajectory(result):
    """A byte-exact serialization of everything the search decided."""
    return json.dumps({
        "history": result.history,
        "best_lineage": list(result.best.lineage),
        "best_fp": cached_raw_fingerprint(result.best.behavior),
        "generations": result.generations,
    }, sort_keys=True).encode()


def _search(seed=3, **cfg_kw):
    config = SearchConfig(max_outer_iters=3, max_moves=2, in_set_size=3,
                          seed=seed, max_candidates_per_seed=24, **cfg_kw)
    return TransformSearch(default_library(), LIB,
                           allocation_for("gcd"), Objective(THROUGHPUT),
                           config=config)


class TestExpandCandidates:
    def test_legacy_and_driver_paths_identical(self):
        behavior = compile_source(GCD_SRC)
        transforms = default_library()
        seeds = [(behavior, ())]
        legacy = expand_candidates(transforms, seeds, random.Random(5),
                                   max_per_seed=64)
        driven = expand_candidates(transforms, seeds, random.Random(5),
                                   max_per_seed=64,
                                   driver=RewriteDriver(transforms))
        assert [lin for _, lin in legacy] == [lin for _, lin in driven]
        assert [cached_raw_fingerprint(b) for b, _ in legacy] \
            == [cached_raw_fingerprint(b) for b, _ in driven]

    def test_sampling_cap_sees_identical_ordering(self):
        behavior = compile_source(GCD_SRC)
        transforms = default_library()
        seeds = [(behavior, ())]
        legacy = expand_candidates(transforms, seeds, random.Random(9),
                                   max_per_seed=3)
        driven = expand_candidates(transforms, seeds, random.Random(9),
                                   max_per_seed=3,
                                   driver=RewriteDriver(transforms))
        assert [lin for _, lin in legacy] == [lin for _, lin in driven]


class TestSearchTrajectories:
    def test_same_seed_runs_byte_identical(self):
        behavior = compile_source(GCD_SRC)
        a = _trajectory(_search(seed=3).run(behavior))
        b = _trajectory(_search(seed=3).run(behavior))
        assert a == b

    def test_incremental_enumeration_is_invisible(self):
        behavior = compile_source(GCD_SRC)
        on = _trajectory(_search(seed=4).run(behavior))
        off = _trajectory(
            _search(seed=4, incremental_enumeration=False).run(behavior))
        assert on == off

    def test_backends_byte_identical(self):
        behavior = compile_source(GCD_SRC)
        serial = _trajectory(_search(seed=5, workers=0).run(behavior))
        pooled = _trajectory(_search(seed=5, workers=2).run(behavior))
        assert serial == pooled

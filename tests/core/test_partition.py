"""STG partitioning tests (Section 4.1)."""

import pytest

from repro.core import hot_cdfg_nodes, partition_stg, relative_frequencies
from repro.stg import ScheduledOp, Stg


def loop_heavy_stg():
    """entry -> A <-> B (hot loop), rare path C -> exit."""
    stg = Stg("hot")
    entry = stg.add_state(label="entry")
    a = stg.add_state([ScheduledOp(10)], label="A")
    b = stg.add_state([ScheduledOp(11)], label="B")
    c = stg.add_state([ScheduledOp(12)], label="C")
    exit_ = stg.add_state(label="exit")
    stg.add_transition(entry, a, 1.0)
    stg.add_transition(a, b, 1.0)
    stg.add_transition(b, a, 0.95)
    stg.add_transition(b, c, 0.05)
    stg.add_transition(c, exit_, 1.0)
    stg.entry, stg.exit = entry, exit_
    return stg, (entry, a, b, c, exit_)


class TestPartition:
    def test_hot_loop_forms_one_block(self):
        stg, (entry, a, b, c, exit_) = loop_heavy_stg()
        blocks = partition_stg(stg, threshold=0.5)
        assert len(blocks) == 1
        assert blocks[0].states == {a, b}

    def test_low_threshold_adds_cold_states(self):
        stg, (entry, a, b, c, exit_) = loop_heavy_stg()
        blocks = partition_stg(stg, threshold=0.001)
        all_states = set()
        for blk in blocks:
            all_states |= blk.states
        assert {a, b, c}.issubset(all_states)

    def test_block_exposes_cdfg_nodes(self):
        stg, (entry, a, b, c, exit_) = loop_heavy_stg()
        blocks = partition_stg(stg, threshold=0.5)
        assert blocks[0].cdfg_nodes(stg) == {10, 11}

    def test_hot_cdfg_nodes_shortcut(self):
        stg, _ = loop_heavy_stg()
        assert hot_cdfg_nodes(stg, threshold=0.5) == {10, 11}

    def test_frequencies_sorted_descending(self):
        stg, _ = loop_heavy_stg()
        freqs = [f for _t, f in relative_frequencies(stg)]
        assert freqs == sorted(freqs, reverse=True)

    def test_blocks_are_disjoint(self):
        stg, _ = loop_heavy_stg()
        blocks = partition_stg(stg, threshold=0.001)
        seen = set()
        for blk in blocks:
            assert not (blk.states & seen)
            seen |= blk.states

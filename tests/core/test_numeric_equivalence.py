"""Scalar vs. batched numeric backend: bit-identical everything.

Mirror of ``test_incremental_equivalence``: the batched numeric core
(blocked Markov solves, vectorized power accumulation) is an
optimization, never an approximation — for every transformation in the
library, for whole searches, on both engine backends, and on the
degenerate corpus circuits, it must reproduce the scalar path exactly.
"""

import glob
import os

import pytest

from repro.bench.circuits import circuit
from repro.core import Fact, FactConfig, Objective, POWER, SearchConfig
from repro.core.engine import EvaluationEngine
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.numeric import batching_available, set_backend, use_backend
from repro.profiling import profile
from repro.sched.types import SchedConfig
from repro.transforms import default_library

from .test_incremental_equivalence import EXTRA_SOURCES, SITES

pytestmark = pytest.mark.skipif(not batching_available(),
                                reason="numpy batching unavailable")

LIB = dac98_library()
TLIB = default_library()
GENEROUS = Allocation({k: 2 for k in LIB.fu_types})

CORPUS = sorted(glob.glob(os.path.join(os.path.dirname(__file__), "..",
                                       "gen", "corpus", "*.bdl")))


@pytest.fixture(autouse=True)
def _scalar_after():
    """Every test leaves the process-global backend at scalar."""
    yield
    set_backend("scalar")


@pytest.mark.parametrize("transform", sorted(TLIB.names()))
def test_transform_scores_identically(transform):
    """Original + transformed behavior: same score, same STG, whether
    the Markov solves run one at a time or stacked."""
    beh, alloc, sched, probs, cand = SITES[transform]
    transformed = cand.apply(beh)

    def engine(backend):
        # cache_size=0: force actual scheduling, not behavior-cache hits.
        return EvaluationEngine(LIB, alloc, Objective(),
                                sched_config=sched, branch_probs=probs,
                                cache_size=0, numeric_backend=backend)

    for b in (beh, transformed):
        s = engine("scalar").evaluate(b)
        a = engine("batched").evaluate(b)
        assert a.score == s.score
        assert (a.result is None) == (s.result is None)
        if a.result is not None:
            assert a.result.stg.to_dot() == s.result.stg.to_dot()
            assert a.result.average_length() == \
                s.result.average_length()


def _search(name, backend, workers=0, seed=3, objective="throughput"):
    c = circuit(name)
    beh = c.behavior()
    probs = dict(profile(beh, c.traces(beh)).branch_probs)
    cfg = FactConfig(sched=c.sched, search=SearchConfig(
        seed=seed, max_outer_iters=2, max_candidates_per_seed=24,
        workers=workers, numeric_backend=backend))
    fact = Fact(LIB, config=cfg)
    return fact.optimize(beh, c.allocation, branch_probs=probs,
                         objective=objective)


def _fingerprint(res):
    assert res.best.result is not None
    return (res.best.score, res.best.lineage,
            tuple(res.search.history),
            res.best.result.stg.to_dot())


class TestSearchEquivalence:
    def test_serial_batched_matches_scalar(self):
        assert (_fingerprint(_search("gcd", "batched"))
                == _fingerprint(_search("gcd", "scalar")))

    def test_power_objective_batched_matches_scalar(self):
        """POWER scores candidates through estimate_power, so this
        covers the vectorized activity accumulation end to end."""
        assert (_fingerprint(_search("gcd", "batched",
                                     objective=POWER))
                == _fingerprint(_search("gcd", "scalar",
                                        objective=POWER)))

    def test_pool_batched_matches_serial_scalar(self):
        """Each pool worker installs its own backend instance; the
        assembled search must still match the serial scalar baseline."""
        assert (_fingerprint(_search("gcd", "batched", workers=2))
                == _fingerprint(_search("gcd", "scalar", workers=0)))

    def test_batched_actually_batches(self):
        res = _search("gcd", "batched")
        assert res.telemetry is not None
        assert res.telemetry.eval.numeric_flushes > 0
        assert (res.telemetry.eval.numeric_batched
                >= res.telemetry.eval.numeric_flushes)

    def test_scalar_reports_no_flushes(self):
        res = _search("gcd", "scalar")
        assert res.telemetry is not None
        assert res.telemetry.eval.numeric_flushes == 0
        assert res.telemetry.eval.numeric_batched == 0


class TestDegenerateCircuits:
    """Corpus circuits with singular sub-chains / zero-trip loops."""

    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
    def test_corpus_schedules_identically(self, path):
        with open(path) as handle:
            beh = compile_source(handle.read())

        def evaluate(backend):
            with use_backend(backend):
                engine = EvaluationEngine(LIB, GENEROUS, Objective(),
                                          cache_size=0,
                                          numeric_backend=backend)
                ev = engine.evaluate(beh)
            if ev.result is None:
                return (None, ev.score)
            return (ev.result.stg.to_dot(), ev.score)

        assert evaluate("batched") == evaluate("scalar")

    @pytest.mark.parametrize("name", sorted(EXTRA_SOURCES))
    def test_extra_sources_schedule_identically(self, name):
        beh = compile_source(EXTRA_SOURCES[name])

        def evaluate(backend):
            engine = EvaluationEngine(LIB, GENEROUS, Objective(),
                                      cache_size=0,
                                      numeric_backend=backend)
            ev = engine.evaluate(beh)
            assert ev.result is not None
            return (ev.result.stg.to_dot(), ev.score,
                    ev.result.average_length())

        assert evaluate("batched") == evaluate("scalar")

"""Regression: --stats / metrics totals are backend-independent.

With per-worker region caches, reading counters off the parent's cache
object under-reports a parallel run (the workers' hits never reach the
parent process).  The fix routes every total through the aggregated
per-candidate EvalStats deltas that ride home with each result; these
tests pin that serial and pool runs report identical totals.
"""

import io
from contextlib import redirect_stdout

import pytest

from repro.bench import allocation_for
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.profiling import uniform_traces

LIB = dac98_library()

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

#: Registry names that must not depend on the evaluation backend.
#: Hit/reuse *splits* (region_cache.hits, stg.states_reused, ...) are
#: legitimately backend-dependent — each pool worker owns a private
#: region cache, so the same request stream can hit differently — but
#: the request/work totals they split must be identical.
BACKEND_INDEPENDENT = (
    "engine.evaluations", "engine.scheduled",
    "engine.cache.hits", "engine.cache.misses",
    "engine.cache.requests", "engine.cache.evictions",
    "region_cache.requests",
    "search.generations",
)


def _telemetry(workers):
    beh = compile_source(GCD_SRC)
    traces = uniform_traces(beh, 8, lo=1, hi=60, seed=3)
    fact = Fact(LIB, config=FactConfig(
        search=SearchConfig(max_outer_iters=2, max_moves=2,
                            in_set_size=3, seed=1,
                            max_candidates_per_seed=12,
                            workers=workers)))
    res = fact.optimize(beh, allocation_for("gcd"), traces=traces,
                        objective=THROUGHPUT)
    return res.search.telemetry


@pytest.fixture(scope="module")
def serial_and_pool():
    serial = _telemetry(workers=0)
    pool = _telemetry(workers=2)
    return serial, pool


class TestBackendIndependence:
    def test_pool_backend_actually_ran(self, serial_and_pool):
        serial, pool = serial_and_pool
        assert serial.backend == "serial"
        assert pool.backend == "process"
        assert pool.workers == 2

    def test_registry_counters_match(self, serial_and_pool):
        serial, pool = serial_and_pool
        sreg, preg = serial.metrics(), pool.metrics()
        for name in BACKEND_INDEPENDENT:
            assert sreg.value(name) == preg.value(name), name

    def test_work_totals_match(self, serial_and_pool):
        # splits differ per backend; the totals they partition cannot
        serial, pool = serial_and_pool
        sreg, preg = serial.metrics(), pool.metrics()
        for parts in (("stg.states_built", "stg.states_reused"),
                      ("region_cache.hits", "region_cache.misses"),
                      ("markov.local", "markov.reused", "markov.full")):
            assert sum(sreg.value(p) for p in parts) \
                == sum(preg.value(p) for p in parts), parts

    def test_region_totals_nonzero(self, serial_and_pool):
        # the regression this guards: a pool run reporting 0 region
        # requests because the parent's cache object never saw them
        _, pool = serial_and_pool
        reg = pool.metrics()
        assert reg.value("region_cache.requests") > 0
        assert reg.value("stg.states_built") > 0

    def test_eval_stats_internally_consistent(self, serial_and_pool):
        for tel in serial_and_pool:
            e = tel.eval
            assert e.region_hits <= e.region_requests
            assert e.scheduled > 0
            assert e.states_built + e.states_reused > 0
            assert 0.0 < e.reschedule_fraction <= 1.0

    def test_summary_totals_line_reports_worker_activity(
            self, serial_and_pool):
        serial, pool = serial_and_pool

        def requests_of(tel):
            line = next(l for l in tel.summary().splitlines()
                        if "totals (aggregated across workers)" in l)
            return int(line.split("region cache ")[1].split(" ")[0])

        # the pre-fix behavior read the parent-local cache object,
        # which never sees worker requests: the pool total would be a
        # tiny fraction of the serial one instead of equal to it
        assert requests_of(pool) == requests_of(serial)
        assert requests_of(pool) > 0


class TestCliStats:
    def test_stats_totals_backend_independent(self, tmp_path):
        from repro.cli import main
        path = tmp_path / "gcd.bdl"
        path.write_text(GCD_SRC)

        def requests(extra):
            buf = io.StringIO()
            with redirect_stdout(buf):
                assert main(["optimize", str(path),
                             "--alloc", "sb1=2,cp1=1,e1=1",
                             "--iterations", "1", "--stats"]
                            + extra) == 0
            line = next(l for l in buf.getvalue().splitlines()
                        if "totals (aggregated across workers)" in l)
            return int(line.split("region cache ")[1].split(" ")[0])

        serial = requests([])
        assert serial > 0
        assert requests(["--workers", "2"]) == serial

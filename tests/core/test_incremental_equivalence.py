"""Incremental vs. full evaluation: bit-identical scores and schedules.

The incremental path (region-schedule memoization + localized Markov
re-analysis) is an optimization, never an approximation: for every
transformation in the library, for whole searches, and on both engine
backends, it must reproduce the full-evaluation baseline exactly.
"""

import pytest

from repro.bench.circuits import circuit
from repro.core import (Fact, FactConfig, Objective, POWER, SearchConfig,
                        THROUGHPUT)
from repro.core.engine import EvaluationEngine
from repro.errors import SearchError
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.profiling import profile
from repro.sched.regioncache import RegionScheduleCache
from repro.sched.types import SchedConfig
from repro.transforms import default_library

LIB = dac98_library()
TLIB = default_library()
#: Two of everything: schedules any behavior in the extra sources below.
GENEROUS = Allocation({k: 2 for k in LIB.fu_types})

#: Shapes the bench circuits do not offer (fusable loop pair, constant
#: branch, loop-invariant expression), so every transform has a site.
EXTRA_SOURCES = {
    "two_loops": """
proc p(array a[16], array b[16], array c[16], array d[16]) {
    for (i = 0; i < 16; i = i + 1) { c[i] = a[i] + b[i]; }
    for (j = 0; j < 16; j = j + 1) { d[j] = a[j] - b[j]; }
}
""",
    "const_branch": """
proc p(in x, out r) {
    var v = 0;
    if (3 > 1) { v = x + 5; } else { v = x * 7; }
    r = v;
}
""",
    "invariant": """
proc p(in a, in b, array x[8], out s) {
    var acc = 0;
    for (i = 0; i < 8; i = i + 1) { acc = acc + x[i] * (a + b); }
    s = acc;
}
""",
}


def _transform_sites():
    """One candidate site per transform: (behavior, alloc, sched, probs,
    candidate), preferring the cheapest circuit that offers one."""
    sites = {}
    specs = [("bench", n) for n in ("gcd", "fir", "sintran", "igf",
                                    "pps", "test2")]
    specs += [("src", n) for n in EXTRA_SOURCES]
    for kind, name in specs:
        if kind == "bench":
            c = circuit(name)
            beh = c.behavior()
            alloc, sched = c.allocation, c.sched
            probs = dict(profile(beh, c.traces(beh)).branch_probs)
        else:
            beh = compile_source(EXTRA_SOURCES[name])
            alloc, sched, probs = GENEROUS, SchedConfig(), None
        for cand in TLIB.candidates(beh):
            if cand.transform not in sites:
                sites[cand.transform] = (beh, alloc, sched, probs, cand)
    return sites


SITES = _transform_sites()


def test_every_transform_has_a_site():
    assert set(SITES) == set(TLIB.names())


@pytest.mark.parametrize("transform", sorted(TLIB.names()))
def test_transform_scores_identically(transform):
    """Original + transformed behavior: same score, same STG, whether
    evaluated incrementally (warm cache on the second evaluation) or on
    the full baseline."""
    beh, alloc, sched, probs, cand = SITES[transform]
    transformed = cand.apply(beh)

    def engine(incremental):
        # cache_size=0: force actual scheduling, not behavior-cache hits.
        return EvaluationEngine(LIB, alloc, Objective(),
                                sched_config=sched, branch_probs=probs,
                                cache_size=0, incremental=incremental)

    with engine(True) as inc, engine(False) as full:
        for b in (beh, transformed):
            a = inc.evaluate(b)
            e = full.evaluate(b)
            assert a.score == e.score
            assert (a.result is None) == (e.result is None)
            if a.result is not None:
                assert (a.result.stg.to_dot()
                        == e.result.stg.to_dot())


def _search(name, incremental, workers=0, seed=3, objective=THROUGHPUT,
            region_caches=None):
    c = circuit(name)
    beh = c.behavior()
    probs = dict(profile(beh, c.traces(beh)).branch_probs)
    cfg = FactConfig(sched=c.sched, search=SearchConfig(
        seed=seed, max_outer_iters=2, max_candidates_per_seed=24,
        workers=workers, incremental=incremental))
    fact = Fact(LIB, config=cfg, region_caches=region_caches)
    return fact.optimize(beh, c.allocation, branch_probs=probs,
                         objective=objective)


def _fingerprint(res):
    assert res.best.result is not None
    return (res.best.score, res.best.lineage,
            tuple(res.search.history),
            res.best.result.stg.to_dot())


class TestSearchEquivalence:
    def test_serial_incremental_matches_full(self):
        assert (_fingerprint(_search("gcd", True))
                == _fingerprint(_search("gcd", False)))

    def test_pool_incremental_matches_serial_full(self):
        """Process-pool workers each hold a private region cache; the
        assembled search must still match the serial full baseline."""
        assert (_fingerprint(_search("gcd", True, workers=2))
                == _fingerprint(_search("gcd", False, workers=0)))


class TestSharedRegionCaches:
    def test_warm_cache_across_objectives_and_seeds(self):
        """One registry shared by a whole campaign (the region-cache
        namespace excludes the objective): later runs are served from
        warm caches yet stay identical to cold-start runs."""
        shared = {}
        warm, cold = [], []
        for seed in (0, 1):
            for objective in (THROUGHPUT, POWER):
                warm.append(_fingerprint(_search(
                    "gcd", True, seed=seed, objective=objective,
                    region_caches=shared)))
                cold.append(_fingerprint(_search(
                    "gcd", True, seed=seed, objective=objective)))
        assert warm == cold
        assert len(shared) == 1          # one evaluation context
        (cache,) = shared.values()
        assert cache.stats.hits > 0

    def test_mismatched_region_cache_rejected(self):
        wrong = RegionScheduleCache(context_fp="not-this-context")
        with pytest.raises(SearchError):
            EvaluationEngine(LIB, GENEROUS, Objective(),
                             region_cache=wrong)


GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


class TestEngineTeardown:
    """close() is idempotent and exception-safe (pool or no pool)."""

    def _engine(self, **kw):
        return EvaluationEngine(LIB, GENEROUS, Objective(), **kw)

    def test_double_close_without_pool(self):
        eng = self._engine(workers=0)
        eng.evaluate(compile_source(GCD_SRC))
        eng.close()
        eng.close()

    def test_double_close_with_pool(self):
        eng = self._engine(workers=2)
        beh = compile_source(GCD_SRC)
        other = compile_source(GCD_SRC.replace("b - a", "b - a - a"))
        eng.evaluate_batch([(beh, ()), (other, ())])
        eng.close()
        eng.close()

    def test_close_swallows_shutdown_failure(self):
        eng = self._engine(workers=2)

        class _Boom:
            def shutdown(self, *a, **kw):
                raise RuntimeError("workers already dead")

        eng._pool = _Boom()
        eng.close()                      # must not raise
        assert eng._pool is None
        assert eng.backend == "serial"   # degraded, not broken
        eng.close()

    def test_failed_pool_creation_degrades_to_serial(self, monkeypatch):
        def boom(*a, **kw):
            raise OSError("no multiprocessing here")

        monkeypatch.setattr("repro.core.engine.ProcessPoolExecutor",
                            boom)
        eng = self._engine(workers=2)
        beh = compile_source(GCD_SRC)
        other = compile_source(GCD_SRC.replace("b - a", "b - a - a"))
        out = eng.evaluate_batch([(beh, ()), (other, ())])
        assert all(e.result is not None for e in out)
        assert eng.backend == "serial"
        eng.close()
        eng.close()

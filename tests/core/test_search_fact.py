"""End-to-end FACT search tests on small behaviors."""

import pytest

from repro.baselines import run_flamel, run_m1
from repro.bench import allocation_for
from repro.cdfg import execute
from repro.core import (Fact, FactConfig, Objective, SearchConfig,
                        THROUGHPUT, TransformSearch)
from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.profiling import uniform_traces
from repro.sched import SchedConfig

LIB = dac98_library()

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

SUM4_SRC = """
proc sum4(in a, in b, in c, in d, out r) {
    r = ((a + b) + c) + d;
}
"""


def small_config(**kw):
    return FactConfig(
        search=SearchConfig(max_outer_iters=3, max_moves=2,
                            in_set_size=3, seed=1,
                            max_candidates_per_seed=24),
        **kw)


class TestFactThroughput:
    def test_chain_balancing_improves_latency(self):
        beh = compile_source(SUM4_SRC)
        fact = Fact(LIB, config=small_config())
        res = fact.optimize(beh, Allocation({"a1": 2}),
                            objective=THROUGHPUT)
        # ((a+b)+c)+d chains 2 adds/cycle -> 2 cycles; balanced -> 2
        # cycles too (10+10 chain in 25ns) so check no regression and
        # correctness of plumbing.
        assert res.best_length <= res.initial_length
        out = execute(res.best.behavior,
                      {"a": 1, "b": 2, "c": 3, "d": 4})
        assert out.outputs["r"] == 10

    def test_gcd_fact_beats_m1(self):
        beh = compile_source(GCD_SRC)
        alloc = allocation_for("gcd")
        traces = uniform_traces(beh, 10, lo=1, hi=60, seed=3)
        fact = Fact(LIB, config=small_config())
        res = fact.optimize(beh, alloc, traces=traces,
                            objective=THROUGHPUT)
        assert res.speedup > 1.2, (
            f"FACT {res.best_length:.1f} vs M1 {res.initial_length:.1f}")
        # Functionality preserved.
        assert execute(res.best.behavior,
                       {"a": 36, "b": 60}).outputs["g"] == 12

    def test_result_metrics(self):
        beh = compile_source(SUM4_SRC)
        fact = Fact(LIB, config=small_config())
        res = fact.optimize(beh, Allocation({"a1": 4}),
                            objective=THROUGHPUT)
        assert res.throughput_x1000() == pytest.approx(
            1000.0 / res.best_length)
        assert res.search.evaluated_count >= 1


class TestFactPower:
    def test_power_mode_reports_reduction(self):
        beh = compile_source(GCD_SRC)
        alloc = allocation_for("gcd")
        traces = uniform_traces(beh, 8, lo=1, hi=60, seed=5)
        fact = Fact(LIB, config=small_config())
        res = fact.optimize(beh, alloc, traces=traces, objective="power")
        report = res.power_report(LIB)
        assert 0.0 <= report["reduction"] < 1.0
        assert report["scaled_vdd"] <= 5.0
        # Power optimization should find some saving on GCD.
        assert report["reduction"] > 0.05


class TestBaselines:
    def test_m1_is_plain_schedule(self):
        beh = compile_source(GCD_SRC)
        alloc = allocation_for("gcd")
        m1 = run_m1(beh, LIB, alloc)
        assert m1.average_length() > 0

    def test_flamel_between_m1_and_fact_on_gcd(self):
        beh = compile_source(GCD_SRC)
        alloc = allocation_for("gcd")
        traces = uniform_traces(beh, 10, lo=1, hi=60, seed=3)
        from repro.profiling import profile
        probs = profile(beh, traces).branch_probs
        m1 = run_m1(beh, LIB, alloc, branch_probs=probs)
        fl = run_flamel(beh, LIB, alloc, branch_probs=probs)
        assert fl.result.average_length() <= m1.average_length() + 1e-9
        assert fl.steps >= 1
        assert execute(fl.behavior, {"a": 36, "b": 60}).outputs["g"] == 12

    def test_flamel_keeps_functionality_everywhere(self):
        beh = compile_source(SUM4_SRC)
        fl = run_flamel(beh, LIB, Allocation({"a1": 2}))
        out = execute(fl.behavior, {"a": 5, "b": 6, "c": 7, "d": 8})
        assert out.outputs["r"] == 26

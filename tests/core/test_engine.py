"""The evaluation engine: cache keys, backends, telemetry."""

import pytest

from repro.bench import allocation_for
from repro.bench.circuits import circuit
from repro.cdfg.ir import Graph, OpKind
from repro.core import (Fact, FactConfig, Objective, SearchConfig,
                        THROUGHPUT)
from repro.core.engine import (EvaluationEngine, WORKERS_ENV,
                               resolve_workers)
from repro.core.evalcache import EvalCache, behavior_fingerprint
from repro.errors import SearchError
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.profiling import profile, uniform_traces

LIB = dac98_library()

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _sum_graph(order="forward", kind=OpKind.ADD, in_a="a"):
    """Build (a+b) `kind` (c+d) with two node-insertion orders."""
    g = Graph("sum")
    if order == "forward":
        a = g.add_node(OpKind.INPUT, var=in_a)
        b = g.add_node(OpKind.INPUT, var="b")
        ab = g.add_node(OpKind.ADD)
        c = g.add_node(OpKind.INPUT, var="c")
        d = g.add_node(OpKind.INPUT, var="d")
        cd = g.add_node(OpKind.ADD)
    else:
        # Same graph, permuted ids: the c+d half is created first.
        c = g.add_node(OpKind.INPUT, var="c")
        d = g.add_node(OpKind.INPUT, var="d")
        cd = g.add_node(OpKind.ADD)
        a = g.add_node(OpKind.INPUT, var=in_a)
        b = g.add_node(OpKind.INPUT, var="b")
        ab = g.add_node(OpKind.ADD)
    top = g.add_node(kind)
    out = g.add_node(OpKind.OUTPUT, var="r")
    g.set_data_edge(a, ab, 0)
    g.set_data_edge(b, ab, 1)
    g.set_data_edge(c, cd, 0)
    g.set_data_edge(d, cd, 1)
    g.set_data_edge(ab, top, 0)
    g.set_data_edge(cd, top, 1)
    g.set_data_edge(top, out, 0)
    return g


class TestCanonicalHash:
    def test_invariant_under_node_renumbering(self):
        assert (_sum_graph("forward").canonical_hash()
                == _sum_graph("reversed").canonical_hash())

    def test_interface_rename_changes_hash(self):
        assert (_sum_graph(in_a="a").canonical_hash()
                != _sum_graph(in_a="x").canonical_hash())

    def test_operation_change_changes_hash(self):
        assert (_sum_graph(kind=OpKind.ADD).canonical_hash()
                != _sum_graph(kind=OpKind.SUB).canonical_hash())

    def test_cosmetic_name_is_ignored(self):
        g1, g2 = _sum_graph(), _sum_graph()
        for nid in g2.node_ids():
            g2.node(nid).name = f"dist{nid}"
        assert g1.canonical_hash() == g2.canonical_hash()

    def test_edge_direction_matters(self):
        g1, g2 = Graph(), Graph()
        for g in (g1, g2):
            g.add_node(OpKind.INPUT, var="a")
            g.add_node(OpKind.INC)
            g.add_node(OpKind.OUTPUT, var="r")
        g1.set_data_edge(0, 1, 0)
        g1.set_data_edge(1, 2, 0)
        g2.set_data_edge(1, 2, 0)  # inc feeds output, input dangles
        g2.set_data_edge(0, 1, 0)
        g3 = Graph()
        g3.add_node(OpKind.INPUT, var="a")
        g3.add_node(OpKind.INC)
        g3.add_node(OpKind.OUTPUT, var="r")
        g3.set_data_edge(0, 2, 0)  # input straight to output
        g3.set_data_edge(0, 1, 0)
        assert g1.canonical_hash() == g2.canonical_hash()
        assert g1.canonical_hash() != g3.canonical_hash()


class TestBehaviorFingerprint:
    def test_recompilation_is_stable(self):
        assert (behavior_fingerprint(compile_source(GCD_SRC))
                == behavior_fingerprint(compile_source(GCD_SRC)))

    def test_interface_rename_is_visible(self):
        renamed = GCD_SRC.replace("in a", "in x").replace("(a", "(x") \
                         .replace("- a", "- x").replace("a =", "x =") \
                         .replace("= a", "= x")
        fp1 = behavior_fingerprint(compile_source(GCD_SRC))
        fp2 = behavior_fingerprint(compile_source(renamed))
        assert fp1 != fp2

    def test_semantic_change_is_visible(self):
        changed = GCD_SRC.replace("b - a", "b - a - a")
        assert (behavior_fingerprint(compile_source(GCD_SRC))
                != behavior_fingerprint(compile_source(changed)))


class TestEvalCache:
    def test_hit_miss_accounting(self):
        cache = EvalCache(max_entries=8)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert cache.peek("b") is None
        assert cache.peek("a") == 1
        assert cache.peek("c") == 3

    def test_disabled_cache_stores_nothing(self):
        cache = EvalCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 0
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2  # explicit beats env

    def test_bad_values_raise(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(SearchError):
            resolve_workers()
        with pytest.raises(SearchError):
            resolve_workers(-1)


def _gcd_engine(**kw):
    beh = compile_source(GCD_SRC)
    traces = uniform_traces(beh, 8, lo=1, hi=60, seed=3)
    probs = profile(beh, traces).branch_probs
    eng = EvaluationEngine(LIB, allocation_for("gcd"), Objective(),
                           branch_probs=probs, **kw)
    return beh, eng


class TestEvaluationEngine:
    def test_memoizes_identical_behaviors(self):
        beh, eng = _gcd_engine()
        with eng:
            first = eng.evaluate(beh)
            second = eng.evaluate(beh.copy())
        assert first.score == second.score
        assert eng.requests == 2
        assert eng.stats.hits == 1
        assert eng.stats.misses == 1

    def test_within_batch_duplicates_merge(self):
        beh, eng = _gcd_engine()
        with eng:
            out = eng.evaluate_batch([(beh, ()), (beh.copy(), ("dup",))])
        assert out[0].score == out[1].score
        assert out[1].lineage == ("dup",)
        assert eng.stats.hits == 1 and eng.stats.misses == 1

    def test_disabled_cache_never_hits(self):
        beh, eng = _gcd_engine(cache_size=0)
        with eng:
            eng.evaluate(beh)
            eng.evaluate(beh.copy())
        assert eng.stats.hits == 0
        assert eng.stats.misses == 2


def _run_fact(src_or_circuit, workers, seed=1, iters=2):
    cfg = FactConfig(search=SearchConfig(
        max_outer_iters=iters, max_moves=2, in_set_size=3, seed=seed,
        max_candidates_per_seed=24, workers=workers))
    if src_or_circuit == "gcd-src":
        beh = compile_source(GCD_SRC)
        alloc = allocation_for("gcd")
        traces = uniform_traces(beh, 8, lo=1, hi=60, seed=3)
        probs = profile(beh, traces).branch_probs
        sched = None
    else:
        c = circuit(src_or_circuit)
        beh = c.behavior()
        alloc = c.allocation
        probs = profile(beh, c.traces(beh)).branch_probs
        sched = c.sched
    if sched is not None:
        cfg.sched = sched
    fact = Fact(LIB, config=cfg)
    return fact.optimize(beh, alloc, branch_probs=probs,
                         objective=THROUGHPUT)


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", ["gcd-src", "pps"])
    def test_serial_and_parallel_agree(self, name):
        serial = _run_fact(name, workers=0)
        parallel = _run_fact(name, workers=2)
        assert serial.best_length == parallel.best_length
        assert serial.best.score == parallel.best.score
        assert serial.best.lineage == parallel.best.lineage
        assert serial.search.history == parallel.search.history

    def test_seeded_runs_are_reproducible(self):
        a = _run_fact("gcd-src", workers=0, seed=7)
        b = _run_fact("gcd-src", workers=0, seed=7)
        assert a.best_length == b.best_length
        assert a.best.lineage == b.best.lineage
        assert a.search.history == b.search.history


class TestTelemetry:
    def test_shape_and_contents(self):
        res = _run_fact("gcd-src", workers=0, iters=3)
        tel = res.telemetry
        assert tel is not None
        assert tel.backend == "serial"
        assert tel.workers in (0, 1)
        assert tel.total_wall_time > 0
        # evaluated_count additionally includes the initial seed
        # evaluation, which precedes generation 0.
        assert tel.evaluations + 1 == res.search.evaluated_count
        assert 1 <= len(tel.generations) <= 3 * 10
        for i, gen in enumerate(tel.generations):
            assert gen.index == i
            assert gen.wall_time >= 0
            assert gen.evaluations >= 1
            assert 0 <= gen.cache_hits <= gen.evaluations
        # Best-score trajectory never worsens.
        traj = tel.best_trajectory
        assert traj == sorted(traj, reverse=True)
        # The search revisits equivalent candidates: cache does work.
        assert tel.cache_hit_rate > 0
        # Serializable summary for tooling.
        d = tel.as_dict()
        assert d["cache"]["hits"] == tel.cache.hits
        assert len(d["generations"]) == len(tel.generations)
        assert "hit rate" in tel.summary()

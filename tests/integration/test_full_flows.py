"""Cross-subsystem integration tests.

These tie the layers together: scheduler output analyzed by the Markov
solver must agree with Monte-Carlo STG simulation; schedule lengths
must be consistent with interpreter-measured iteration counts; the full
FACT pipeline must run end-to-end on the paper's running example.
"""

import pytest

from repro.bench import allocation_for
from repro.bench import test1_behavior as make_test1
from repro.bench import test1_branch_probs as probs_for_test1
from repro.cdfg import execute
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library, table1_allocation, table1_library
from repro.lang import compile_source
from repro.profiling import profile, uniform_traces
from repro.sched import Scheduler, SchedConfig
from repro.stg import average_schedule_length, simulate
from repro.synth import synthesize

DAC = dac98_library()


class TestMarkovVsSimulation:
    """Closed-form expected lengths match sampled walks on real STGs."""

    def check(self, behavior, allocation, probs, library=DAC,
              clock=25.0):
        result = Scheduler(behavior, library, allocation,
                           SchedConfig(clock=clock), probs).schedule()
        exact = average_schedule_length(result.stg)
        sampled = simulate(result.stg, runs=2000, seed=9).mean_length
        assert sampled == pytest.approx(exact, rel=0.1)
        return exact

    def test_gcd(self):
        beh = compile_source("""
            proc gcd(in a, in b, out g) {
                while (a != b) {
                    if (a < b) { b = b - a; } else { a = a - b; }
                }
                g = a;
            }
        """)
        probs = {beh.loop("L1").cond: 0.9}
        self.check(beh, allocation_for("gcd"), probs)

    def test_test1_under_paper_probabilities(self):
        beh = make_test1()
        probs = probs_for_test1(beh)
        exact = self.check(beh, table1_allocation(), probs,
                           library=table1_library())
        # The paper's hand schedule takes 119.11 cycles; ours must be
        # in the same regime (same loop, same probabilities).
        assert 80 <= exact <= 300


class TestLengthVsInterpreter:
    def test_counted_loop_length_tracks_trip_count(self):
        """E[cycles] ≈ II × interpreter-measured iterations."""
        src = """
            proc acc(array x[{n}], out s) {{
                var t = 0;
                for (i = 0; i < {n}; i = i + 1) {{ t = t + x[i]; }}
                s = t;
            }}
        """
        for n in (16, 64):
            beh = compile_source(src.format(n=n))
            run = execute(beh, arrays={"x": [1] * n})
            iters = run.loop_iterations["L1"]
            from repro.hw import Allocation
            result = Scheduler(
                beh, DAC, Allocation({"a1": 2, "cp1": 1, "i1": 1}),
                SchedConfig()).schedule()
            length = result.average_length()
            assert iters <= length <= iters + 10

    def test_data_dependent_loop_tracks_profile(self):
        beh = compile_source("""
            proc count(in n, out c) {
                var i = 0;
                while (i < n) { i = i + 1; }
                c = i;
            }
        """)
        traces = uniform_traces(beh, 10, lo=40, hi=60, seed=1)
        prof = profile(beh, traces)
        mean_iters = prof.loop_iterations["L1"]
        from repro.hw import Allocation
        result = Scheduler(beh, DAC, Allocation({"cp1": 1, "i1": 1}),
                           SchedConfig(),
                           prof.branch_probs).schedule()
        # II=1 loop: expected length ~ mean iterations (+ overhead).
        assert result.average_length() == pytest.approx(mean_iters,
                                                        rel=0.25)


class TestFullFactOnTest1:
    """The paper's running example through the whole pipeline."""

    def test_fact_improves_test1(self):
        beh = make_test1()
        probs = probs_for_test1(beh)
        fact = Fact(table1_library(), config=FactConfig(
            search=SearchConfig(max_outer_iters=4, seed=3,
                                max_candidates_per_seed=32)))
        res = fact.optimize(beh, table1_allocation(),
                            branch_probs=probs, objective=THROUGHPUT)
        assert res.speedup >= 1.0
        # The optimized design still computes TEST1.
        ref = execute(beh, {"c1": 5, "c2": 20})
        got = execute(res.best.behavior, {"c1": 5, "c2": 20})
        assert got.outputs == ref.outputs
        assert got.arrays == ref.arrays

    def test_optimized_design_synthesizes(self):
        beh = make_test1()
        probs = probs_for_test1(beh)
        fact = Fact(table1_library(), config=FactConfig(
            search=SearchConfig(max_outer_iters=2, seed=3,
                                max_candidates_per_seed=16)))
        res = fact.optimize(beh, table1_allocation(),
                            branch_probs=probs, objective=THROUGHPUT)
        assert res.best.result is not None
        design = synthesize(res.best.result)
        assert design.area.total > 0
        assert design.binding.count("w_mult1") <= 1


class TestHotBlockFocus:
    def test_hot_nodes_are_the_loop_body(self):
        beh = make_test1()
        probs = probs_for_test1(beh)
        from repro.baselines import run_m1
        from repro.core import hot_cdfg_nodes
        m1 = run_m1(beh, table1_library(), table1_allocation(),
                    branch_probs=probs)
        hot = hot_cdfg_nodes(m1.stg, threshold=0.1)
        loop_ids = beh.loop("L1").node_ids()
        # Hot nodes all belong to the (only) loop.
        assert hot
        assert hot <= loop_ids

"""Match records and the RewritePattern contract."""

import pickle

import pytest

from repro.errors import TransformError
from repro.rewrite import (GLOBAL, LOCAL, Match, RewritePattern,
                           supports_pattern_api)
from repro.transforms import default_library
from repro.transforms.base import Transformation


class TestMatch:
    def test_empty_footprint_rejected(self):
        with pytest.raises(TransformError):
            Match("p", "bad", ())

    def test_footprint_canonicalized(self):
        m = Match("p", "d", (5, 3, 5, 1))
        assert m.footprint == (1, 3, 5)

    def test_fingerprint_stable_across_pickle(self):
        m = Match("p", "swap #3", (3,), (3, "L1"))
        clone = pickle.loads(pickle.dumps(m))
        assert clone == m
        assert clone.fingerprint == m.fingerprint

    def test_fingerprint_distinguishes_params(self):
        a = Match("unroll", "unroll L1 x2", (1, 2), ("L1", 2))
        b = Match("unroll", "unroll L1 x4", (1, 2), ("L1", 4))
        assert a.fingerprint != b.fingerprint

    def test_sort_key_orders_by_pattern_then_footprint(self):
        ms = [Match("b", "x", (9,)), Match("a", "y", (1, 2)),
              Match("a", "z", (1,))]
        ordered = sorted(ms, key=lambda m: m.sort_key)
        assert [m.pattern for m in ordered] == ["a", "a", "b"]
        assert ordered[0].footprint == (1,)

    def test_touches(self):
        m = Match("p", "d", (4, 7))
        assert m.touches({7, 100})
        assert not m.touches([1, 2, 3])


class _LegacyOnly(Transformation):
    name = "legacy_only"

    def find(self, behavior):
        return []


class _LocalToy(RewritePattern):
    name = "toy"
    scope = LOCAL

    def match_at(self, behavior, analyses, nid):
        return [Match(self.name, f"site {nid}", (nid,))]


class TestRewritePatternDefaults:
    def test_supports_pattern_api_for_whole_library(self):
        for t in default_library().transformations:
            assert supports_pattern_api(t), t.name

    def test_legacy_find_overrider_not_pattern_api(self):
        assert not supports_pattern_api(_LegacyOnly())

    def test_local_default_match_aggregates_match_at(self):
        from repro.lang import compile_source
        from repro.rewrite import AnalysisManager
        beh = compile_source("proc p(in a, out r) { r = a + 1; }")
        toy = _LocalToy()
        matches = toy.match(beh, AnalysisManager(beh))
        assert [m.footprint for m in matches] \
            == [(n,) for n in sorted(beh.graph.nodes)]

    def test_default_incremental_hooks(self):
        toy = _LocalToy()
        m = Match("toy", "d", (2, 5))
        assert toy.dependencies(None, m) == frozenset((2, 5))
        assert toy.rescan_roots(None, None, {3}) == {3}
        assert toy.domain(None, None) is None
        assert toy.match_scoped(None, None, {3}) is None

    def test_global_without_match_raises(self):
        class Bare(RewritePattern):
            scope = GLOBAL
        with pytest.raises(NotImplementedError):
            Bare().match(None, None)
        with pytest.raises(NotImplementedError):
            Bare().match_at(None, None, 0)
        with pytest.raises(NotImplementedError):
            Bare().apply(None, Match("x", "d", (1,)))

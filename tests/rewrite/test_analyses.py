"""AnalysisManager: shared cached analyses over one behavior."""

from repro.bench.circuits import circuit
from repro.lang import compile_source
from repro.rewrite import AnalysisManager
from repro.transforms.cleanup import owner_region

LOOP_SRC = """
proc p(in a, in b, in n, out s, out r) {
    r = (a + b) * (b + 17);
    var acc = 0;
    var i = 0;
    while (i < n) {
        acc = acc + a;
        i = i + 1;
    }
    s = acc;
}
"""


class TestStructuralQueries:
    def test_region_map_matches_owner_region(self):
        beh = circuit("test2").behavior()
        am = AnalysisManager(beh)
        for nid in beh.graph.nodes:
            assert am.owner(nid) is owner_region(beh, nid)

    def test_loop_nodes_is_union_of_loop_ids(self):
        beh = compile_source(LOOP_SRC)
        am = AnalysisManager(beh)
        expected = set()
        for lp in beh.loops():
            expected |= lp.node_ids()
        assert am.loop_nodes == expected
        assert am.loop_nodes  # the source has a loop

    def test_structure_key_ignores_block_contents(self):
        beh = compile_source(LOOP_SRC)
        twin = compile_source(LOOP_SRC.replace("b + 17", "b + 99"))
        assert AnalysisManager(beh).structure_key() \
            == AnalysisManager(twin).structure_key()

    def test_structure_key_changes_when_loops_do(self):
        from repro.transforms.loop_unroll import unroll_loop
        beh = compile_source("""
            proc q(in a, out r) {
                var acc = 0;
                for (i = 0; i < 4; i = i + 1) { acc = acc + a; }
                r = acc;
            }
        """)
        before = AnalysisManager(beh).structure_key()
        unrolled = beh.copy()
        unroll_loop(unrolled, unrolled.loops()[0].name, 2)
        assert AnalysisManager(unrolled).structure_key() != before


class TestConstLattice:
    def test_direct_const_and_one_level_folding(self):
        beh = compile_source("proc c(in x, out r) { r = (2 + 3) * x; }")
        am = AnalysisManager(beh)
        g = beh.graph
        from repro.cdfg.ops import OpKind
        consts = [n for n, node in g.nodes.items()
                  if node.kind is OpKind.CONST]
        assert {am.direct_const(n) for n in consts} == {2, 3}
        adds = [n for n, node in g.nodes.items()
                if node.kind is OpKind.ADD]
        assert [am.const_value(n) for n in adds] == [5]

    def test_invalidate_drops_and_recomputes(self):
        beh = compile_source(LOOP_SRC)
        am = AnalysisManager(beh)
        key = am.structure_key()
        loop_nodes = am.loop_nodes
        am.invalidate(set(list(beh.graph.nodes)[:2]))
        # Nothing actually changed, so lazily recomputed results agree.
        assert am.structure_key() == key
        assert am.loop_nodes == loop_nodes


class TestDominance:
    def test_chain_dominated_by_entry(self):
        beh = compile_source("proc d(in a, out r) { r = (a + 1) + a; }")
        am = AnalysisManager(beh)
        g = beh.graph
        from repro.cdfg.ops import OpKind
        (inp,) = [n for n, node in g.nodes.items()
                  if node.kind is OpKind.INPUT]
        # Both the increment and the add read (directly or through the
        # increment) only the input, so every path passes through it.
        for nid, node in g.nodes.items():
            if node.kind in (OpKind.ADD, OpKind.INC):
                assert am.dominates(inp, nid)
            assert am.dominates(nid, nid)

"""RewriteDriver: memoization, provenance, incremental parity."""

import pytest

from repro.bench.circuits import circuit
from repro.errors import ReproError
from repro.lang import compile_source
from repro.rewrite import AnalysisManager, RewriteDriver
from repro.transforms import default_library

MIXED_SRC = """
proc p(in a, in b, in n, out s, out r) {
    r = (a + b) * (b + 17);
    var acc = 0;
    var i = 0;
    while (i < n) {
        acc = acc + a;
        i = i + 1;
    }
    s = acc;
}
"""


def sort_keys(cands):
    return [c.sort_key for c in cands]


def fresh_pair():
    return (RewriteDriver(default_library(), incremental=True),
            RewriteDriver(default_library(), incremental=False,
                          cache_size=0))


class TestMemoization:
    def test_repeat_request_hits_memo(self):
        beh = circuit("gcd").behavior()
        driver = RewriteDriver(default_library())
        first = driver.candidates(beh)
        again = driver.candidates(beh)
        assert sort_keys(first) == sort_keys(again)
        assert driver.stats.memo_hits == 1
        assert driver.stats.requests == 2

    def test_results_are_private_copies(self):
        beh = circuit("gcd").behavior()
        driver = RewriteDriver(default_library())
        first = driver.candidates(beh)
        first.clear()
        assert driver.candidates(beh)

    def test_cache_disabled_still_correct(self):
        beh = circuit("gcd").behavior()
        inc, full = fresh_pair()
        assert sort_keys(full.candidates(beh)) \
            == sort_keys(inc.candidates(beh))
        full.candidates(beh)
        assert full.stats.memo_hits == 0


class TestProvenance:
    def test_apply_annotates_child(self):
        beh = circuit("gcd").behavior()
        driver = RewriteDriver(default_library())
        cand = driver.candidates(beh)[0]
        child = driver.apply(beh, cand)
        parent_fp, dirty = child._rw_parent
        assert isinstance(parent_fp, str) and dirty
        assert child._rw_pair == (parent_fp, cand.match.fingerprint)

    def test_copy_drops_provenance(self):
        beh = circuit("gcd").behavior()
        driver = RewriteDriver(default_library())
        child = driver.apply(beh, driver.candidates(beh)[0])
        assert not hasattr(child.copy(), "_rw_parent")


class TestIncrementalParity:
    """Incremental enumeration must equal a fresh full scan, always."""

    @pytest.mark.parametrize("name", ["gcd", "fir", "test2"])
    def test_every_child_matches_full_rescan(self, name):
        beh = circuit(name).behavior()
        inc, full = fresh_pair()
        for cand in inc.candidates(beh):
            try:
                child = inc.apply(beh, cand)
            except ReproError:
                continue
            assert sort_keys(inc.candidates(child)) \
                == sort_keys(full.candidates(child)), cand.description

    def test_grandchildren_match_full_rescan(self):
        beh = circuit("test2").behavior()
        inc, full = fresh_pair()
        child = None
        for cand in inc.candidates(beh):
            try:
                child = inc.apply(beh, cand)
                break
            except ReproError:
                continue
        assert child is not None
        for cand in inc.candidates(child)[:6]:
            try:
                grandchild = inc.apply(child, cand)
            except ReproError:
                continue
            assert sort_keys(inc.candidates(grandchild)) \
                == sort_keys(full.candidates(grandchild)), cand.description


class TestDomainCarry:
    def test_rewrite_outside_loops_skips_loop_rescans(self):
        beh = compile_source(MIXED_SRC)
        inc, full = fresh_pair()
        loop_nodes = AnalysisManager(beh).loop_nodes
        cands = [c for c in inc.candidates(beh)
                 if c.transform == "commutativity"
                 and not set(c.sites) & loop_nodes]
        assert cands, "expected a commutativity site outside the loop"
        child = inc.apply(beh, cands[0])
        dirty = child._rw_parent[1]
        assert not dirty & loop_nodes
        scans_before = inc.stats.full_scans
        got = inc.candidates(child)
        # Only the domain-less GLOBAL pattern (cse) pays a full scan;
        # the loop restructurers carry the parent's matches wholesale.
        assert inc.stats.full_scans == scans_before + 1
        assert sort_keys(got) == sort_keys(full.candidates(child))

    def test_large_dirty_set_falls_back_to_full_scan(self):
        beh = circuit("test2").behavior()
        driver = RewriteDriver(default_library())
        driver.candidates(beh)
        for cand in driver.candidates(beh):
            try:
                child = driver.apply(beh, cand)
            except ReproError:
                continue
            dirty = child._rw_parent[1]
            if len(dirty) > RewriteDriver.DIRTY_FRACTION_LIMIT \
                    * len(child.graph.nodes):
                scans = driver.stats.full_scans
                driver.candidates(child)
                n_patterns = len(default_library().transformations)
                assert driver.stats.full_scans == scans + n_patterns
                return
        pytest.skip("no candidate produced a large dirty set")


class TestStats:
    def test_stats_arithmetic_roundtrip(self):
        beh = circuit("gcd").behavior()
        driver = RewriteDriver(default_library())
        mark = driver.stats.copy()
        driver.candidates(beh)
        delta = driver.stats.minus(mark)
        assert delta.requests == 1
        assert driver.stats.as_dict() \
            == mark.add(delta).as_dict()

"""Example 1 reproduction: the paper's worked power estimate for TEST1.

Paper numbers (Section 2.2, Example 1):

* average schedule length 119.11 cycles;
* state probabilities P_S0=0.008 ... P_S5=0.404;
* per-FU energies (Vdd² units): incrementer 34.27, comparators 108.75,
  adders 63.64, multiplier 41.70, registers 99.38, memory 93.10;
* total energy 665.58 Vdd² (incl. interconnect + controller);
* Vdd scaling 5 V → 4.29 V against a 151.30-cycle baseline, giving
  80.96/cycle_time power.
"""

import pytest

from repro.bench import test1_behavior as make_test1_behavior
from repro.bench import test1_fig1c_stg as make_fig1c_stg
from repro.hw import table1_library
from repro.power import estimate_power, scaled_vdd_for_schedule
from repro.stg import average_schedule_length, state_probabilities


@pytest.fixture(scope="module")
def setup():
    beh = make_test1_behavior()
    stg = make_fig1c_stg(beh)
    est = estimate_power(stg, beh.graph, table1_library(), vdd=5.0)
    return beh, stg, est


class TestExample1:
    def test_average_schedule_length(self, setup):
        _beh, stg, _est = setup
        assert average_schedule_length(stg) == pytest.approx(119.11,
                                                             rel=0.02)

    def test_state_probabilities(self, setup):
        _beh, stg, _est = setup
        probs = state_probabilities(stg)
        by_label = {stg.states[sid].label: p for sid, p in probs.items()}
        paper = {"S0": 0.008, "S1": 0.008, "S2": 0.153, "S3": 0.259,
                 "S4": 0.149, "S5": 0.404}
        for label, expected in paper.items():
            assert by_label[label] == pytest.approx(expected, abs=0.01), \
                label

    def test_incrementer_energy(self, setup):
        _beh, _stg, est = setup
        assert est.fu_energy["incr1"] == pytest.approx(34.27, rel=0.03)

    def test_comparator_energy(self, setup):
        _beh, _stg, est = setup
        assert est.fu_energy["comp1"] == pytest.approx(108.75, rel=0.03)

    def test_adder_energy(self, setup):
        _beh, _stg, est = setup
        assert est.fu_energy["cla1"] == pytest.approx(63.64, rel=0.03)

    def test_multiplier_energy(self, setup):
        _beh, _stg, est = setup
        assert est.fu_energy["w_mult1"] == pytest.approx(41.70, rel=0.03)

    def test_memory_energy(self, setup):
        _beh, _stg, est = setup
        assert est.memory_energy == pytest.approx(93.10, rel=0.04)

    def test_register_energy(self, setup):
        _beh, _stg, est = setup
        assert est.register_energy == pytest.approx(99.38, rel=0.05)

    def test_total_energy(self, setup):
        _beh, _stg, est = setup
        assert est.total_energy == pytest.approx(665.58, rel=0.03)

    def test_vdd_scaling_to_4_29(self, setup):
        _beh, _stg, est = setup
        vdd = scaled_vdd_for_schedule(est.schedule_length, 151.30)
        assert vdd == pytest.approx(4.29, rel=0.02)

    def test_scaled_power_80_96(self, setup):
        _beh, _stg, est = setup
        vdd = scaled_vdd_for_schedule(est.schedule_length, 151.30)
        power = est.total_energy * vdd ** 2 / 151.30
        assert power == pytest.approx(80.96, rel=0.05)

"""Power model and Vdd scaling unit tests."""

import pytest

from repro.errors import PowerError
from repro.hw import dac98_library
from repro.power import (delay_factor, estimate_power,
                         scaled_vdd_for_schedule, slowdown, solve_vdd)
from repro.stg import ScheduledOp, Stg
from repro.cdfg import Graph, OpKind


def tiny_design():
    """One-add-per-cycle linear STG over a two-node graph."""
    g = Graph()
    a = g.add_node(OpKind.CONST, value=1)
    add = g.add_node(OpKind.ADD)
    g.set_data_edge(a, add, 0)
    g.set_data_edge(a, add, 1)
    stg = Stg()
    s0 = stg.add_state([ScheduledOp(add)])
    s1 = stg.add_state([ScheduledOp(add)])
    stg.add_transition(s0, s1, 1.0)
    stg.entry, stg.exit = s0, s1
    return g, stg, add


class TestEstimator:
    def test_energy_scales_with_op_count(self):
        g, stg, _add = tiny_design()
        lib = dac98_library()
        est = estimate_power(stg, g, lib)
        # Two adds at 1.3 each.
        assert est.fu_ops["a1"] == pytest.approx(2.0)
        assert est.fu_energy["a1"] == pytest.approx(2.6)
        assert est.schedule_length == pytest.approx(2.0)

    def test_exec_prob_weights_predicated_ops(self):
        g, stg, add = tiny_design()
        for state in stg.states.values():
            state.ops[0].exec_prob = 0.25
        est = estimate_power(stg, g, dac98_library())
        assert est.fu_ops["a1"] == pytest.approx(0.5)

    def test_power_divides_by_length_and_cycle_time(self):
        g, stg, _ = tiny_design()
        est1 = estimate_power(stg, g, dac98_library(), cycle_time=1.0)
        est2 = estimate_power(stg, g, dac98_library(), cycle_time=25.0)
        assert est1.power == pytest.approx(est2.power * 25.0)

    def test_vdd_quadratic(self):
        g, stg, _ = tiny_design()
        lo = estimate_power(stg, g, dac98_library(), vdd=2.5)
        hi = estimate_power(stg, g, dac98_library(), vdd=5.0)
        assert hi.power == pytest.approx(4 * lo.power)

    def test_overhead_fraction(self):
        g, stg, _ = tiny_design()
        est = estimate_power(stg, g, dac98_library())
        assert est.overhead_energy == pytest.approx(
            0.51 * est.datapath_energy)

    def test_unknown_node_rejected(self):
        g, stg, _ = tiny_design()
        stg.states[0].ops.append(ScheduledOp(999))
        with pytest.raises(PowerError):
            estimate_power(stg, g, dac98_library())


class TestVddScaling:
    def test_delay_factor_shape(self):
        # 5 / (5-1)^2 = 0.3125
        assert delay_factor(5.0) == pytest.approx(0.3125)

    def test_slowdown_monotone_decreasing_in_vdd(self):
        assert slowdown(3.0) > slowdown(4.0) > slowdown(5.0) == 1.0

    def test_solve_roundtrip(self):
        for target in (1.0, 1.2, 1.8, 3.0):
            v = solve_vdd(target)
            assert slowdown(v) == pytest.approx(target, rel=1e-6)

    def test_paper_example_429(self):
        assert solve_vdd(151.30 / 119.11) == pytest.approx(4.29,
                                                           abs=0.01)

    def test_speedup_request_rejected(self):
        with pytest.raises(PowerError):
            solve_vdd(0.8)

    def test_no_slack_returns_nominal(self):
        assert scaled_vdd_for_schedule(100.0, 100.0) == 5.0
        assert scaled_vdd_for_schedule(120.0, 100.0) == 5.0

    def test_extreme_slowdown_clamps_to_floor(self):
        v = solve_vdd(1000.0, vt=1.0)
        assert v == pytest.approx(2.0, abs=1e-3)

    def test_bad_lengths_rejected(self):
        with pytest.raises(PowerError):
            scaled_vdd_for_schedule(0.0, 10.0)


class TestSolveVddBoundaries:
    """Edges of the scaling model: slowdown 1.0 and the 2·Vt floor."""

    def test_slowdown_exactly_one_returns_nominal(self):
        assert solve_vdd(1.0) == 5.0
        assert solve_vdd(1.0, vdd_initial=3.3) == 3.3
        # Within solver tolerance of 1.0 counts as "no slack" too.
        assert solve_vdd(1.0 + 1e-13) == 5.0

    def test_just_below_one_rejected(self):
        with pytest.raises(PowerError):
            solve_vdd(1.0 - 1e-6)
        with pytest.raises(PowerError):
            solve_vdd(0.0)
        with pytest.raises(PowerError):
            solve_vdd(-3.0)

    def test_non_finite_targets_rejected(self):
        with pytest.raises(PowerError):
            solve_vdd(float("nan"))
        with pytest.raises(PowerError):
            solve_vdd(float("inf"))

    def test_solution_near_floor_still_consistent(self):
        # A target just inside what the floor can realize: the solved
        # supply sits barely above 2·Vt and still round-trips.
        vt = 1.0
        floor = 2.0 * vt
        target = slowdown(floor + 1e-3, 5.0, vt)
        v = solve_vdd(target, vt=vt)
        assert v == pytest.approx(floor + 1e-3, abs=1e-6)
        assert slowdown(v, 5.0, vt) == pytest.approx(target, rel=1e-6)

    def test_floor_is_respected_for_any_huge_target(self):
        for target in (50.0, 1e6, 1e12):
            assert solve_vdd(target, vt=1.5) >= 2.0 * 1.5

"""Hardware library model tests."""

import pytest

from repro.cdfg import OpKind
from repro.errors import AllocationError, PowerError
from repro.hw import (Allocation, dac98_library, memory_resource_name,
                      table1_allocation, table1_library)


class TestLibraries:
    def test_table1_matches_paper(self):
        lib = table1_library()
        assert lib.fu_types["comp1"].delay == 12.0
        assert lib.fu_types["comp1"].energy == 1.1
        assert lib.fu_types["w_mult1"].delay == 23.0
        assert lib.register.energy == 0.3
        assert lib.memory.energy == 1.9

    def test_dac98_delays_match_section5(self):
        lib = dac98_library()
        expected = {"a1": 10, "sb1": 10, "mt1": 23, "cp1": 10, "e1": 5,
                    "i1": 5, "n1": 2, "s1": 10}
        for name, delay in expected.items():
            assert lib.fu_types[name].delay == delay

    def test_selection_covers_arithmetic(self):
        lib = dac98_library()
        for kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.LT,
                     OpKind.EQ, OpKind.INC, OpKind.SHL):
            assert lib.fu_for(kind) is not None

    def test_free_kinds_have_no_fu(self):
        lib = dac98_library()
        for kind in (OpKind.JOIN, OpKind.COPY, OpKind.CONST):
            assert lib.fu_for(kind) is None

    def test_delay_of_memory_ops(self):
        lib = dac98_library()
        assert lib.delay_of(OpKind.LOAD) == lib.memory.delay
        assert lib.delay_of(OpKind.STORE) == lib.memory.delay


class TestVddScaledLibrary:
    def test_lower_vdd_slows_everything(self):
        lib = dac98_library()
        slow = lib.scaled(3.3)
        for name in lib.fu_types:
            assert slow.fu_types[name].delay \
                > lib.fu_types[name].delay
        assert slow.register.delay > lib.register.delay

    def test_nominal_vdd_is_identity(self):
        lib = dac98_library()
        same = lib.scaled(5.0)
        for name in lib.fu_types:
            assert same.fu_types[name].delay \
                == pytest.approx(lib.fu_types[name].delay)

    def test_scaling_preserves_energy_constants(self):
        lib = dac98_library()
        assert lib.scaled(3.0).fu_types["a1"].energy \
            == lib.fu_types["a1"].energy

    def test_vdd_below_vt_rejected(self):
        with pytest.raises(PowerError):
            dac98_library().scaled(0.9)


class TestAllocation:
    def test_table1_allocation_counts(self):
        alloc = table1_allocation()
        assert alloc.count("comp1") == 2
        assert alloc.count("w_mult1") == 1
        assert alloc.count("missing") == 0

    def test_check_feasible_passes(self):
        table1_allocation().check_feasible(
            [OpKind.ADD, OpKind.MUL, OpKind.LT], table1_library())

    def test_check_feasible_rejects_missing_fu(self):
        with pytest.raises(AllocationError):
            Allocation({"cla1": 1}).check_feasible(
                [OpKind.MUL], table1_library())

    def test_copy_is_independent(self):
        a = Allocation({"a1": 2})
        b = a.copy()
        b.counts["a1"] = 9
        assert a.count("a1") == 2

    def test_memory_resource_name(self):
        assert memory_resource_name("buf") == "mem:buf"

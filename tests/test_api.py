"""The ``repro.api`` facade: compile / schedule / optimize, ReproConfig."""

import dataclasses

import pytest

import repro
from repro.api import coerce_allocation
from repro.core.fact import FactConfig
from repro.errors import ConfigError, ReproError
from repro.hw import Allocation
from repro.sched import SchedConfig

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

ALLOC = "sb1=2,cp1=1,e1=1"


class TestCompile:
    def test_from_source_text(self):
        beh = repro.compile(GCD_SRC)
        assert beh.name == "gcd"
        assert beh.inputs == ["a", "b"]

    def test_from_path(self, tmp_path):
        path = tmp_path / "gcd.bdl"
        path.write_text(GCD_SRC)
        assert repro.compile(str(path)).name == "gcd"
        assert repro.compile(path).name == "gcd"  # PathLike too

    def test_bad_source_raises_repro_error(self):
        with pytest.raises(ReproError):
            repro.compile("proc nope(in a { }")


class TestCoerceAllocation:
    def test_accepted_forms(self):
        assert coerce_allocation("a1=2, sb1=1").counts == {
            "a1": 2, "sb1": 1}
        assert coerce_allocation({"a1": 2}).counts == {"a1": 2}
        alloc = Allocation({"m1": 1})
        assert coerce_allocation(alloc) is alloc
        default = coerce_allocation(None)
        assert all(v == 2 for v in default.counts.values())
        assert "a1" in default.counts

    @pytest.mark.parametrize("bad", [
        "a1=x", "a1=-1", "a1", "=3", "a1=2,=3", "a1=",
    ])
    def test_bad_strings_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            coerce_allocation(bad)

    def test_bad_mapping_and_type(self):
        with pytest.raises(ConfigError):
            coerce_allocation({"a1": "lots"})
        with pytest.raises(ConfigError):
            coerce_allocation({"a1": -2})
        with pytest.raises(ConfigError):
            coerce_allocation(3.14)

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)


class TestReproConfig:
    def test_defaults_resolve(self):
        fact = repro.ReproConfig().resolved()
        assert isinstance(fact, FactConfig)

    def test_section_overrides(self):
        cfg = repro.ReproConfig(
            sched=SchedConfig(clock=10.0),
            search=repro.SearchConfig(max_outer_iters=2, seed=9),
            workers=3, cache_size=16)
        fact = cfg.resolved()
        assert fact.sched.clock == 10.0
        assert fact.search.max_outer_iters == 2
        assert fact.search.seed == 9
        assert fact.search.workers == 3
        assert fact.search.cache_size == 16

    def test_resolved_does_not_mutate(self):
        cfg = repro.ReproConfig(workers=4)
        cfg.resolved()
        assert cfg.fact.search.workers is None


class TestScheduleOptimize:
    def test_schedule_accepts_source_and_behavior(self):
        from_src = repro.schedule(GCD_SRC, alloc=ALLOC)
        from_beh = repro.schedule(repro.compile(GCD_SRC), alloc=ALLOC)
        assert from_src.average_length() == from_beh.average_length()

    def test_optimize_end_to_end(self):
        cfg = repro.ReproConfig(
            search=repro.SearchConfig(max_outer_iters=2, seed=1,
                                      max_candidates_per_seed=24))
        res = repro.optimize(GCD_SRC, alloc=ALLOC, config=cfg)
        assert res.best_length <= res.initial_length
        tel = res.telemetry
        assert tel is not None
        assert tel.evaluations > 0

    def test_workers_kwarg_overrides_config(self):
        cfg = repro.ReproConfig(
            search=repro.SearchConfig(max_outer_iters=1, seed=1,
                                      max_candidates_per_seed=12),
            workers=0)
        res = repro.optimize(GCD_SRC, alloc=ALLOC, config=cfg, workers=0)
        assert res.telemetry.backend == "serial"
        # The caller's config object is untouched.
        assert cfg.workers == 0

    def test_bad_objective_raises(self):
        with pytest.raises(ReproError):
            repro.optimize(GCD_SRC, alloc=ALLOC, objective="area")


class TestBackCompat:
    def test_old_import_paths_still_work(self):
        from repro.core.fact import Fact, FactConfig, FactResult  # noqa
        from repro.core.search import (Evaluated, SearchConfig,  # noqa
                                       SearchResult, TransformSearch)
        from repro.core.objectives import POWER, THROUGHPUT  # noqa
        from repro.hw import dac98_library  # noqa
        from repro.lang import compile_source  # noqa
        assert repro.SearchConfig is SearchConfig

    def test_top_level_exports(self):
        for name in ("compile", "schedule", "optimize", "ReproConfig",
                     "coerce_allocation", "Fact", "FactConfig",
                     "SearchConfig", "SchedConfig", "ReproError",
                     "dac98_library", "__version__"):
            assert hasattr(repro, name), name


class TestExploreFacade:
    def small_config(self):
        return repro.ExploreConfig(
            generations=1, population_size=4,
            max_candidates_per_seed=8, seed=1, warm_start=False,
            search=repro.SearchConfig(max_outer_iters=1, seed=1,
                                      max_candidates_per_seed=8))

    def test_exports(self):
        for name in ("explore", "ExploreConfig", "ExploreResult",
                     "ParetoFront", "RunStore", "CacheStats"):
            assert hasattr(repro, name), name

    def test_explore_runs_and_reports_store_stats(self, tmp_path):
        result = repro.explore(GCD_SRC, alloc=ALLOC,
                               config=self.small_config(),
                               store=tmp_path / "store")
        assert len(result.front) >= 1
        assert isinstance(result.store_stats, repro.CacheStats)
        assert 0.0 <= result.store_hit_rate <= 1.0
        assert result.store_stats.misses > 0  # cold store


class TestCacheStatsSurface:
    def test_optimize_exposes_cache_stats(self):
        cfg = repro.ReproConfig(
            search=repro.SearchConfig(max_outer_iters=1, seed=1,
                                      max_candidates_per_seed=12))
        res = repro.optimize(GCD_SRC, alloc=ALLOC, config=cfg)
        stats = res.cache_stats
        assert isinstance(stats, repro.CacheStats)
        assert stats.hits + stats.misses > 0
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.evictions >= 0

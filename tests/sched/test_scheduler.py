"""Scheduler end-to-end tests: behavior → STG → expected length."""

import pytest

from repro.cdfg import BehaviorBuilder
from repro.errors import ScheduleError
from repro.hw import Allocation, dac98_library
from repro.sched import SchedConfig, Scheduler, schedule_behavior
from repro.stg import average_schedule_length

LIB = dac98_library()


def sched(behavior, counts, **cfg):
    return schedule_behavior(behavior, LIB, Allocation(counts),
                             SchedConfig(**cfg))


def length(behavior, counts, **cfg):
    return sched(behavior, counts, **cfg).average_length()


class TestStraightLine:
    def test_independent_adds_resource_limited(self):
        b = BehaviorBuilder("adds")
        xs = [b.input(f"x{i}") for i in range(8)]
        for i in range(4):
            b.assign(f"s{i}", b.add(xs[2 * i], xs[2 * i + 1]))
        for i in range(4):
            b.output(f"s{i}")
        beh = b.finish()
        # 4 independent adds, 2 adders -> 2 cycles, plus the exit state.
        assert length(beh, {"a1": 2}) == pytest.approx(3.0)
        # With 4 adders -> 1 cycle + exit.
        assert length(beh, {"a1": 4}) == pytest.approx(2.0)

    def test_chaining_packs_dependent_ops(self):
        b = BehaviorBuilder("chain")
        x = b.input("x")
        t = b.add(x, x)
        u = b.add(t, x)
        b.assign("r", u)
        b.output("r")
        beh = b.finish()
        # Two dependent 10ns adds chain within a 25ns clock: 1 cycle.
        assert length(beh, {"a1": 2}) == pytest.approx(2.0)
        # Without chaining they need 2 cycles.
        assert length(beh, {"a1": 2},
                      allow_chaining=False) == pytest.approx(3.0)

    def test_three_add_chain_splits(self):
        b = BehaviorBuilder("chain3")
        x = b.input("x")
        t = b.add(x, x)
        u = b.add(t, x)
        v = b.add(u, x)
        b.assign("r", v)
        b.output("r")
        beh = b.finish()
        # 30ns of chained delay does not fit one 25ns cycle.
        assert length(beh, {"a1": 3}) == pytest.approx(3.0)

    def test_multicycle_multiplier(self):
        b = BehaviorBuilder("mc")
        x = b.input("x")
        b.assign("r", b.mul(x, x))
        b.output("r")
        beh = b.finish()
        # 23ns multiply fits one 25ns cycle...
        assert length(beh, {"mt1": 1}) == pytest.approx(2.0)
        # ...but needs two 15ns cycles.
        assert length(beh, {"mt1": 1}, clock=15.0) == pytest.approx(3.0)

    def test_missing_allocation_raises(self):
        b = BehaviorBuilder("noadd")
        x = b.input("x")
        b.assign("r", b.add(x, x))
        b.output("r")
        beh = b.finish()
        with pytest.raises(ScheduleError):
            sched(beh, {"sb1": 1})


class TestBranching:
    def build_if(self):
        b = BehaviorBuilder("branchy")
        x = b.input("x")
        c = b.lt(x, b.const(0))
        with b.if_(c):
            # then: 3 dependent multiplies (3 cycles)
            t = b.mul(x, x)
            t = b.mul(t, x)
            t = b.mul(t, x)
            b.assign("r", t)
            b.otherwise()
            # else: 1 add (1 cycle)
            b.assign("r", b.add(x, x))
        b.output("r")
        return b.finish()

    def test_expected_length_weights_paths(self):
        beh = self.build_if()
        result = schedule_behavior(
            beh, LIB, Allocation({"mt1": 1, "a1": 1, "cp1": 1}),
            SchedConfig(),
            branch_probs={self._cond(beh): 1.0})
        # cond state + 3 mult states + exit
        assert result.average_length() == pytest.approx(5.0)
        result = schedule_behavior(
            beh, LIB, Allocation({"mt1": 1, "a1": 1, "cp1": 1}),
            SchedConfig(),
            branch_probs={self._cond(beh): 0.0})
        # cond state + 1 add state + exit
        assert result.average_length() == pytest.approx(3.0)

    @staticmethod
    def _cond(beh):
        from repro.cdfg import OpKind
        return next(n.id for n in beh.graph if n.kind is OpKind.LT)

    def test_unprofiled_uses_default_half(self):
        beh = self.build_if()
        got = length(beh, {"mt1": 1, "a1": 1, "cp1": 1})
        assert got == pytest.approx(0.5 * 5.0 + 0.5 * 3.0)


class TestLoops:
    def accumulate(self, n):
        b = BehaviorBuilder("acc")
        b.array("x", n)
        b.assign("s", b.const(0))
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i", "s"], trip_count=n):
            b.loop_cond(b.lt(b.var("i"), b.const(n)))
            v = b.load("x", b.var("i"))
            b.assign("s", b.add(b.var("s"), v))
            b.assign("i", b.inc(b.var("i")))
        b.output("s")
        return b.finish()

    def test_pipelined_accumulation_reaches_ii_1(self):
        beh = self.accumulate(64)
        got = length(beh, {"a1": 1, "cp1": 1, "i1": 1})
        # II=1 pipelined: ~64 cycles + prologue/drain/exit overhead.
        assert got <= 64 + 8
        assert got >= 64

    def test_sequential_when_pipelining_disabled(self):
        beh = self.accumulate(64)
        got = length(beh, {"a1": 1, "cp1": 1, "i1": 1},
                     allow_pipelining=False)
        # Sequential: >= 2 states per iteration (cond, body).
        assert got >= 2 * 64

    def test_gcd_schedules_and_terminates(self):
        b = BehaviorBuilder("gcd")
        b.input("a")
        b.input("b")
        with b.loop("L0", carried=["a", "b"]):
            b.loop_cond(b.ne(b.var("a"), b.var("b")))
            c = b.lt(b.var("a"), b.var("b"))
            with b.if_(c):
                b.assign("b", b.sub(b.var("b"), b.var("a")))
                b.otherwise()
                b.assign("a", b.sub(b.var("a"), b.var("b")))
        b.output("a")
        beh = b.finish()
        cond = beh.loop("L0").cond
        result = schedule_behavior(
            beh, LIB, Allocation({"sb1": 2, "cp1": 1, "e1": 1}),
            SchedConfig(),
            branch_probs={cond: 0.9})
        # ~10 iterations expected; a few states per iteration.
        got = result.average_length()
        assert 10 <= got <= 60

    def test_nested_loops(self):
        b = BehaviorBuilder("nest")
        b.assign("t", b.const(0))
        b.assign("i", b.const(0))
        with b.loop("outer", carried=["i", "t"], trip_count=4):
            b.loop_cond(b.lt(b.var("i"), b.const(4)))
            b.assign("j", b.const(0))
            with b.loop("inner", carried=["j", "t"], trip_count=8):
                b.loop_cond(b.lt(b.var("j"), b.const(8)))
                b.assign("t", b.add(b.var("t"), b.var("j")))
                b.assign("j", b.inc(b.var("j")))
            b.assign("i", b.inc(b.var("i")))
        b.output("t")
        beh = b.finish()
        got = length(beh, {"a1": 1, "cp1": 1, "i1": 1})
        # Roughly 4 * (8 inner iterations) plus per-level overheads.
        assert 32 <= got <= 120


class TestConcurrentLoops:
    def two_loops(self, n1, n2, shared_array=False):
        b = BehaviorBuilder("conc")
        b.array("x", max(n1, n2) + 1)
        second = "x" if shared_array else "y"
        if not shared_array:
            b.array("y", max(n1, n2) + 1)
        b.assign("i", b.const(0))
        with b.loop("L1", carried=["i"], trip_count=n1):
            b.loop_cond(b.lt(b.var("i"), b.const(n1)))
            b.store("x", b.var("i"), b.var("i"))
            b.assign("i", b.inc(b.var("i")))
        b.assign("j", b.const(0))
        with b.loop("L2", carried=["j"], trip_count=n2):
            b.loop_cond(b.lt(b.var("j"), b.const(n2)))
            b.store(second, b.var("j"), b.var("j"))
            b.assign("j", b.inc(b.var("j")))
        b.output("i")
        b.output("j")
        return b.finish()

    def test_independent_loops_overlap(self):
        beh = self.two_loops(32, 32)
        conc = length(beh, {"cp1": 2, "i1": 2})
        solo = length(beh, {"cp1": 2, "i1": 2},
                      allow_concurrent_loops=False)
        assert conc < solo
        # Fully overlapped: ~32 cycles, not ~64.
        assert conc <= 40

    def test_dependent_loops_not_overlapped(self):
        beh = self.two_loops(32, 32, shared_array=True)
        conc = length(beh, {"cp1": 2, "i1": 2})
        solo = length(beh, {"cp1": 2, "i1": 2},
                      allow_concurrent_loops=False)
        assert conc == pytest.approx(solo)

    def test_unequal_trip_counts_phase_structure(self):
        beh = self.two_loops(16, 48)
        got = length(beh, {"cp1": 2, "i1": 2})
        # Phase 1: 16 overlapped passes; phase 2: 32 solo passes.
        assert got <= 60

"""Region-level schedule memoization: identity with the legacy path."""

import pytest

from repro.bench.circuits import circuit
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.profiling import profile
from repro.sched.driver import Scheduler
from repro.sched.regioncache import (CachedFragment, RegionScheduleCache,
                                     splice, unit_key)
from repro.stg.model import ScheduledOp, Stg

LIB = dac98_library()
NAMES = ("gcd", "fir", "test2", "sintran", "igf", "pps")

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _setup(name):
    c = circuit(name)
    beh = c.behavior()
    probs = dict(profile(beh, c.traces(beh)).branch_probs)
    return c, beh, probs


def _schedule(c, beh, probs, cache):
    return Scheduler(beh, LIB, c.allocation, c.sched, probs,
                     region_cache=cache).schedule()


class TestBitIdentity:
    """The build-and-splice path reproduces the in-place walk exactly."""

    @pytest.mark.parametrize("name", NAMES)
    def test_cached_and_zero_storage_match_legacy(self, name):
        c, beh, probs = _setup(name)
        legacy = _schedule(c, beh, probs, None)
        cached = _schedule(c, beh, probs,
                           RegionScheduleCache(context_fp="t"))
        zero = _schedule(c, beh, probs,
                         RegionScheduleCache(max_entries=0,
                                             context_fp="t"))
        assert cached.stg.to_dot() == legacy.stg.to_dot()
        assert zero.stg.to_dot() == legacy.stg.to_dot()
        assert cached.average_length() == legacy.average_length()
        assert zero.average_length() == legacy.average_length()

    @pytest.mark.parametrize("name", ("gcd", "fir", "test2"))
    def test_warm_reschedule_is_pure_reuse(self, name):
        """Same content twice: every unit is spliced, none rebuilt.

        fir exercises the pipe/seq loop variants, test2 the concurrent
        run and its per-phase kernels.
        """
        c, beh, probs = _setup(name)
        cache = RegionScheduleCache(context_fp="t")
        first = _schedule(c, beh, probs, cache)
        built = cache.states_built
        solved = cache.markov_local
        second = _schedule(c, beh, probs, cache)
        assert second.stg.to_dot() == first.stg.to_dot()
        assert second.average_length() == first.average_length()
        assert cache.stats.hits > 0
        assert cache.states_built == built       # nothing rescheduled
        assert cache.states_reused > 0
        assert cache.markov_local == solved      # no new local solves


class TestLocalizedMarkov:
    def test_visits_memoized_per_fragment(self):
        frag = Stg("f")
        a = frag.add_state()
        b = frag.add_state()
        frag.add_transition(a, b, 0.5)
        frag.add_transition(a, a, 0.5)
        cf = CachedFragment(frag, entries=[(a, 1.0, "")],
                            exits=[(b, 1.0, "")])
        cache = RegionScheduleCache(context_fp="t")
        v1 = cache.visits_of(cf)
        assert v1 is not None
        assert v1[a] == pytest.approx(2.0)   # geometric self-loop
        assert cache.markov_local == 1
        assert cache.visits_of(cf) is v1
        assert cache.markov_reused == 1
        assert cache.markov_local == 1

    def test_singular_subchain_falls_back(self):
        """A fragment that never reaches its exit cannot be solved in
        isolation; the failure is remembered, not retried."""
        frag = Stg("trap")
        a = frag.add_state()
        b = frag.add_state()
        frag.add_transition(a, a, 1.0)       # absorbing: b unreachable
        cf = CachedFragment(frag, entries=[(a, 1.0, "")],
                            exits=[(b, 1.0, "")])
        cache = RegionScheduleCache(context_fp="t")
        assert cache.visits_of(cf) is None
        assert cf.solve_failed
        assert cache.visits_of(cf) is None   # no second solve attempt
        assert cache.markov_local == 0


class TestSplice:
    def test_splice_preserves_order_ids_and_ports(self):
        frag = Stg("frag")
        a = frag.add_state([ScheduledOp(1)], label="a")
        b = frag.add_state([ScheduledOp(2, iteration=1)], label="b")
        frag.add_transition(a, b, 0.5, "c")
        frag.add_transition(b, a, 1.0)
        cf = CachedFragment(frag, entries=[(a, 1.0, "")],
                            exits=[(b, 0.5, "x")])
        target = Stg("t")
        target.add_state(label="pre")
        out, idmap = splice(target, cf)
        assert idmap == {a: 1, b: 2}
        assert out.entries == [(1, 1.0, "")]
        assert out.exits == [(2, 0.5, "x")]
        assert [(t.src, t.dst, t.prob, t.label)
                for t in target.transitions] == [(1, 2, 0.5, "c"),
                                                 (2, 1, 1.0, "")]
        assert target.states[2].label == "b"
        assert target.states[2].ops[0].iteration == 1
        # The cached fragment itself is untouched.
        assert len(frag) == 2


class _NoGuards:
    def effective_guard(self, nid):
        return []


class TestUnitKey:
    def test_recompilation_is_stable(self):
        b1 = compile_source(GCD_SRC)
        b2 = compile_source(GCD_SRC)
        key = lambda b: unit_key(b, [b.loops()[0]], _NoGuards(), "fp")
        assert key(b1) == key(b2)

    def test_semantic_change_is_visible(self):
        b1 = compile_source(GCD_SRC)
        b2 = compile_source(GCD_SRC.replace("b - a", "b - a - a"))
        key = lambda b: unit_key(b, [b.loops()[0]], _NoGuards(), "fp")
        assert key(b1) != key(b2)

    def test_context_namespacing_and_variants(self):
        b = compile_source(GCD_SRC)
        loop = [b.loops()[0]]
        c1 = RegionScheduleCache(context_fp="ctx1")
        c2 = RegionScheduleCache(context_fp="ctx2")
        assert (c1.key_for(b, loop, _NoGuards())
                != c2.key_for(b, loop, _NoGuards()))
        assert (c1.key_for(b, loop, _NoGuards(), variant="pipe")
                != c1.key_for(b, loop, _NoGuards()))
        assert (c1.key_for(b, loop, _NoGuards(), variant="pipe")
                != c1.key_for(b, loop, _NoGuards(), variant="seq"))


class TestStorage:
    def test_zero_entry_cache_stores_nothing(self):
        cache = RegionScheduleCache(max_entries=0, context_fp="t")
        cache.put("k", CachedFragment(Stg()))
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_snapshot_tracks_counters(self):
        cache = RegionScheduleCache(context_fp="t")
        before = cache.snapshot()
        assert cache.get("missing") is None
        cache.put("k", CachedFragment(Stg()))
        assert cache.get("k") is not None
        after = cache.snapshot()
        assert after[0] - before[0] == 1     # hits
        assert after[1] - before[1] == 1     # misses

"""Scheduler driver edge cases."""

import pytest

from repro.cdfg import BehaviorBuilder
from repro.hw import Allocation, dac98_library
from repro.sched import SchedConfig, schedule_behavior

LIB = dac98_library()


class TestDegenerateBehaviors:
    def test_passthrough_behavior(self):
        """No compute at all: input wired to output."""
        b = BehaviorBuilder("wire")
        x = b.input("x")
        b.assign("r", x)
        b.output("r")
        beh = b.finish()
        result = schedule_behavior(beh, LIB, Allocation({}),
                                   SchedConfig())
        # Entry + exit only.
        assert result.average_length() == pytest.approx(2.0)
        result.stg.validate()

    def test_constant_only_behavior(self):
        b = BehaviorBuilder("const")
        b.assign("r", b.const(42))
        b.output("r")
        beh = b.finish()
        result = schedule_behavior(beh, LIB, Allocation({}),
                                   SchedConfig())
        assert result.average_length() >= 1.0

    def test_zero_trip_loop_schedules(self):
        b = BehaviorBuilder("zero")
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i"], trip_count=0):
            b.loop_cond(b.lt(b.var("i"), b.const(0)))
            b.assign("i", b.inc(b.var("i")))
        b.output("i")
        beh = b.finish()
        result = schedule_behavior(
            beh, LIB, Allocation({"cp1": 1, "i1": 1}), SchedConfig())
        # Condition checked once, loop never taken.
        assert result.average_length() <= 4.0

    def test_sequential_loops_compose(self):
        b = BehaviorBuilder("seq")
        b.input("n")
        total = b.const(0)
        b.assign("t", total)
        for name in ("A", "B"):
            b.assign("i", b.const(0))
            with b.loop(name, carried=["i", "t"], trip_count=8):
                b.loop_cond(b.lt(b.var("i"), b.const(8)))
                b.assign("t", b.add(b.var("t"), b.var("i")))
                b.assign("i", b.inc(b.var("i")))
        b.output("t")
        beh = b.finish()
        # The loops share 't' (dependent): they must run back-to-back.
        result = schedule_behavior(
            beh, LIB, Allocation({"a1": 1, "cp1": 1, "i1": 1}),
            SchedConfig())
        assert result.average_length() >= 16.0

    def test_result_metadata(self):
        b = BehaviorBuilder("meta")
        x = b.input("x")
        b.assign("r", b.add(x, x))
        b.output("r")
        beh = b.finish()
        cfg = SchedConfig(clock=20.0)
        alloc = Allocation({"a1": 1})
        result = schedule_behavior(beh, LIB, alloc, cfg)
        assert result.config is cfg
        assert result.allocation is alloc
        assert result.behavior is beh
        assert result.throughput() == pytest.approx(
            1.0 / result.average_length())

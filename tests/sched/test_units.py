"""Scheduler subunit tests: reservation tables, fragments, pipelining."""

import pytest

from repro.cdfg import BehaviorBuilder, OpKind
from repro.hw import Allocation, dac98_library
from repro.sched import (Frag, LinearTable, ModuloTable, Position,
                         ResourceModel, SchedConfig, compose, connect,
                         pipeline_loop, schedule_behavior, single_entry)
from repro.sched.branching import ScheduleContext
from repro.cdfg.analysis import GuardAnalysis
from repro.stg import Stg

LIB = dac98_library()


class TestLinearTable:
    def cap2(self, _name):
        return 2

    def test_capacity_respected(self):
        t = LinearTable(self.cap2)
        assert t.can_place(0, 1, "a1", 1)
        t.place(0, 1, "a1", 1)
        t.place(0, 1, "a1", 2)
        assert not t.can_place(0, 1, "a1", 3)
        assert t.can_place(1, 1, "a1", 3)

    def test_multicycle_occupies_all_cycles(self):
        t = LinearTable(lambda _n: 1)
        t.place(0, 3, "mt1", 1)
        for c in range(3):
            assert not t.can_place(c, 1, "mt1", 2)
        assert t.can_place(3, 1, "mt1", 2)

    def test_sharing_predicate_allows_mutex_ops(self):
        t = LinearTable(lambda _n: 1, share=lambda a, b: True)
        t.place(0, 1, "sb1", 1)
        assert t.can_place(0, 1, "sb1", 2)
        t.place(0, 1, "sb1", 2)
        assert t.usage((0,), "sb1") == 1

    def test_no_sharing_without_predicate(self):
        t = LinearTable(lambda _n: 1)
        t.place(0, 1, "sb1", 1)
        assert not t.can_place(0, 1, "sb1", 2)


class TestModuloTable:
    def test_wraps_modulo_ii(self):
        t = ModuloTable(2, lambda _n: 1)
        t.place(0, 1, "a1", 1)
        assert not t.can_place(2, 1, "a1", 2)  # 2 mod 2 == 0
        assert t.can_place(3, 1, "a1", 2)

    def test_op_longer_than_ii_rejected(self):
        t = ModuloTable(2, lambda _n: 4)
        assert not t.can_place(0, 3, "mt1", 1)

    def test_bad_ii_rejected(self):
        with pytest.raises(ValueError):
            ModuloTable(0, lambda _n: 1)


class TestFragments:
    def test_compose_skips_empty(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        f1 = Frag.linear(a, a)
        f2 = Frag.empty()
        f3 = Frag.linear(b, b)
        out = compose(stg, [f1, f2, f3])
        assert out.entries[0][0] == a
        assert out.exits[0][0] == b
        assert any(t.src == a and t.dst == b for t in stg.transitions)

    def test_compose_all_empty_is_empty(self):
        stg = Stg()
        assert compose(stg, [Frag.empty(), Frag.empty()]).is_empty

    def test_connect_multiplies_weights(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        c = stg.add_state()
        connect(stg, [(a, 0.5, "")], [(b, 0.6, ""), (c, 0.4, "")])
        probs = sorted(t.prob for t in stg.transitions)
        assert probs == [pytest.approx(0.2), pytest.approx(0.3)]

    def test_single_entry_creates_dispatch_for_multi(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        frag = Frag([(a, 0.7, ""), (b, 0.3, "")], [])
        entry = single_entry(stg, frag)
        assert entry not in (a, b)
        outs = stg.out_edges(entry)
        assert sum(t.prob for t in outs) == pytest.approx(1.0)

    def test_single_entry_passthrough_for_sole(self):
        stg = Stg()
        a = stg.add_state()
        assert single_entry(stg, Frag.linear(a, a)) == a


def make_ctx(behavior, counts, **cfg):
    from repro.stg import Stg as StgClass
    rm = ResourceModel(behavior.graph, LIB, Allocation(counts),
                       {n: d.ports for n, d in behavior.arrays.items()})
    return ScheduleContext(behavior, behavior.graph, rm,
                           SchedConfig(**cfg), None, StgClass(),
                           GuardAnalysis(behavior.graph))


class TestPipelineII:
    def accumulator(self, extra_delay_ops=0):
        b = BehaviorBuilder("acc")
        b.input("n")
        b.assign("s", b.const(0))
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i", "s"]):
            b.loop_cond(b.lt(b.var("i"), b.var("n")))
            v = b.var("i")
            for _ in range(extra_delay_ops):
                v = b.mul(v, v)  # stretch the recurrence
            b.assign("s", b.add(b.var("s"), v))
            b.assign("i", b.inc(b.var("i")))
        b.output("s")
        return b.finish()

    def test_simple_accumulator_ii_1(self):
        beh = self.accumulator()
        ctx = make_ctx(beh, {"a1": 1, "cp1": 1, "i1": 1})
        result = pipeline_loop(ctx, beh.loop("L"))
        assert result is not None
        assert result.ii == 1

    def test_recurrence_through_multiplies_raises_ii(self):
        beh = self.accumulator(extra_delay_ops=2)
        ctx = make_ctx(beh, {"a1": 1, "cp1": 1, "i1": 1, "mt1": 2})
        result = pipeline_loop(ctx, beh.loop("L"))
        assert result is not None
        # i -> mul -> mul -> add -> s': several cycles of recurrence...
        # but only the s-chain is carried; the muls feed forward, so
        # the add-side recurrence still allows a small II.
        assert result.ii >= 1

    def test_resource_limited_ii(self):
        b = BehaviorBuilder("res")
        b.input("n")
        b.array("x", 64)
        b.array("y", 64)
        b.array("z", 64)
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i"], trip_count=64):
            b.loop_cond(b.lt(b.var("i"), b.const(64)))
            v1 = b.load("x", b.var("i"))
            v2 = b.load("y", b.var("i"))
            t = b.add(v1, v2)
            u = b.add(t, v1)
            b.store("z", b.var("i"), u)
            b.assign("i", b.inc(b.var("i")))
        b.output("i")
        beh = b.finish()
        # Two dependent adds, one adder -> with chaining both fit one
        # cycle, so the adder is used twice per iteration -> II >= 2.
        ctx = make_ctx(beh, {"a1": 1, "cp1": 1, "i1": 1})
        result = pipeline_loop(ctx, beh.loop("L"))
        assert result is not None
        assert result.ii == 2
        ctx2 = make_ctx(beh, {"a1": 2, "cp1": 1, "i1": 1})
        result2 = pipeline_loop(ctx2, beh.loop("L"))
        assert result2 is not None
        assert result2.ii == 1

    def test_nested_loop_body_not_pipelineable(self):
        b = BehaviorBuilder("nest")
        b.input("n")
        b.assign("i", b.const(0))
        b.assign("t", b.const(0))
        with b.loop("outer", carried=["i", "t"]):
            b.loop_cond(b.lt(b.var("i"), b.var("n")))
            b.assign("j", b.const(0))
            with b.loop("inner", carried=["j", "t"]):
                b.loop_cond(b.lt(b.var("j"), b.var("i")))
                b.assign("t", b.inc(b.var("t")))
                b.assign("j", b.inc(b.var("j")))
            b.assign("i", b.inc(b.var("i")))
        b.output("t")
        beh = b.finish()
        ctx = make_ctx(beh, {"cp1": 2, "i1": 2})
        assert pipeline_loop(ctx, beh.loop("outer")) is None

    def test_memory_carried_dependence_limits_ii(self):
        b = BehaviorBuilder("memdep")
        b.array("x", 64)
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i"], trip_count=63):
            b.loop_cond(b.lt(b.var("i"), b.const(63)))
            v = b.load("x", b.var("i"))
            nxt = b.inc(b.var("i"))
            b.store("x", nxt, v)
            b.assign("i", nxt)
        b.output("i")
        beh = b.finish()
        ctx = make_ctx(beh, {"cp1": 1, "i1": 2})
        result = pipeline_loop(ctx, beh.loop("L"))
        assert result is not None
        # store(iter k) must complete before load(iter k+1): II > 1.
        assert result.ii >= 2


class TestPosition:
    def test_ordering(self):
        assert Position(1, 0.0) < Position(2, 0.0)
        assert Position(1, 5.0) < Position(1, 10.0)

    def test_advanced_to_cycle(self):
        p = Position(3, 12.0)
        assert p.advanced_to_cycle(5) == Position(5, 0.0)
        assert p.advanced_to_cycle(2) == p

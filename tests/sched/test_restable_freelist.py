"""Reservation-table free-list: the saturated-cycle skip is exact."""

import random

import pytest

from repro.sched.restable import LinearTable, ModuloTable


def cap2(_resource):
    return 2


def cap1(_resource):
    return 1


class TestNextFreeCycle:
    def test_empty_table_returns_cycle_unchanged(self):
        t = LinearTable(cap1)
        assert t.next_free_cycle(0, "a1") == 0
        assert t.next_free_cycle(7, "a1") == 7

    def test_skips_saturated_prefix(self):
        t = LinearTable(cap1)
        for c in range(4):
            t.place(c, 1, "a1", nid=c)
        assert t.next_free_cycle(0, "a1") == 4
        assert t.next_free_cycle(2, "a1") == 4
        assert t.next_free_cycle(9, "a1") == 9

    def test_stops_at_gap(self):
        t = LinearTable(cap1)
        for c in (0, 1, 3):
            t.place(c, 1, "a1", nid=c)
        assert t.next_free_cycle(0, "a1") == 2
        assert t.next_free_cycle(3, "a1") == 4

    def test_partial_occupancy_is_not_saturated(self):
        t = LinearTable(cap2)
        t.place(0, 1, "a1", nid=1)
        assert t.next_free_cycle(0, "a1") == 0
        t.place(0, 1, "a1", nid=2)
        assert t.next_free_cycle(0, "a1") == 1

    def test_multicycle_op_saturates_its_span(self):
        t = LinearTable(cap1)
        t.place(0, 3, "mt1", nid=1)
        assert t.next_free_cycle(0, "mt1") == 3
        assert t.next_free_cycle(0, "a1") == 0   # other resources free

    def test_share_predicate_disables_the_skip(self):
        """With guarded sharing a full cycle may still admit an op, so
        the scan must not jump; placement falls back to cycle-by-cycle
        probing and stays correct."""
        t = LinearTable(cap1, share=lambda a, b: True)
        t.place(0, 1, "a1", nid=1)
        t.place(0, 1, "a1", nid=2)   # shares the single instance
        assert t.next_free_cycle(0, "a1") == 0
        assert t.can_place(0, 1, "a1", nid=3)

    def test_matches_naive_probe_on_random_workload(self):
        rng = random.Random(11)
        fast = LinearTable(cap2)
        slow = LinearTable(cap2)
        for nid in range(300):
            res = rng.choice(["a1", "s1"])
            n_cycles = rng.choice([1, 1, 1, 2])
            earliest = rng.randrange(0, 8)
            c_fast = fast.next_free_cycle(earliest, res)
            while not fast.can_place(c_fast, n_cycles, res, nid):
                c_fast = fast.next_free_cycle(c_fast + 1, res)
            c_slow = earliest
            while not slow.can_place(c_slow, n_cycles, res, nid):
                c_slow += 1
            assert c_fast == c_slow
            fast.place(c_fast, n_cycles, res, nid)
            slow.place(c_slow, n_cycles, res, nid)


class TestModuloTable:
    def test_rejects_bad_ii(self):
        with pytest.raises(ValueError):
            ModuloTable(0, cap1)

    def test_op_longer_than_ii_never_fits(self):
        t = ModuloTable(2, cap1)
        assert not t.can_place(0, 3, "mt1", nid=1)

    def test_wraps_modulo_ii(self):
        t = ModuloTable(2, cap1)
        t.place(0, 1, "a1", nid=1)
        assert not t.can_place(2, 1, "a1", nid=2)   # 2 mod 2 == 0
        assert t.can_place(1, 1, "a1", nid=2)

"""Hand-verified branching schedules: state counts and probabilities."""

import pytest

from repro.cdfg import BehaviorBuilder, OpKind
from repro.hw import Allocation, dac98_library
from repro.sched import SchedConfig, schedule_behavior
from repro.stg import average_schedule_length, expected_visits

LIB = dac98_library()

FULL = Allocation({"a1": 2, "sb1": 2, "mt1": 2, "cp1": 2, "e1": 2,
                   "i1": 2, "n1": 2, "s1": 2})


def build_two_sided(then_muls, else_adds):
    """if (a<b) {chain of muls} else {chain of adds}."""
    b = BehaviorBuilder("twoside")
    a = b.input("a")
    c = b.input("b")
    cond = b.lt(a, c)
    with b.if_(cond):
        v = a
        for _ in range(then_muls):
            v = b.mul(v, v)
        b.assign("r", v)
        b.otherwise()
        v = a
        for _ in range(else_adds):
            v = b.add(v, v)
        b.assign("r", v)
    b.output("r")
    return b.finish(), cond


class TestTwoSidedIf:
    def test_path_lengths(self):
        # then: 3 dependent multiplies -> 3 states (23ns each, no
        # chaining possible); else: 4 dependent adds -> 2 states
        # (chained in pairs).  Plus cond state and exit state.
        beh, cond = build_two_sided(3, 4)
        taken = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                  {cond: 1.0})
        not_taken = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                      {cond: 0.0})
        assert taken.average_length() == pytest.approx(1 + 3 + 1)
        assert not_taken.average_length() == pytest.approx(1 + 2 + 1)

    def test_probability_weighting_exact(self):
        beh, cond = build_two_sided(3, 4)
        for p in (0.25, 0.5, 0.8):
            result = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                       {cond: p})
            expected = 1 + p * 3 + (1 - p) * 2 + 1
            assert result.average_length() == pytest.approx(expected)

    def test_branch_states_visited_with_branch_probability(self):
        beh, cond = build_two_sided(1, 1)
        result = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                   {cond: 0.3})
        visits = expected_visits(result.stg)
        graph = beh.graph
        mul = next(n.id for n in graph if n.kind is OpKind.MUL)
        mul_states = [sid for sid, st in result.stg.states.items()
                      if any(op.node == mul for op in st.ops)]
        assert sum(visits[s] for s in mul_states) == pytest.approx(0.3)


class TestIndependentConditions:
    def build(self):
        """Two independent ifs in sequence within one block."""
        b = BehaviorBuilder("indep")
        x = b.input("x")
        y = b.input("y")
        c1 = b.lt(x, b.const(10))
        c2 = b.gt(y, b.const(20))
        b.assign("r", b.const(0))
        with b.if_(c1):
            b.assign("r", b.add(x, x))
        with b.if_(c2):
            b.assign("r", b.add(b.var("r"), y))
        b.output("r")
        return b.finish(), c1, c2

    @pytest.mark.parametrize("v1,v2", [(1, 1), (1, 0), (0, 1), (0, 0)])
    def test_all_four_paths_schedule(self, v1, v2):
        beh, c1, c2 = self.build()
        result = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                   {c1: float(v1), c2: float(v2)})
        # Both conds resolve in the first state.  On the (1,1) path the
        # two adds chain within one 25ns state; a polarity with no work
        # still crosses one (idle or pass-through) state before the
        # second branch resolves.  Every path therefore takes
        # cond + 1 + exit = 3 states.
        assert result.average_length() == pytest.approx(3.0)

    def test_functionality_independent_of_schedule(self):
        from repro.cdfg import execute
        beh, _c1, _c2 = self.build()
        assert execute(beh, {"x": 5, "y": 25}).outputs["r"] == 35
        assert execute(beh, {"x": 5, "y": 5}).outputs["r"] == 10
        assert execute(beh, {"x": 15, "y": 25}).outputs["r"] == 25
        assert execute(beh, {"x": 15, "y": 5}).outputs["r"] == 0


class TestGuardedMemory:
    def test_conditional_store_schedules_and_runs(self):
        from repro.cdfg import execute
        b = BehaviorBuilder("condstore")
        x = b.input("x")
        b.array("m", 4)
        c = b.gt(x, b.const(0))
        with b.if_(c):
            b.store("m", b.const(0), x)
        b.output("x")
        beh = b.finish()
        result = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                   {c: 0.5})
        # cond state + (p=0.5) store state + exit.
        assert result.average_length() == pytest.approx(2.5)
        assert execute(beh, {"x": 7}).arrays["m"][0] == 7
        assert execute(beh, {"x": -7}).arrays["m"][0] == 0


class TestNestedIfSchedules:
    def test_nested_branching_lengths(self):
        b = BehaviorBuilder("nested")
        x = b.input("x")
        c1 = b.lt(x, b.const(100))
        with b.if_(c1):
            c2 = b.lt(x, b.const(10))
            with b.if_(c2):
                b.assign("r", b.mul(x, x))
                b.otherwise()
                b.assign("r", b.add(x, x))
            b.otherwise()
            b.assign("r", b.sub(x, b.const(1)))
        b.output("r")
        beh = b.finish()
        # P(c1)=1, P(c2)=1: c1 state, c2 state, mul state, exit = 4.
        got = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                {c1: 1.0, c2: 1.0}).average_length()
        assert got == pytest.approx(4.0)
        # P(c1)=0: c1 state, sub state, exit = 3.
        got = schedule_behavior(beh, LIB, FULL, SchedConfig(),
                                {c1: 0.0, c2: 1.0}).average_length()
        assert got == pytest.approx(3.0)

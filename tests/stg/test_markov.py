"""STG model and Markov analysis tests."""

import pytest

from repro.errors import MarkovError, StgError
from repro.stg import (Stg, average_schedule_length, expected_visits,
                       simulate, state_probabilities, throughput)


def linear_stg(n):
    """entry -> s1 -> ... -> exit, all probability 1."""
    stg = Stg("linear")
    ids = [stg.add_state(label=f"s{i}") for i in range(n)]
    for a, b in zip(ids, ids[1:]):
        stg.add_transition(a, b, 1.0)
    stg.entry, stg.exit = ids[0], ids[-1]
    return stg


def geometric_loop(p_continue):
    """entry -> body (loops with prob p) -> exit."""
    stg = Stg("loop")
    entry = stg.add_state(label="entry")
    body = stg.add_state(label="body")
    exit_ = stg.add_state(label="exit")
    stg.add_transition(entry, body, 1.0)
    stg.add_transition(body, body, p_continue, "continue")
    stg.add_transition(body, exit_, 1.0 - p_continue, "exit")
    stg.entry, stg.exit = entry, exit_
    return stg


class TestBasics:
    def test_linear_length(self):
        assert average_schedule_length(linear_stg(5)) == pytest.approx(5.0)

    def test_single_state(self):
        stg = Stg()
        s = stg.add_state()
        stg.entry = stg.exit = s
        assert average_schedule_length(stg) == pytest.approx(1.0)

    def test_geometric_loop_expected_visits(self):
        # E[visits to body] = 1/(1-p)
        stg = geometric_loop(0.9)
        visits = expected_visits(stg)
        assert visits[1] == pytest.approx(10.0)
        assert average_schedule_length(stg) == pytest.approx(12.0)

    def test_state_probabilities_sum_to_one(self):
        probs = state_probabilities(geometric_loop(0.75))
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_throughput_is_inverse_length(self):
        stg = linear_stg(4)
        assert throughput(stg) == pytest.approx(0.25)

    def test_branching(self):
        # entry -> {fast path 1 state w.p. 0.5, slow path 3 states} -> exit
        stg = Stg("branch")
        entry = stg.add_state()
        fast = stg.add_state()
        s1, s2, s3 = (stg.add_state() for _ in range(3))
        exit_ = stg.add_state()
        stg.add_transition(entry, fast, 0.5)
        stg.add_transition(entry, s1, 0.5)
        stg.add_transition(s1, s2, 1.0)
        stg.add_transition(s2, s3, 1.0)
        stg.add_transition(fast, exit_, 1.0)
        stg.add_transition(s3, exit_, 1.0)
        stg.entry, stg.exit = entry, exit_
        # E = 1 + 0.5*1 + 0.5*3 + 1 = 4
        assert average_schedule_length(stg) == pytest.approx(4.0)


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        stg.add_transition(a, b, 0.4)
        stg.entry, stg.exit = a, b
        with pytest.raises(StgError):
            stg.validate()

    def test_exit_must_have_no_out_edges(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        stg.add_transition(a, b, 1.0)
        stg.add_transition(b, a, 1.0)
        stg.entry, stg.exit = a, b
        with pytest.raises(StgError):
            stg.validate()

    def test_unreachable_state_rejected(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        stg.add_state()  # orphan
        stg.add_transition(a, b, 1.0)
        stg.entry, stg.exit = a, b
        with pytest.raises(StgError):
            stg.validate()

    def test_never_terminating_chain(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        c = stg.add_state()
        stg.add_transition(a, b, 1.0)
        stg.add_transition(b, b, 1.0)  # sink loop, exit unreachable
        stg.add_transition(b, c, 0.0)
        stg.entry, stg.exit = a, c
        with pytest.raises(MarkovError):
            expected_visits(stg)

    def test_bad_probability_rejected(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        with pytest.raises(StgError):
            stg.add_transition(a, b, 1.5)


class TestSimulationAgreement:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.98])
    def test_monte_carlo_matches_markov(self, p):
        stg = geometric_loop(p)
        exact = average_schedule_length(stg)
        est = simulate(stg, runs=4000, seed=7).mean_length
        assert est == pytest.approx(exact, rel=0.08)

    def test_visit_rates_match_probabilities(self):
        stg = geometric_loop(0.8)
        probs = state_probabilities(stg)
        walk = simulate(stg, runs=4000, seed=3)
        for sid, p_exact in probs.items():
            assert walk.probability_of(sid) == pytest.approx(
                p_exact, abs=0.03)


class TestFig1cReconstruction:
    """A hand reconstruction of the paper's Figure 1(c) STG for TEST1.

    Branch probabilities: loop closes w.p. 0.98, `if (i < c1)` taken
    w.p. 0.37.  The paper reports P_S0=0.008 ... P_S5=0.404 and an
    average schedule length of 119.11 cycles; our reconstruction should
    land near those (exact topology of the exit path is not published).
    """

    def build(self):
        stg = Stg("test1_fig1c")
        s = {name: stg.add_state(label=name) for name in
             ["S0", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"]}
        p_close, p_take = 0.98, 0.37
        stg.add_transition(s["S0"], s["S1"], 1.0)
        stg.add_transition(s["S1"], s["S2"], p_close * p_take)
        stg.add_transition(s["S1"], s["S3"], p_close * (1 - p_take))
        stg.add_transition(s["S1"], s["S7"], 1 - p_close)
        stg.add_transition(s["S2"], s["S4"], 1.0)
        stg.add_transition(s["S4"], s["S5"], 1.0)
        stg.add_transition(s["S3"], s["S5"], 1.0)
        stg.add_transition(s["S5"], s["S2"], p_close * p_take)
        stg.add_transition(s["S5"], s["S3"], p_close * (1 - p_take))
        stg.add_transition(s["S5"], s["S6"], 1 - p_close)
        stg.add_transition(s["S6"], s["S7"], 1.0)
        stg.add_transition(s["S7"], s["S8"], 1.0)
        stg.entry, stg.exit = s["S0"], s["S8"]
        return stg, s

    def test_average_schedule_length_near_paper(self):
        stg, _ = self.build()
        length = average_schedule_length(stg)
        assert length == pytest.approx(119.11, rel=0.05)

    def test_state_probabilities_near_paper(self):
        stg, s = self.build()
        probs = state_probabilities(stg)
        paper = {"S0": 0.008, "S1": 0.008, "S2": 0.153, "S3": 0.259,
                 "S4": 0.149, "S5": 0.404, "S6": 0.003, "S7": 0.008,
                 "S8": 0.008}
        for name, expected in paper.items():
            assert probs[s[name]] == pytest.approx(expected, abs=0.02), name

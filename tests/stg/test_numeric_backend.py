"""Numeric backend: blocked solves, vectorized walks, bit-identity.

The batched backend is an optimization, never an approximation: every
stacked LAPACK solve, the vectorized power accumulation and the
cumulative-row walk sampler must reproduce the scalar path to the last
bit (the repo's standing gating contract; see docs/performance.md).
"""

import random

import numpy as np
import pytest

from repro.errors import ConfigError, MarkovError
from repro.numeric import (BATCHED, SCALAR, BatchedBackend, ScalarBackend,
                           batching_available, get_backend,
                           resolve_backend, set_backend, use_backend)
from repro.numeric.sim import simulate_batched
from repro.numeric.solver import (assemble_dense, group_by_size,
                                  negative, solve_dense_single,
                                  solve_dense_stack)
from repro.stg import (Stg, average_schedule_length, expected_visits,
                       simulate)
from repro.stg.markov import (build_chain_system, expected_visits_many,
                              fragment_visits, solve_systems)
from repro.stg.simulate import walk_once

pytestmark = pytest.mark.skipif(not batching_available(),
                                reason="numpy batching unavailable")


def linear_stg(n, name="linear"):
    stg = Stg(name)
    ids = [stg.add_state(label=f"s{i}") for i in range(n)]
    for a, b in zip(ids, ids[1:]):
        stg.add_transition(a, b, 1.0)
    stg.entry, stg.exit = ids[0], ids[-1]
    return stg


def geometric_loop(p_continue, name="loop"):
    stg = Stg(name)
    entry = stg.add_state(label="entry")
    body = stg.add_state(label="body")
    exit_ = stg.add_state(label="exit")
    stg.add_transition(entry, body, 1.0)
    stg.add_transition(body, body, p_continue, "continue")
    stg.add_transition(body, exit_, 1.0 - p_continue, "exit")
    stg.entry, stg.exit = entry, exit_
    return stg


def nonterminating_stg():
    """body loops forever with probability 1: singular system."""
    stg = Stg("forever")
    entry = stg.add_state(label="entry")
    body = stg.add_state(label="body")
    exit_ = stg.add_state(label="exit")
    stg.add_transition(entry, body, 1.0)
    stg.add_transition(body, body, 1.0)
    stg.add_transition(body, exit_, 0.0)
    stg.entry, stg.exit = entry, exit_
    return stg


class TestResolution:
    def test_default_is_scalar(self):
        assert isinstance(resolve_backend(None), ScalarBackend)
        assert isinstance(resolve_backend(""), ScalarBackend)
        assert isinstance(resolve_backend(SCALAR), ScalarBackend)

    def test_batched_resolves(self):
        assert isinstance(resolve_backend(BATCHED), BatchedBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend("quantum")

    def test_set_backend_accepts_names_and_instances(self):
        original = get_backend()
        try:
            assert set_backend(BATCHED).batched
            mine = ScalarBackend()
            assert set_backend(mine) is mine
        finally:
            set_backend(original)

    def test_use_backend_restores(self):
        before = get_backend()
        with use_backend(BATCHED):
            assert get_backend().batched
        assert get_backend() is before


class TestStackedSolve:
    def test_stack_bit_identical_to_individual_solves(self):
        """One (k, n, n) gesv call == k separate (n, n) calls, bit for
        bit (numpy loops the same LAPACK routine per stack item)."""
        rng = np.random.default_rng(7)
        stgs = [geometric_loop(p, name=f"g{i}")
                for i, p in enumerate(rng.uniform(0.05, 0.95, size=9))]
        systems = [build_chain_system(stg) for stg in stgs]
        stacked = solve_dense_stack(systems)
        for system, got in zip(systems, stacked):
            a = assemble_dense(system)
            lone = np.linalg.solve(a, system.e)
            assert got.tobytes() == lone.tobytes()

    def test_single_solve_bit_identical_to_scalar(self):
        """The lean size-singleton path (transposed fill, cached
        identity) must match the scalar interior bit for bit."""
        rng = np.random.default_rng(11)
        for i, p in enumerate(rng.uniform(0.05, 0.95, size=12)):
            system = build_chain_system(geometric_loop(p, name=f"s{i}"))
            lone = np.linalg.solve(assemble_dense(system), system.e)
            assert solve_dense_single(system).tobytes() == lone.tobytes()

    def test_negative_matches_ufunc_predicate(self):
        """`negative` is exactly `np.any(v < -1e-6)`, NaN included."""
        cases = [np.array([0.5, 1.0]),
                 np.array([0.5, -1e-7]),       # inside tolerance
                 np.array([0.5, -1e-3]),       # genuine negative
                 np.array([np.nan, 0.5]),      # NaN compares False
                 np.array([np.nan, -1e-3]),    # mixed NaN + negative
                 np.zeros(0),
                 np.random.default_rng(3).uniform(
                     -1e-5, 1e-5, size=200)]   # large-array branch
        for v in cases:
            assert negative(v) == bool(np.any(v < -1e-6))

    def test_two_system_flush_matches_grouped_path(self):
        """The span-free <=2-system fast path returns the same results
        and counters as the grouped path (which a traced run takes)."""
        from repro.obs.trace import Tracer
        from repro.stg import markov
        pairs = [
            [build_chain_system(geometric_loop(0.3, name="a")),
             build_chain_system(geometric_loop(0.7, name="b"))],
            [build_chain_system(geometric_loop(0.4, name="c")),
             build_chain_system(linear_stg(6, name="d"))],
            [build_chain_system(nonterminating_stg()),
             build_chain_system(linear_stg(3, name="e"))],
        ]
        for systems in pairs:
            fast = BatchedBackend()
            fast_out = fast.solve_systems(systems)
            slow = BatchedBackend()
            previous = markov._TRACER
            try:
                markov.set_tracer(Tracer())
                slow_out = slow.solve_systems(systems)
            finally:
                markov.set_tracer(previous)
            for f, s in zip(fast_out, slow_out):
                if isinstance(f, MarkovError):
                    assert str(f) == str(s)
                else:
                    assert f.tobytes() == s.tobytes()
            assert fast.stacked_calls == slow.stacked_calls
            assert fast.single_solves == slow.single_solves
            assert fast.solo_solves == slow.solo_solves

    def test_backend_visits_identical(self):
        stgs = [linear_stg(4), geometric_loop(0.9),
                geometric_loop(0.25), linear_stg(7)]
        scalar = [expected_visits(stg) for stg in stgs]
        with use_backend(BATCHED):
            batched = expected_visits_many(stgs)
        assert scalar == batched  # same keys, same float bits

    def test_group_by_size_partitions_everything(self):
        systems = [build_chain_system(linear_stg(n))
                   for n in (3, 5, 3, 9, 5, 3)]
        dense, sparse = group_by_size(systems)
        assert sparse == []
        flat = sorted(i for idxs in dense.values() for i in idxs)
        assert flat == list(range(len(systems)))
        assert sorted(dense) == [2, 4, 8]   # transient states (n - 1)

    def test_singular_member_is_isolated(self):
        """A non-terminating chain inside a stack must not poison its
        batchmates, and must carry the scalar path's exact error."""
        good = geometric_loop(0.5, name="good")
        bad = nonterminating_stg()
        systems = [build_chain_system(good), build_chain_system(bad),
                   build_chain_system(linear_stg(3, name="lin"))]
        with use_backend(BATCHED):
            solved = solve_systems(systems)
        with pytest.raises(MarkovError) as scalar_err:
            expected_visits(bad)
        assert isinstance(solved[1], MarkovError)
        assert str(solved[1]) == str(scalar_err.value)
        for i in (0, 2):
            assert isinstance(solved[i], np.ndarray)
        # the healthy members match their scalar solves exactly
        with use_backend(BATCHED):
            assert expected_visits(good) == \
                expected_visits_many([good])[0]

    def test_expected_visits_many_raises_in_list_order(self):
        with use_backend(BATCHED):
            with pytest.raises(MarkovError, match="forever"):
                expected_visits_many([geometric_loop(0.5),
                                      nonterminating_stg(),
                                      linear_stg(2)])

    def test_fragment_visits_unchanged_by_backend(self):
        stg = geometric_loop(0.8)
        sources = {stg.entry: 1.0}
        scalar = fragment_visits(stg, sources)
        with use_backend(BATCHED):
            batched = fragment_visits(stg, sources)
        assert scalar == batched

    def test_counters_accumulate(self):
        backend = BatchedBackend()
        original = get_backend()
        try:
            set_backend(backend)
            expected_visits_many([linear_stg(4), linear_stg(4),
                                  geometric_loop(0.5)])
        finally:
            set_backend(original)
        flushes, systems = backend.snapshot()
        assert flushes == 1
        assert systems == 3
        assert backend.max_batch == 3      # one flush carried all three
        assert backend.stacked_calls == 1  # the same-size pair
        assert backend.single_solves == 1  # the size-singleton loop


class TestWalkOnce:
    def _reference_walk(self, stg, rng):
        """The pre-cumulative-table sampler, kept as the oracle."""
        path = [stg.entry]
        sid = stg.entry
        while sid != stg.exit:
            edges = stg.out_edges(sid)
            total = sum(t.prob for t in edges)
            r = rng.random() * total
            acc = 0.0
            nxt = edges[-1].dst
            for t in edges:
                acc += t.prob
                if r < acc:
                    nxt = t.dst
                    break
            sid = nxt
            path.append(sid)
        return path

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_bisect_sampler_matches_linear_scan(self, p):
        """Same RNG stream, same path: the cumulative-row bisect picks
        the same edge as the scalar scan on every step."""
        stg = geometric_loop(p)
        for seed in range(20):
            got = walk_once(stg, random.Random(seed))
            want = self._reference_walk(stg, random.Random(seed))
            assert got == want

    def test_simulate_deterministic(self):
        stg = geometric_loop(0.7)
        a = simulate(stg, runs=50, seed=3)
        b = simulate(stg, runs=50, seed=3)
        assert a.mean_length == b.mean_length
        assert a.state_visit_rate == b.state_visit_rate


class TestSimulateBatched:
    def test_mean_close_to_markov(self):
        stg = geometric_loop(0.8)
        exact = average_schedule_length(stg)
        walk = simulate_batched(stg, runs=4000, seed=0)
        assert walk.mean_length == pytest.approx(exact, rel=0.1)

    def test_matches_scalar_statistics(self):
        stg = geometric_loop(0.5)
        scalar = simulate(stg, runs=3000, seed=1)
        batched = simulate_batched(stg, runs=3000, seed=1)
        # different RNG streams: statistically equivalent, not
        # bit-identical (documented in docs/performance.md)
        assert batched.mean_length == pytest.approx(scalar.mean_length,
                                                    rel=0.1)

    def test_empty_and_degenerate(self):
        stg = linear_stg(3)
        assert simulate_batched(stg, runs=0, seed=0).runs == 0
        one = Stg("one")
        s = one.add_state()
        one.entry = one.exit = s
        assert simulate_batched(one, runs=8, seed=0).mean_length == 1.0

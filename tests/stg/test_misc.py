"""STG miscellany: DOT export, simulation API, edge accessors."""

import pytest

from repro.errors import StgError
from repro.stg import ScheduledOp, Stg, simulate, walk_once


def branchy():
    stg = Stg("demo")
    entry = stg.add_state([ScheduledOp(7)], label="start")
    left = stg.add_state(label="L")
    right = stg.add_state(label="R")
    exit_ = stg.add_state(label="end")
    stg.add_transition(entry, left, 0.25, "c")
    stg.add_transition(entry, right, 0.75, "!c")
    stg.add_transition(left, exit_, 1.0)
    stg.add_transition(right, exit_, 1.0)
    stg.entry, stg.exit = entry, exit_
    return stg, (entry, left, right, exit_)


class TestAccessors:
    def test_in_out_edges(self):
        stg, (entry, left, right, exit_) = branchy()
        assert {t.dst for t in stg.out_edges(entry)} == {left, right}
        assert {t.src for t in stg.in_edges(exit_)} == {left, right}

    def test_len_and_ids(self):
        stg, _ = branchy()
        assert len(stg) == 4
        assert stg.state_ids() == [0, 1, 2, 3]

    def test_unknown_state_in_transition(self):
        stg, _ = branchy()
        with pytest.raises(StgError):
            stg.add_transition(0, 99, 1.0)


class TestDot:
    def test_dot_contains_labels_and_probs(self):
        stg, _ = branchy()
        dot = stg.to_dot()
        assert dot.startswith('digraph "demo"')
        assert "start" in dot
        assert "0.25" in dot
        assert "c (0.25)" in dot
        # Ops rendered with iteration tags.
        assert "7@0" in dot

    def test_entry_exit_shapes(self):
        stg, _ = branchy()
        dot = stg.to_dot()
        assert dot.count("doublecircle") == 2


class TestWalks:
    def test_walk_goes_entry_to_exit(self):
        stg, (entry, *_rest, exit_) = branchy()
        import random
        path = walk_once(stg, random.Random(0))
        assert path[0] == entry
        assert path[-1] == exit_
        assert len(path) == 3

    def test_simulation_statistics(self):
        stg, _ = branchy()
        res = simulate(stg, runs=500, seed=1)
        assert res.runs == 500
        assert res.mean_length == pytest.approx(3.0)
        assert res.min_length == res.max_length == 3
        # Branch visit rates follow the probabilities.
        assert res.probability_of(1) == pytest.approx(0.25 / 3,
                                                      abs=0.02)

    def test_walk_detects_dead_end(self):
        stg = Stg()
        a = stg.add_state()
        b = stg.add_state()
        c = stg.add_state()
        stg.add_transition(a, b, 1.0)  # b has no way out, exit is c
        stg.entry, stg.exit = a, c
        import random
        with pytest.raises(StgError):
            walk_once(stg, random.Random(0))


class TestRowDrift:
    """Regression: rows whose probability mass drifts off 1 by float
    rounding are sampled against the actual mass (renormalized), while a
    genuine modelling defect still raises instead of silently funnelling
    the missing mass into the last edge."""

    def _drifting(self, p_left, p_right):
        stg = Stg("drift")
        entry = stg.add_state()
        left = stg.add_state()
        right = stg.add_state()
        exit_ = stg.add_state()
        stg.add_transition(entry, left, p_left)
        stg.add_transition(entry, right, p_right)
        stg.add_transition(left, exit_, 1.0)
        stg.add_transition(right, exit_, 1.0)
        stg.entry, stg.exit = entry, exit_
        return stg

    def test_tolerated_drift_walks_and_renormalizes(self):
        import random
        stg = self._drifting(0.25, 0.7495)   # row mass 0.9995
        rng = random.Random(2)
        lefts = 0
        for _ in range(4000):
            path = walk_once(stg, rng)
            assert path[0] == stg.entry and path[-1] == stg.exit
            lefts += path[1] == 1
        assert lefts / 4000 == pytest.approx(0.25 / 0.9995, abs=0.02)

    def test_overshoot_within_tolerance_walks(self):
        import random
        stg = self._drifting(0.5, 0.5004)
        path = walk_once(stg, random.Random(3))
        assert path[-1] == stg.exit

    def test_real_mass_defect_raises(self):
        import random
        stg = self._drifting(0.45, 0.45)
        with pytest.raises(StgError):
            walk_once(stg, random.Random(0))

"""Behavior-level DOT export and region API tests."""

import pytest

from repro.cdfg import BehaviorBuilder, behavior_to_dot
from repro.cdfg.regions import BlockRegion, LoopRegion, SeqRegion
from repro.errors import CdfgError
from repro.lang import compile_source


@pytest.fixture()
def looped():
    return compile_source("""
        proc p(in n, array x[8], out s) {
            var acc = 0;
            var i = 0;
            while (i < n) {
                if (x[i] > 0) { acc = acc + x[i]; }
                i = i + 1;
            }
            s = acc;
        }
    """)


class TestBehaviorDot:
    def test_loop_cluster_rendered(self, looped):
        dot = behavior_to_dot(looped)
        assert "subgraph cluster_" in dot
        assert "loop L1" in dot
        assert dot.count("style=dashed") >= 1  # control edges / blocks

    def test_all_nodes_present(self, looped):
        dot = behavior_to_dot(looped)
        for nid in looped.graph.node_ids():
            assert f"n{nid}" in dot

    def test_order_edges_dotted(self):
        b = BehaviorBuilder("mem")
        b.array("m", 4)
        b.store("m", b.const(0), b.const(1))
        b.assign("v", b.load("m", b.const(0)))
        b.output("v")
        beh = b.finish()
        assert "style=dotted" in behavior_to_dot(beh)


class TestRegionApi:
    def test_walk_order_is_preorder(self, looped):
        kinds = [type(r).__name__ for r in looped.region.walk()]
        assert kinds[0] == "SeqRegion"
        assert "LoopRegion" in kinds

    def test_loops_and_lookup(self, looped):
        loops = looped.loops()
        assert [lp.name for lp in loops] == ["L1"]
        assert looped.loop("L1") is loops[0]
        with pytest.raises(CdfgError):
            looped.loop("nope")

    def test_owner_block(self, looped):
        loop = looped.loop("L1")
        body_block = next(r for r in loop.body.walk()
                          if isinstance(r, BlockRegion))
        some_node = body_block.nodes[0]
        assert looped.owner_block(some_node) is body_block
        assert looped.owner_block(loop.cond) is None  # cond section

    def test_join_of(self, looped):
        loop = looped.loop("L1")
        assert loop.join_of("i") in looped.graph
        with pytest.raises(CdfgError):
            loop.join_of("ghost")

    def test_region_node_partition(self, looped):
        claimed = looped.region_node_ids()
        free = looped.free_node_ids()
        assert claimed.isdisjoint(free)
        assert claimed | free == set(looped.graph.nodes)

"""Builder + interpreter: end-to-end behavioral execution."""

import math

import pytest

from repro.cdfg import BehaviorBuilder, OpKind, execute, wrap
from repro.errors import CdfgError, InterpError, InterpLimitError


def build_gcd():
    b = BehaviorBuilder("gcd")
    b.input("a")
    b.input("b")
    with b.loop("L0", carried=["a", "b"]):
        b.loop_cond(b.ne(b.var("a"), b.var("b")))
        c = b.lt(b.var("a"), b.var("b"))
        with b.if_(c):
            b.assign("b", b.sub(b.var("b"), b.var("a")))
            b.otherwise()
            b.assign("a", b.sub(b.var("a"), b.var("b")))
    b.output("a")
    return b.finish()


def build_test1():
    """The paper's Fig. 1(a) TEST1 fragment."""
    b = BehaviorBuilder("test1")
    b.input("c1")
    b.input("c2")
    b.array("x", 256)
    b.assign("i", b.const(0))
    b.assign("a", b.const(0))
    with b.loop("L0", carried=["i", "a"]):
        b.loop_cond(b.gt(b.var("c2"), b.var("i")))
        c = b.lt(b.var("i"), b.var("c1"))
        with b.if_(c):
            t1 = b.add(b.var("a"), b.const(7), name="t1")
            b.assign("a", b.mul(b.const(13), t1))
            b.otherwise()
            b.assign("a", b.add(b.var("a"), b.const(17)))
        b.assign("i", b.add(b.var("i"), b.const(1)))
        b.store("x", b.var("i"), b.var("a"))
    b.output("a")
    return b.finish()


def ref_test1(c1, c2):
    i = a = 0
    x = [0] * 256
    while c2 > i:
        if i < c1:
            a = wrap(13 * wrap(a + 7))
        else:
            a = wrap(a + 17)
        i = i + 1
        x[i] = a
    return a, x


class TestGcd:
    @pytest.mark.parametrize("a,b,expected", [
        (12, 18, 6), (18, 12, 6), (7, 13, 1), (100, 100, 100),
        (1, 999, 1), (36, 48, 12),
    ])
    def test_matches_math_gcd(self, a, b, expected):
        res = execute(build_gcd(), {"a": a, "b": b})
        assert res.outputs["a"] == expected == math.gcd(a, b)

    def test_profile_counts(self):
        res = execute(build_gcd(), {"a": 12, "b": 18})
        # 12,18 -> 12,6 -> 6,6 : two body iterations, three cond checks
        assert res.loop_iterations["L0"] == 2
        beh = build_gcd()
        res = execute(beh, {"a": 12, "b": 18})
        cond = beh.loop("L0").cond
        assert res.cond_counts[cond] == [1, 2]

    def test_zero_iterations(self):
        res = execute(build_gcd(), {"a": 5, "b": 5})
        assert res.outputs["a"] == 5
        assert res.loop_iterations["L0"] == 0


class TestTest1:
    @pytest.mark.parametrize("c1,c2", [(0, 0), (3, 10), (10, 3), (5, 5),
                                       (63, 63)])
    def test_matches_reference(self, c1, c2):
        res = execute(build_test1(), {"c1": c1, "c2": c2})
        a, x = ref_test1(c1, c2)
        assert res.outputs["a"] == a
        assert res.arrays["x"] == x

    def test_branch_probabilities_shape(self):
        """With c1 < c2, the if is taken c1 times out of c2."""
        beh = build_test1()
        res = execute(beh, {"c1": 37, "c2": 100})
        lt_nodes = [n.id for n in beh.graph if n.kind is OpKind.LT]
        assert len(lt_nodes) == 1
        assert res.cond_counts[lt_nodes[0]] == [63, 37]


class TestIfConversion:
    def test_one_sided_if(self):
        b = BehaviorBuilder("oneside")
        b.input("n")
        b.assign("a", b.const(10))
        with b.if_(b.gt(b.var("n"), b.const(0))):
            b.assign("a", b.const(99))
        b.output("a")
        beh = b.finish()
        assert execute(beh, {"n": 1}).outputs["a"] == 99
        assert execute(beh, {"n": 0}).outputs["a"] == 10
        assert execute(beh, {"n": -5}).outputs["a"] == 10

    def test_nested_if(self):
        b = BehaviorBuilder("nested")
        b.input("p")
        b.input("q")
        b.assign("r", b.const(0))
        with b.if_(b.gt(b.var("p"), b.const(0))):
            with b.if_(b.gt(b.var("q"), b.const(0))):
                b.assign("r", b.const(1))
                b.otherwise()
                b.assign("r", b.const(2))
            b.otherwise()
            b.assign("r", b.const(3))
        b.output("r")
        beh = b.finish()
        assert execute(beh, {"p": 1, "q": 1}).outputs["r"] == 1
        assert execute(beh, {"p": 1, "q": 0}).outputs["r"] == 2
        assert execute(beh, {"p": 0, "q": 1}).outputs["r"] == 3

    def test_constant_assignment_in_both_branches(self):
        b = BehaviorBuilder("consts")
        b.input("c")
        with b.if_(b.var("c")):
            b.assign("v", b.const(5))
            b.otherwise()
            b.assign("v", b.const(7))
        b.output("v")
        beh = b.finish()
        assert execute(beh, {"c": 1}).outputs["v"] == 5
        assert execute(beh, {"c": 0}).outputs["v"] == 7


class TestLoops:
    def test_nested_loops(self):
        b = BehaviorBuilder("nested_loops")
        b.input("n")
        b.assign("total", b.const(0))
        b.assign("i", b.const(0))
        with b.loop("outer", carried=["i", "total"]):
            b.loop_cond(b.lt(b.var("i"), b.var("n")))
            b.assign("j", b.const(0))
            with b.loop("inner", carried=["j", "total"]):
                b.loop_cond(b.lt(b.var("j"), b.var("i")))
                b.assign("total", b.add(b.var("total"), b.const(1)))
                b.assign("j", b.add(b.var("j"), b.const(1)))
            b.assign("i", b.add(b.var("i"), b.const(1)))
        b.output("total")
        beh = b.finish()
        # total = sum_{i<n} i = n(n-1)/2
        for n in (0, 1, 2, 5, 8):
            assert execute(beh, {"n": n}).outputs["total"] == n * (n - 1) // 2

    def test_constant_trip_count_recorded(self):
        b = BehaviorBuilder("tc")
        b.assign("i", b.const(0))
        b.assign("s", b.const(0))
        with b.loop("L", carried=["i", "s"], trip_count=8):
            b.loop_cond(b.lt(b.var("i"), b.const(8)))
            b.assign("s", b.add(b.var("s"), b.var("i")))
            b.assign("i", b.add(b.var("i"), b.const(1)))
        b.output("s")
        beh = b.finish()
        assert beh.loop("L").trip_count == 8
        assert execute(beh).outputs["s"] == 28

    def test_runaway_loop_hits_step_limit(self):
        b = BehaviorBuilder("forever")
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i"]):
            b.loop_cond(b.ge(b.var("i"), b.const(0)))
            b.assign("i", b.add(b.var("i"), b.const(0)))
        b.output("i")
        beh = b.finish()
        with pytest.raises(InterpLimitError):
            execute(beh, max_steps=1000)


class TestMemory:
    def test_store_then_load_ordering(self):
        b = BehaviorBuilder("mem")
        b.array("m", 8)
        b.store("m", b.const(3), b.const(42))
        b.assign("v", b.load("m", b.const(3)))
        b.store("m", b.const(3), b.const(7))
        b.output("v")
        beh = b.finish()
        res = execute(beh)
        assert res.outputs["v"] == 42
        assert res.arrays["m"][3] == 7

    def test_array_initializer(self):
        b = BehaviorBuilder("mem2")
        b.array("m", 4)
        b.assign("v", b.load("m", b.const(1)))
        b.output("v")
        beh = b.finish()
        assert execute(beh, arrays={"m": [9, 8, 7, 6]}).outputs["v"] == 8

    def test_out_of_bounds_raises(self):
        b = BehaviorBuilder("oob")
        b.input("i")
        b.array("m", 4)
        b.assign("v", b.load("m", b.var("i")))
        b.output("v")
        beh = b.finish()
        with pytest.raises(InterpError):
            execute(beh, {"i": 4})


class TestBuilderErrors:
    def test_read_before_assign(self):
        b = BehaviorBuilder("bad")
        with pytest.raises(CdfgError):
            b.var("ghost")

    def test_missing_loop_cond(self):
        b = BehaviorBuilder("bad")
        b.assign("i", b.const(0))
        with pytest.raises(CdfgError):
            with b.loop("L", carried=["i"]):
                b.assign("i", b.inc(b.var("i")))

    def test_undeclared_array(self):
        b = BehaviorBuilder("bad")
        with pytest.raises(CdfgError):
            b.load("nope", b.const(0))

    def test_otherwise_outside_if(self):
        b = BehaviorBuilder("bad")
        with pytest.raises(CdfgError):
            b.otherwise()

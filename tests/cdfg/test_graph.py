"""Graph API unit tests: edges, removal, topo order, copy, DOT."""

import pytest

from repro.cdfg import (Graph, GuardAnalysis, OpKind, conflicts,
                        direct_guard, graph_to_dot, implies)
from repro.errors import CdfgError


def small_graph():
    g = Graph("t")
    a = g.add_node(OpKind.INPUT, var="a")
    b = g.add_node(OpKind.INPUT, var="b")
    add = g.add_node(OpKind.ADD)
    g.set_data_edge(a, add, 0)
    g.set_data_edge(b, add, 1)
    return g, a, b, add


class TestDataEdges:
    def test_inputs_ordered_by_port(self):
        g, a, b, add = small_graph()
        assert g.data_inputs(add) == [a, b]

    def test_set_edge_replaces_port(self):
        g, a, b, add = small_graph()
        g.set_data_edge(a, add, 1)
        assert g.data_inputs(add) == [a, a]
        assert (add, 1) not in g.data_users(b)

    def test_missing_port_raises(self):
        g, a, b, add = small_graph()
        g.remove_data_edge(add, 0)
        with pytest.raises(CdfgError):
            g.data_inputs(add)

    def test_replace_uses(self):
        g, a, b, add = small_graph()
        c = g.add_node(OpKind.CONST, value=5)
        g.replace_uses(a, c)
        assert g.data_inputs(add) == [c, b]
        assert g.data_users(a) == []

    def test_edge_from_output_node_rejected(self):
        g, a, b, add = small_graph()
        out = g.add_node(OpKind.OUTPUT, var="r")
        g.set_data_edge(add, out, 0)
        sink = g.add_node(OpKind.ADD)
        with pytest.raises(CdfgError):
            g.set_data_edge(out, sink, 0)  # OUTPUT has no output


class TestRemoval:
    def test_remove_node_cleans_edges(self):
        g, a, b, add = small_graph()
        g.remove_node(add)
        assert add not in g
        assert g.data_users(a) == []
        assert g.data_users(b) == []

    def test_remove_with_control_edges(self):
        g, a, b, add = small_graph()
        cond = g.add_node(OpKind.LT)
        g.set_data_edge(a, cond, 0)
        g.set_data_edge(b, cond, 1)
        g.add_control_edge(cond, add, True)
        g.remove_node(cond)
        assert g.control_inputs(add) == []

    def test_unknown_node_raises(self):
        g, *_ = small_graph()
        with pytest.raises(CdfgError):
            g.node(999)


class TestTopoOrder:
    def test_respects_dependencies(self):
        g, a, b, add = small_graph()
        order = g.topo_order()
        assert order.index(a) < order.index(add)
        assert order.index(b) < order.index(add)

    def test_subset_ignores_external_edges(self):
        g, a, b, add = small_graph()
        assert g.topo_order({add}) == [add]

    def test_cycle_detected(self):
        g = Graph()
        x = g.add_node(OpKind.ADD)
        y = g.add_node(OpKind.ADD)
        c = g.add_node(OpKind.CONST, value=0)
        g.set_data_edge(y, x, 0)
        g.set_data_edge(c, x, 1)
        g.set_data_edge(x, y, 0)
        g.set_data_edge(c, y, 1)
        with pytest.raises(CdfgError):
            g.topo_order()

    def test_deterministic_tie_break(self):
        g = Graph()
        nodes = [g.add_node(OpKind.CONST, value=i) for i in range(5)]
        assert g.topo_order() == nodes


class TestCopy:
    def test_copy_preserves_ids_and_edges(self):
        g, a, b, add = small_graph()
        g.add_control_edge(a, add, True)
        g.add_order_edge(a, b)
        h = g.copy()
        assert h.data_inputs(add) == [a, b]
        assert h.control_inputs(add) == [(a, True)]
        assert h.order_preds(b) == {a}

    def test_copy_is_independent(self):
        g, a, b, add = small_graph()
        h = g.copy()
        h.remove_node(add)
        assert add in g

    def test_fresh_ids_continue_after_copy(self):
        g, *_ = small_graph()
        h = g.copy()
        new = h.add_node(OpKind.CONST, value=1)
        assert new not in g


class TestGuardAnalysis:
    def test_conflicting_polarities_are_mutex(self):
        g = Graph()
        cond = g.add_node(OpKind.LT)
        x = g.add_node(OpKind.CONST, value=1)
        g.set_data_edge(x, cond, 0)
        g.set_data_edge(x, cond, 1)
        t = g.add_node(OpKind.ADD)
        e = g.add_node(OpKind.SUB)
        for n in (t, e):
            g.set_data_edge(x, n, 0)
            g.set_data_edge(x, n, 1)
        g.add_control_edge(cond, t, True)
        g.add_control_edge(cond, e, False)
        ga = GuardAnalysis(g)
        assert ga.mutually_exclusive(t, e)
        assert not ga.mutually_exclusive(t, cond)

    def test_effective_guard_flows_through_data(self):
        g = Graph()
        cond = g.add_node(OpKind.LT)
        x = g.add_node(OpKind.CONST, value=1)
        g.set_data_edge(x, cond, 0)
        g.set_data_edge(x, cond, 1)
        guarded = g.add_node(OpKind.ADD)
        g.set_data_edge(x, guarded, 0)
        g.set_data_edge(x, guarded, 1)
        g.add_control_edge(cond, guarded, True)
        consumer = g.add_node(OpKind.NEG)
        g.set_data_edge(guarded, consumer, 0)
        ga = GuardAnalysis(g)
        assert (cond, True) in ga.effective_guard(consumer)

    def test_join_weakens_guards(self):
        g = Graph()
        cond = g.add_node(OpKind.LT)
        x = g.add_node(OpKind.CONST, value=1)
        g.set_data_edge(x, cond, 0)
        g.set_data_edge(x, cond, 1)
        t = g.add_node(OpKind.COPY)
        e = g.add_node(OpKind.COPY)
        g.set_data_edge(x, t, 0)
        g.set_data_edge(x, e, 0)
        g.add_control_edge(cond, t, True)
        g.add_control_edge(cond, e, False)
        join = g.add_node(OpKind.JOIN)
        g.set_data_edge(t, join, 0)
        g.set_data_edge(e, join, 1)
        ga = GuardAnalysis(g)
        assert ga.effective_guard(join) == frozenset()

    def test_guard_helpers(self):
        a = frozenset({(1, True), (2, False)})
        b = frozenset({(1, False)})
        c = frozenset({(1, True)})
        assert conflicts(a, b)
        assert not conflicts(a, c)
        assert implies(a, c)
        assert not implies(c, a)


class TestDot:
    def test_dot_mentions_all_nodes_and_styles(self):
        g, a, b, add = small_graph()
        cond = g.add_node(OpKind.LT)
        g.set_data_edge(a, cond, 0)
        g.set_data_edge(b, cond, 1)
        g.add_control_edge(cond, add, False)
        dot = graph_to_dot(g)
        for nid in (a, b, add, cond):
            assert f"n{nid}" in dot
        assert "style=dashed" in dot     # control edge
        assert 'label="-"' in dot        # negative polarity

    def test_direct_guard(self):
        g, a, b, add = small_graph()
        cond = g.add_node(OpKind.LT)
        g.set_data_edge(a, cond, 0)
        g.set_data_edge(b, cond, 1)
        g.add_control_edge(cond, add, True)
        assert direct_guard(g, add) == frozenset({(cond, True)})

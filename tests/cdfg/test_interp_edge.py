"""Interpreter edge cases: select, join discipline, traps, validation."""

import pytest

from repro.cdfg import (BehaviorBuilder, OpKind, execute,
                        validate_behavior)
from repro.cdfg.regions import Behavior, BlockRegion, SeqRegion
from repro.errors import CdfgValidationError, InterpError


class TestSelect:
    def test_select_picks_left_when_true(self):
        b = BehaviorBuilder("sel")
        s = b.input("s")
        x = b.input("x")
        y = b.input("y")
        sel = b.op(OpKind.SELECT, x, y, s)
        b.assign("r", sel)
        b.output("r")
        beh = b.finish()
        assert execute(beh, {"s": 1, "x": 10, "y": 20}).outputs["r"] == 10
        assert execute(beh, {"s": 0, "x": 10, "y": 20}).outputs["r"] == 20


class TestJoinDiscipline:
    def test_double_fire_with_different_values_is_an_error(self):
        b = BehaviorBuilder("bad_join")
        x = b.input("x")
        y = b.input("y")
        j = b.graph.add_node(OpKind.JOIN)
        b.graph.set_data_edge(x, j, 0)
        b.graph.set_data_edge(y, j, 1)
        # Place the join in a block manually.
        b._place(j)
        b.assign("r", j)
        b.output("r")
        beh = b.finish()
        with pytest.raises(InterpError):
            execute(beh, {"x": 1, "y": 2})
        # Equal values are tolerated (consistent token).
        assert execute(beh, {"x": 5, "y": 5}).outputs["r"] == 5


class TestTraps:
    def test_division_by_zero(self):
        b = BehaviorBuilder("div")
        x = b.input("x")
        b.assign("r", b.div(x, b.input("y")))
        b.output("r")
        beh = b.finish()
        assert execute(beh, {"x": 7, "y": 2}).outputs["r"] == 3
        with pytest.raises(InterpError):
            execute(beh, {"x": 7, "y": 0})

    def test_mod_semantics_match_c(self):
        b = BehaviorBuilder("mod")
        x = b.input("x")
        y = b.input("y")
        b.assign("r", b.mod(x, y))
        b.output("r")
        beh = b.finish()
        # C-style: truncation toward zero.
        assert execute(beh, {"x": -7, "y": 2}).outputs["r"] == -1
        assert execute(beh, {"x": 7, "y": -2}).outputs["r"] == 1


class TestValidation:
    def test_join_with_one_input_rejected(self):
        b = BehaviorBuilder("j1")
        x = b.input("x")
        j = b.graph.add_node(OpKind.JOIN)
        b.graph.set_data_edge(x, j, 0)
        b._place(j)
        b.assign("r", j)
        b.output("r")
        with pytest.raises(CdfgValidationError):
            b.finish()

    def test_arity_mismatch_rejected(self):
        b = BehaviorBuilder("arity")
        x = b.input("x")
        add = b.graph.add_node(OpKind.ADD)
        b.graph.set_data_edge(x, add, 0)
        b._place(add)
        b.assign("r", add)
        b.output("r")
        with pytest.raises(CdfgValidationError):
            b.finish()

    def test_node_outside_regions_rejected(self):
        b = BehaviorBuilder("orphan")
        x = b.input("x")
        b.assign("r", b.add(x, x))
        b.output("r")
        beh = b.finish()
        orphan = beh.graph.add_node(OpKind.ADD)
        beh.graph.set_data_edge(x, orphan, 0)
        beh.graph.set_data_edge(x, orphan, 1)
        with pytest.raises(CdfgValidationError):
            validate_behavior(beh)

    def test_interface_mismatch_rejected(self):
        b = BehaviorBuilder("iface")
        x = b.input("x")
        b.assign("r", b.add(x, x))
        b.output("r")
        beh = b.finish()
        beh.inputs.append("ghost")
        with pytest.raises(CdfgValidationError):
            validate_behavior(beh)

    def test_loop_without_update_port_rejected(self):
        from repro.cdfg.regions import LoopRegion, LoopVar
        b = BehaviorBuilder("noupd")
        b.input("n")
        b.assign("i", b.const(0))
        beh_graph = b.graph
        join = beh_graph.add_node(OpKind.JOIN, name="i")
        beh_graph.set_data_edge(b.var("i"), join, 0)
        cond = beh_graph.add_node(OpKind.LT)
        beh_graph.set_data_edge(join, cond, 0)
        beh_graph.set_data_edge(b.var("n"), cond, 1)
        loop = LoopRegion(name="L", loop_vars=[LoopVar("i", join)],
                          cond_nodes=[cond], cond=cond)
        b.behavior.region.children.append(loop)
        b.output("i", join)
        beh = b.behavior
        with pytest.raises(CdfgValidationError):
            validate_behavior(beh)


class TestBehaviorCopy:
    def test_copy_deep_copies_regions(self):
        b = BehaviorBuilder("cp")
        b.input("n")
        b.assign("i", b.const(0))
        with b.loop("L", carried=["i"]):
            b.loop_cond(b.lt(b.var("i"), b.var("n")))
            b.assign("i", b.inc(b.var("i")))
        b.output("i")
        beh = b.finish()
        clone = beh.copy()
        clone.loop("L").trip_count = 42
        assert beh.loop("L").trip_count is None
        clone.graph.remove_node(clone.loop("L").cond)
        assert beh.loop("L").cond in beh.graph

    def test_free_node_ids(self):
        b = BehaviorBuilder("free")
        x = b.input("x")
        b.assign("r", b.add(x, b.const(3)))
        b.output("r")
        beh = b.finish()
        free = beh.free_node_ids()
        kinds = {beh.graph.nodes[n].kind for n in free}
        assert kinds == {OpKind.INPUT, OpKind.CONST, OpKind.OUTPUT}

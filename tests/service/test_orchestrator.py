"""Orchestrator tests: serial-equivalence, fault injection, serve.

The load-bearing property: a campaign's merged front is byte-identical
to the serial ``repro explore`` export — on one worker, on two, and
with a worker crashing mid-shard.
"""

import multiprocessing

import pytest

import repro
from repro.errors import ServiceError
from repro.explore.pareto import (DesignMetrics, DesignPoint,
                                  ParetoFront)
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import (JobQueue, JobSpec, JobState, PARETO,
                                expand_shards)
from repro.service.orchestrator import (CRASH_ENV,
                                        CampaignOrchestrator,
                                        OrchestratorConfig,
                                        merge_fronts, serve)

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""
GCD_ALLOC = "cp1=1,e1=1,sb1=2"

SMALL = dict(generations=2, population=4, candidates_per_seed=10,
             iterations=2)
TINY = dict(generations=1, population=4, candidates_per_seed=6,
            iterations=1)


def gcd_spec(knobs=SMALL, **kw):
    return JobSpec(source=GCD, alloc=GCD_ALLOC, **{**knobs, **kw})


def serial_front_json(spec, store):
    """The serial ``repro explore`` reference bytes for a job."""
    pareto = [s for s in expand_shards(spec) if s.cell == PARETO][0]
    result = repro.explore(spec.source, alloc=spec.alloc,
                           config=pareto.explore_config(),
                           store=store)
    assert result.ok
    return result.front.to_json()


def run_campaign(tmp_path, spec, workers, *, name, metrics=None,
                 cancel_first=False):
    queue = JobQueue(tmp_path / f"queue-{name}")
    record = queue.submit(spec)
    orch = CampaignOrchestrator(
        queue, [record], store=tmp_path / f"store-{name}",
        config=OrchestratorConfig(workers=workers, poll=0.02,
                                  lease=5.0),
        metrics=metrics)
    if cancel_first:
        orch.cancel()
    results = orch.run()
    return queue, orch, results[record.job_id]


def assert_no_orphans(orch):
    for proc in orch._procs:
        assert not proc.is_alive()
    assert not [p for p in multiprocessing.active_children()
                if p.name.startswith("repro-worker")]


@pytest.fixture(scope="module")
def gcd_reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("gcd-ref")
    return serial_front_json(gcd_spec(), root / "store")


class TestMergeFronts:
    @staticmethod
    def front(*points, baseline=10.0):
        front = ParetoFront(baseline_length=baseline)
        for fp, objs in points:
            front.add(DesignPoint(
                fingerprint=fp, lineage=(),
                metrics=DesignMetrics(length=objs[0], energy=objs[1],
                                      area=objs[2]),
                objectives=tuple(objs)))
        return front

    def test_union_drops_dominated(self):
        merged = merge_fronts([
            self.front(("a", (1.0, 2.0, 3.0))),
            self.front(("b", (2.0, 1.0, 3.0)),
                       ("c", (3.0, 3.0, 4.0)))])  # c is dominated
        assert {p.fingerprint for p in merged} == {"a", "b"}

    def test_representative_follows_offer_order(self):
        one = self.front(("aaa", (1.0, 1.0, 1.0)))
        two = self.front(("bbb", (1.0, 1.0, 1.0)))
        assert [p.fingerprint for p in merge_fronts([one, two])] \
            == ["aaa"]
        assert [p.fingerprint for p in merge_fronts([two, one])] \
            == ["bbb"]

    def test_rejects_empty_and_mixed_baselines(self):
        with pytest.raises(ServiceError, match="nothing to merge"):
            merge_fronts([ParetoFront(baseline_length=10.0)])
        with pytest.raises(ServiceError, match="different baselines"):
            merge_fronts([self.front(("a", (1.0, 2.0, 3.0))),
                          self.front(("b", (2.0, 1.0, 3.0)),
                                     baseline=11.0)])


class TestSerialEquivalence:
    def test_two_workers_match_serial_gcd(self, tmp_path,
                                          gcd_reference):
        queue, orch, result = run_campaign(tmp_path, gcd_spec(), 2,
                                           name="w2")
        assert result.ok and result.shards == 3
        assert result.front.to_json() == gcd_reference
        # The queue's rehydrated result carries the same bytes.
        rehydrated = queue.result(result.job_id)
        assert rehydrated.front.to_json() == gcd_reference
        assert queue.get(result.job_id).state is JobState.DONE
        assert_no_orphans(orch)

    def test_inline_worker_matches_serial_gcd(self, tmp_path,
                                              gcd_reference):
        _, orch, result = run_campaign(tmp_path, gcd_spec(), 1,
                                       name="w1")
        assert result.ok
        assert result.front.to_json() == gcd_reference
        assert orch._procs == []  # inline mode spawns no processes

    def test_two_workers_match_serial_test2(self, tmp_path):
        from repro.bench import circuit
        bench = circuit("test2")
        alloc = ",".join(f"{k}={v}" for k, v in
                         sorted(bench.allocation.counts.items()))
        spec = JobSpec(source=bench.source, alloc=alloc, **TINY)
        reference = serial_front_json(spec, tmp_path / "ref")
        _, _, result = run_campaign(tmp_path, spec, 2, name="t2")
        assert result.ok
        assert result.front.to_json() == reference


class TestFaultInjection:
    def test_worker_crash_mid_shard_retries_unchanged(
            self, tmp_path, monkeypatch, gcd_reference):
        spec = gcd_spec()
        pareto = [s for s in expand_shards(spec)
                  if s.cell == PARETO][0]
        monkeypatch.setenv(CRASH_ENV, pareto.shard_id)
        metrics = MetricsRegistry()
        queue, orch, result = run_campaign(tmp_path, spec, 2,
                                           name="crash",
                                           metrics=metrics)
        # The shard was attempted, its worker died, the claim was
        # stolen, a replacement respawned, and the retry succeeded —
        # with the merged front unchanged to the byte.
        assert result.ok
        assert result.front.to_json() == gcd_reference
        board = queue.board_root(orch.campaign_id)
        attempts = len(list(
            (board / "attempts").glob(f"{pareto.shard_id}.*")))
        assert attempts >= 2
        assert metrics.value("service.workers_respawned") >= 1
        assert metrics.value("service.steals") >= 1
        assert_no_orphans(orch)

    def test_persistent_crash_fails_job_not_campaign(
            self, tmp_path, monkeypatch):
        """A shard whose every attempt dies exhausts its budget and
        fails its job deterministically; the campaign still ends."""
        spec = gcd_spec(TINY)
        pareto = [s for s in expand_shards(spec)
                  if s.cell == PARETO][0]
        monkeypatch.setenv(CRASH_ENV, pareto.shard_id)
        queue = JobQueue(tmp_path / "queue")
        record = queue.submit(spec)
        orch = CampaignOrchestrator(
            queue, [record], store=tmp_path / "store",
            config=OrchestratorConfig(workers=2, poll=0.02,
                                      lease=5.0, max_attempts=1))
        results = orch.run()
        result = results[record.job_id]
        assert result.state is JobState.FAILED
        assert "gave up after" in result.error
        assert queue.get(record.job_id).state is JobState.FAILED
        with pytest.raises(ServiceError, match="failed"):
            queue.result(record.job_id)
        assert_no_orphans(orch)

    def test_cancellation_leaves_no_orphans(self, tmp_path):
        queue, orch, result = run_campaign(tmp_path, gcd_spec(), 2,
                                           name="cancel",
                                           cancel_first=True)
        assert result.state is JobState.CANCELLED
        assert queue.get(result.job_id).state is JobState.CANCELLED
        assert_no_orphans(orch)

    def test_deterministic_shard_error_fails_job(self, tmp_path):
        # One adder cannot schedule gcd: a deterministic ReproError
        # inside every shard, reported (not retried) as FAILED.
        spec = JobSpec(source=GCD, alloc="a1=1", **TINY)
        _, orch, result = run_campaign(tmp_path, spec, 1,
                                       name="badalloc")
        assert result.state is JobState.FAILED
        assert result.error
        assert_no_orphans(orch)


class TestServe:
    def test_serve_once_drains_queue(self, tmp_path):
        queue_root = tmp_path / "queue"
        ids = [repro.submit(GCD, alloc=GCD_ALLOC, seed=seed,
                            queue=queue_root, **TINY)
               for seed in (0, 1)]
        assert len(set(ids)) == 2
        processed = serve(queue_root, store=tmp_path / "store",
                          workers=2, once=True, poll=0.05)
        assert processed == 2
        for jid in ids:
            record = repro.status(jid, queue=queue_root)
            assert record.state is JobState.DONE
            assert len(repro.result(jid, queue=queue_root).front) >= 1

    def test_serve_once_empty_queue_returns_zero(self, tmp_path):
        assert serve(tmp_path / "queue", store=tmp_path / "store",
                     once=True) == 0

    def test_serve_skips_claimed_jobs(self, tmp_path):
        queue_root = tmp_path / "queue"
        jid = repro.submit(GCD, alloc=GCD_ALLOC, queue=queue_root,
                           **TINY)
        queue = JobQueue(queue_root)
        assert queue.claim(jid, "another-server")
        assert serve(queue, store=tmp_path / "store", once=True) == 0
        assert queue.get(jid).state is JobState.PENDING

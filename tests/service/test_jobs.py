"""Job model tests: canonical specs, stable ids, queue lifecycle."""

import json
import os
import time

import pytest

import repro
from repro.errors import ServiceError
from repro.service.jobs import (JOB_SCHEMA, JobQueue, JobSpec,
                                JobState, PARETO, ShardSpec,
                                default_queue_root, expand_shards)

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

ALLOC = "sb1=2,cp1=1,e1=1"


def make_spec(**kw):
    kw.setdefault("source", GCD)
    kw.setdefault("alloc", ALLOC)
    return JobSpec(**kw)


class TestSpec:
    def test_canonical_json_round_trip(self):
        spec = make_spec(seed=3, generations=2)
        text = spec.to_json()
        # Canonical: one line, sorted keys, minimal separators.
        assert "\n" not in text and ": " not in text
        doc = json.loads(text)
        assert doc["schema"] == JOB_SCHEMA
        assert list(doc) == sorted(doc)
        assert JobSpec.from_json(text) == spec

    def test_job_id_stable_and_content_derived(self):
        a = make_spec().job_id()
        assert a == make_spec().job_id()
        assert len(a) == 16
        # Any knob change changes the id...
        assert make_spec(seed=1).job_id() != a
        assert make_spec(generations=5).job_id() != a
        # ...but whitespace-only source edits that leave the behavior
        # AND the document identical do not exist: the document embeds
        # the source verbatim, so the id covers it.
        assert make_spec(source=GCD + "\n").job_id() != a

    def test_validation_errors(self):
        with pytest.raises(ServiceError):
            JobSpec(source="").validate()
        with pytest.raises(ServiceError):
            make_spec(objective="latency").validate()
        with pytest.raises(ServiceError):
            make_spec(generations=-1).validate()
        with pytest.raises(ServiceError):
            make_spec(num_seeds=0).validate()

    def test_from_dict_rejects_bad_schema_and_shape(self):
        with pytest.raises(ServiceError):
            JobSpec.from_json("not json")
        with pytest.raises(ServiceError):
            JobSpec.from_dict({"schema": JOB_SCHEMA + 1,
                               "source": GCD})
        with pytest.raises(ServiceError):
            JobSpec.from_dict({"schema": JOB_SCHEMA})  # no source

    def test_shard_expansion(self):
        spec = make_spec(num_seeds=2, seed=5)
        shards = expand_shards(spec)
        cells = {s.cell for s in shards}
        assert cells == {"throughput", "power", PARETO}
        assert {s.seed for s in shards} == {5, 6}
        assert len(shards) == 6
        assert len({s.shard_id for s in shards}) == 6
        # Single-objective jobs shard to one cell per seed.
        assert len(expand_shards(make_spec(objective="power"))) == 1
        assert len(expand_shards(make_spec(warm_start=False))) == 1

    def test_shard_round_trip(self):
        shard = expand_shards(make_spec())[0]
        again = ShardSpec.from_dict(
            json.loads(json.dumps(shard.as_dict())))
        assert again == shard

    def test_shard_config_matches_serial_explore(self):
        """The pareto cell's config equals a serial explore config
        built from the same knobs — the byte-identity precondition."""
        spec = make_spec(generations=2, population=4,
                         candidates_per_seed=10, iterations=2)
        shard = [s for s in expand_shards(spec)
                 if s.cell == PARETO][0]
        cfg = shard.explore_config()
        assert cfg.generations == 2
        assert cfg.population_size == 4
        assert cfg.workers == 0
        assert cfg.search.max_outer_iters == 2


class TestQueue:
    def test_submit_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        first = queue.submit(make_spec())
        again = queue.submit(make_spec())
        assert again.job_id == first.job_id
        assert again.submitted_at == first.submitted_at
        assert len(queue.jobs()) == 1
        assert queue.pending()[0].state is JobState.PENDING

    def test_record_round_trip_via_disk(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        record = queue.submit(make_spec(seed=2))
        other = JobQueue(tmp_path / "q")  # another process stand-in
        assert other.get(record.job_id).spec == record.spec

    def test_lifecycle_transitions(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        jid = queue.submit(make_spec()).job_id
        queue.transition(jid, JobState.RUNNING, worker="w0")
        record = queue.get(jid)
        assert record.state is JobState.RUNNING
        assert record.attempts == 1 and record.worker == "w0"
        queue.transition(jid, JobState.DONE)
        assert queue.get(jid).finished_at is not None
        # Terminal states are sticky.
        with pytest.raises(ServiceError):
            queue.transition(jid, JobState.RUNNING)

    def test_claims_exclusive_then_stale_steal(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        jid = queue.submit(make_spec()).job_id
        assert queue.claim(jid, "server-a")
        assert not queue.claim(jid, "server-b")
        # Age the claim past the lease: another server steals it.
        claim = queue.root / "claims" / f"{jid}.claim"
        doc = json.loads(claim.read_text())
        doc["ts"] = time.time() - JobQueue.JOB_LEASE - 1
        claim.write_text(json.dumps(doc))
        assert queue.claim(jid, "server-b")
        queue.release(jid)
        assert queue.claim(jid, "server-c")

    def test_cancel_pending_only(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        jid = queue.submit(make_spec()).job_id
        assert queue.cancel(jid).state is JobState.CANCELLED
        jid2 = queue.submit(make_spec(seed=7)).job_id
        queue.transition(jid2, JobState.RUNNING)
        # Running jobs are the server's to cancel, not the queue's.
        assert queue.cancel(jid2).state is JobState.RUNNING

    def test_result_requires_done(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        jid = queue.submit(make_spec()).job_id
        with pytest.raises(ServiceError, match="pending"):
            queue.result(jid)

    def test_default_queue_root_under_store(self):
        assert default_queue_root("/s").as_posix() == "/s/queue"


class TestFacade:
    def test_submit_status_round_trip(self, tmp_path):
        jid = repro.submit(GCD, alloc=ALLOC, generations=2,
                           queue=tmp_path / "q")
        assert jid == repro.submit(GCD, alloc=ALLOC, generations=2,
                                   queue=tmp_path / "q")
        record = repro.status(jid, queue=tmp_path / "q")
        assert record.state is JobState.PENDING
        assert record.spec.generations == 2

    def test_submit_reads_bdl_files(self, tmp_path):
        path = tmp_path / "gcd.bdl"
        path.write_text(GCD)
        jid = repro.submit(path, alloc=ALLOC, queue=tmp_path / "q")
        assert repro.status(jid, queue=tmp_path / "q"
                            ).spec.source == GCD

    def test_submit_normalizes_alloc(self, tmp_path):
        a = repro.submit(GCD, alloc="e1=1,cp1=1,sb1=2",
                         queue=tmp_path / "q")
        b = repro.submit(GCD, alloc={"sb1": 2, "cp1": 1, "e1": 1},
                         queue=tmp_path / "q")
        assert a == b

"""Store federation tests: conflict-free merge of run stores."""

import warnings
from contextlib import contextmanager

import pytest

from repro.explore import DesignMetrics, RunStore, RunStoreWarning
from repro.service.sync import merge_store, sync_stores

M1 = DesignMetrics(length=10.0, energy=40.0, area=7.0)
M2 = DesignMetrics(length=12.0, energy=30.0, area=6.0)


@contextmanager
def no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


def fill(root, entries):
    store = RunStore(root)
    for key, metrics in entries.items():
        store.put(key, metrics)
    return store


class TestMergeStore:
    def test_union_copied_and_skipped_counts(self, tmp_path):
        fill(tmp_path / "a", {"11" * 32: M1, "22" * 32: M2})
        fill(tmp_path / "b", {"22" * 32: M2, "33" * 32: None})
        with no_warnings():
            stats = merge_store(tmp_path / "a", tmp_path / "b")
        assert stats.copied == 1
        assert stats.skipped == 1
        assert stats.disagreements == 0
        assert stats.examined == 2
        merged = RunStore(tmp_path / "b")
        assert merged.get("11" * 32).metrics == M1
        assert merged.get("33" * 32) is not None  # untouched

    def test_idempotent(self, tmp_path):
        fill(tmp_path / "a", {"44" * 32: M1})
        merge_store(tmp_path / "a", tmp_path / "b")
        again = merge_store(tmp_path / "a", tmp_path / "b")
        assert again.copied == 0 and again.skipped == 1

    def test_disagreement_keeps_destination(self, tmp_path):
        key = "55" * 32
        fill(tmp_path / "a", {key: M1})
        fill(tmp_path / "b", {key: M2})
        with pytest.warns(RunStoreWarning, match="differs"):
            stats = merge_store(tmp_path / "a", tmp_path / "b")
        assert stats.disagreements == 1
        assert RunStore(tmp_path / "b").get(key).metrics == M2

    def test_empty_or_missing_source_is_noop(self, tmp_path):
        stats = merge_store(tmp_path / "nowhere", tmp_path / "b")
        assert stats.examined == 0

    def test_sync_stores_bidirectional_union(self, tmp_path):
        fill(tmp_path / "a", {"66" * 32: M1})
        fill(tmp_path / "b", {"77" * 32: M2})
        ab, ba = sync_stores(tmp_path / "a", tmp_path / "b")
        assert ab.copied == 1 and ba.copied == 1
        for root in (tmp_path / "a", tmp_path / "b"):
            store = RunStore(root)
            assert store.get("66" * 32).metrics == M1
            assert store.get("77" * 32).metrics == M2

    def test_stray_tmp_files_not_synced(self, tmp_path):
        store = fill(tmp_path / "a", {"88" * 32: M1})
        (store.root / "v1" / "88" / "crashed0.tmp").write_text("junk")
        stats = merge_store(tmp_path / "a", tmp_path / "b")
        assert stats.copied == 1
        assert not list((tmp_path / "b").rglob("*.tmp"))

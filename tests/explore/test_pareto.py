"""Unit tests for the Pareto machinery (dominance, NSGA-II, exports)."""

import pytest

from repro.errors import ExploreError
from repro.explore import (DesignMetrics, DesignPoint, ParetoFront,
                           crowding_distance, dominates,
                           non_dominated_sort, nsga2_select,
                           objectives_from_metrics)


def point(fp, objectives, lineage=()):
    t, p, a = objectives
    return DesignPoint(fp, tuple(lineage),
                       DesignMetrics(length=t, energy=p, area=a),
                       tuple(float(v) for v in objectives))


class TestDominance:
    def test_strict_and_equal(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 1, 1), (1, 1, 2))
        assert not dominates((1, 1, 1), (1, 1, 1))
        assert not dominates((1, 3, 1), (2, 2, 2))  # trade-off

    def test_sort_fronts(self):
        objs = [(1, 4), (2, 3), (3, 3), (4, 1), (5, 5)]
        fronts = non_dominated_sort(objs)
        assert fronts[0] == [0, 1, 3]
        assert fronts[1] == [2]
        assert fronts[2] == [4]

    def test_crowding_extremes_infinite(self):
        objs = [(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)]
        dist = crowding_distance(objs, [0, 1, 2, 3])
        assert dist[0] == float("inf")
        assert dist[3] == float("inf")
        assert 0 < dist[1] < float("inf")


class TestSelect:
    def test_small_population_passthrough(self):
        pts = [point("a", (1, 2, 3)), point("b", (3, 2, 1))]
        assert nsga2_select(pts, 5) == pts

    def test_prefers_first_front_then_crowding(self):
        pts = [point("a", (1, 4, 0)), point("b", (4, 1, 0)),
               point("c", (2, 3, 0)), point("d", (3, 2, 0)),
               point("e", (5, 5, 0))]  # dominated
        chosen = nsga2_select(pts, 4)
        names = {p.fingerprint for p in chosen}
        assert "e" not in names
        assert len(chosen) == 4

    def test_deterministic_tiebreak(self):
        pts = [point(fp, (1.0, float(i % 2), 0.0))
               for i, fp in enumerate("abcdef")]
        first = [p.fingerprint for p in nsga2_select(pts, 3)]
        second = [p.fingerprint for p in nsga2_select(list(pts), 3)]
        assert first == second


class TestParetoFront:
    def test_add_drops_dominated(self):
        front = ParetoFront()
        assert front.add(point("a", (2, 2, 2)))
        assert front.add(point("b", (3, 1, 2)))      # trade-off: kept
        assert not front.add(point("c", (3, 3, 3)))  # dominated
        assert front.add(point("d", (1, 1, 1)))      # dominates a and b
        assert [p.fingerprint for p in front] == ["d"]

    def test_equal_objectives_keep_first(self):
        front = ParetoFront()
        assert front.add(point("a", (1, 2, 3)))
        assert not front.add(point("b", (1, 2, 3)))
        assert len(front) == 1

    def test_no_member_dominates_another(self):
        front = ParetoFront()
        for i in range(40):
            front.add(point(f"p{i:02d}",
                            ((i * 7) % 11, (i * 5) % 13, (i * 3) % 7)))
        members = front.sorted_points()
        for a in members:
            for b in members:
                assert not dominates(a.objectives, b.objectives)

    def test_best_endpoint_and_empty(self):
        front = ParetoFront()
        with pytest.raises(ExploreError):
            front.best(0)
        front.add(point("a", (1, 9, 5)))
        front.add(point("b", (9, 1, 5)))
        assert front.best(0).fingerprint == "a"
        assert front.best(1).fingerprint == "b"

    def test_hypervolume_proxy_properties(self):
        assert ParetoFront().hypervolume_proxy() == 0.0
        front = ParetoFront()
        front.add(point("a", (4, 4, 4)))
        assert front.hypervolume_proxy() == pytest.approx(1.0)
        front.add(point("b", (1, 5, 4)))
        hv = front.hypervolume_proxy()
        assert 0.0 < hv <= len(front)
        # Pure function of the member set, not of insertion order.
        other = ParetoFront()
        other.add(point("b", (1, 5, 4)))
        other.add(point("a", (4, 4, 4)))
        assert other.hypervolume_proxy() == pytest.approx(hv)


class TestExport:
    def test_json_round_trip_and_stability(self):
        front = ParetoFront(baseline_length=10.0)
        front.add(point("b", (2, 1, 3), lineage=("t:x",)))
        front.add(point("a", (1, 2, 3), lineage=("t:y", "u:z")))
        text = front.to_json()
        again = ParetoFront.from_json(text)
        assert again.to_json() == text
        assert again.baseline_length == 10.0
        assert [p.fingerprint for p in again] == ["a", "b"]

    def test_json_rejects_unknown_schema(self):
        with pytest.raises(ExploreError):
            ParetoFront.from_json('{"schema": 999, "points": []}')

    def test_csv_shape(self):
        front = ParetoFront()
        front.add(point("a", (1.5, 2.5, 3.5), lineage=("t:x",)))
        lines = front.to_csv().splitlines()
        assert lines[0].startswith("fingerprint,throughput_cost")
        assert lines[1].startswith("a,1.5,2.5,3.5")
        assert len(lines) == 2


class TestObjectivesFromMetrics:
    def test_faster_design_scales_vdd_down(self):
        m = DesignMetrics(length=5.0, energy=100.0, area=1.0)
        t, p, a = objectives_from_metrics(m, baseline_length=10.0)
        assert t == 5.0 and a == 1.0
        # At full 5 V the power would be 100*25/10 = 250; scaling must
        # cut it (quadratically) below that.
        assert p < 250.0

    def test_slower_design_penalized(self):
        m = DesignMetrics(length=20.0, energy=100.0, area=1.0)
        _, p, _ = objectives_from_metrics(m, baseline_length=10.0)
        nominal = 100.0 * 25.0 / 20.0
        assert p == pytest.approx(nominal * 2.0)

    def test_matches_power_objective(self):
        # Same formula as Objective(POWER).evaluate, minus tie-break.
        from repro.power.vdd import scaled_vdd_for_schedule
        m = DesignMetrics(length=4.0, energy=60.0, area=0.0)
        _, p, _ = objectives_from_metrics(m, baseline_length=8.0)
        vdd = scaled_vdd_for_schedule(4.0, 8.0)
        assert p == pytest.approx(60.0 * vdd ** 2 / 8.0)

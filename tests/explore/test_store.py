"""Run-store tests: persistence, sharing, corruption tolerance."""

import json
import os
import warnings
from contextlib import contextmanager

import pytest

import repro
from repro.core.engine import context_fingerprint
from repro.core.evalcache import CacheStats
from repro.explore import (DesignMetrics, RunStore, RunStoreWarning,
                           STORE_SCHEMA, default_store_root)
from repro.hw import dac98_library
from repro.sched.types import SchedConfig

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

METRICS = DesignMetrics(length=10.5, energy=42.0, area=7.25)


@contextmanager
def warnings_as_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestKeys:
    def test_key_extends_context_and_behavior(self):
        lib = dac98_library()
        alloc = repro.coerce_allocation("a1=1")
        beh = repro.compile(GCD)
        ctx = context_fingerprint(lib, alloc, SchedConfig())
        key = RunStore.key_for(ctx, beh)
        assert len(key) == len(ctx)
        # A different context yields a different key for the same
        # behavior; renaming nothing yields the same key.
        ctx2 = context_fingerprint(lib, repro.coerce_allocation("a1=2"),
                                   SchedConfig())
        assert RunStore.key_for(ctx2, beh) != key
        assert RunStore.key_for(ctx, repro.compile(GCD)) == key

    def test_context_fingerprint_objective_optional(self):
        from repro.core.objectives import Objective
        lib = dac98_library()
        alloc = repro.coerce_allocation("a1=1")
        bare = context_fingerprint(lib, alloc, SchedConfig())
        with_obj = context_fingerprint(lib, alloc, SchedConfig(),
                                       objective=Objective())
        assert bare != with_obj


class TestRoundTrip:
    def test_put_get_and_stats(self, store):
        assert store.get("00" * 32) is None
        assert store.stats.misses == 1
        store.put("00" * 32, METRICS)
        rec = store.get("00" * 32)
        assert rec is not None and rec.feasible
        assert rec.metrics == METRICS
        assert store.stats.hits == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_infeasible_remembered(self, store):
        store.put("ab" * 32, None)
        rec = store.get("ab" * 32)
        assert rec is not None and not rec.feasible

    def test_shared_across_instances(self, tmp_path):
        a = RunStore(tmp_path / "s")
        a.put("cd" * 32, METRICS)
        b = RunStore(tmp_path / "s")  # separate process stand-in
        rec = b.get("cd" * 32)
        assert rec is not None
        assert rec.metrics.length == METRICS.length

    def test_shared_stats_object(self, tmp_path):
        stats = CacheStats()
        s = RunStore(tmp_path / "s", stats=stats)
        s.get("ef" * 32)
        assert stats.misses == 1
        assert s.stats is stats

    def test_scan_lists_entries(self, store):
        store.put("11" * 32, METRICS)
        store.put("22" * 32, None)
        entries = dict(store.scan())
        assert set(entries) == {"11" * 32, "22" * 32}
        assert len(store) == 2


class TestCorruptionTolerance:
    def _entry_path(self, store, key):
        return store.root / "v1" / key[:2] / f"{key}.json"

    def test_truncated_entry_skipped_with_warning(self, tmp_path):
        key = "33" * 32
        a = RunStore(tmp_path / "s")
        a.put(key, METRICS)
        path = self._entry_path(a, key)
        path.write_text(path.read_text()[:10])  # truncate mid-record
        b = RunStore(tmp_path / "s")
        with pytest.warns(RunStoreWarning):
            assert b.get(key) is None
        assert b.corrupt_entries == 1
        assert b.stats.misses == 1
        # Re-evaluation rewrites it and the store heals.
        b.put(key, METRICS)
        c = RunStore(tmp_path / "s")
        assert c.get(key).metrics == METRICS

    def test_wrong_schema_skipped(self, tmp_path):
        key = "44" * 32
        a = RunStore(tmp_path / "s")
        a.put(key, METRICS)
        path = self._entry_path(a, key)
        doc = json.loads(path.read_text())
        doc["schema"] = STORE_SCHEMA + 1
        path.write_text(json.dumps(doc))
        b = RunStore(tmp_path / "s")
        with pytest.warns(RunStoreWarning):
            assert b.get(key) is None

    def test_garbage_and_wrong_shape_skipped(self, tmp_path):
        a = RunStore(tmp_path / "s")
        for key, payload in (("55" * 32, "not json at all"),
                             ("66" * 32, '[1, 2, 3]'),
                             ("77" * 32,
                              '{"schema": %d, "feasible": true}'
                              % STORE_SCHEMA)):
            path = self._entry_path(a, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload)
            with pytest.warns(RunStoreWarning):
                assert a.get(key) is None
        assert a.corrupt_entries == 3

    def test_no_temp_litter_after_put(self, store):
        store.put("88" * 32, METRICS)
        leftovers = [p for p in store.root.rglob("*.tmp")]
        assert leftovers == []


class TestAtomicWrites:
    """Crash/concurrency model of the durable write path."""

    def test_fsync_called_before_rename(self, tmp_path, monkeypatch):
        from repro.explore.store import atomic_write_text
        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (order.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (order.append("replace"),
                          real_replace(a, b))[1])
        atomic_write_text(tmp_path / "f.json", "{}")
        assert order == ["fsync", "replace"]

    def test_crash_before_rename_leaves_target_intact(
            self, tmp_path, monkeypatch):
        """Simulated crash (fsync raises): the destination keeps its
        previous content and no temp file leaks."""
        from repro.explore.store import atomic_write_text
        target = tmp_path / "f.json"
        atomic_write_text(target, "old")

        def boom(fd):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_put_crash_degrades_to_memory_with_warning(
            self, tmp_path, monkeypatch):
        key = "99" * 32
        store = RunStore(tmp_path / "s")
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.warns(RunStoreWarning, match="cannot persist"):
            store.put(key, METRICS)
        # The in-memory layer still serves the record this run...
        assert store.get(key).metrics == METRICS
        # ...but nothing (and no temp litter) reached the disk.
        monkeypatch.undo()
        assert RunStore(tmp_path / "s").get(key) is None
        assert list(store.root.rglob("*.tmp")) == []

    def test_put_tolerates_concurrent_writer(self, tmp_path,
                                             monkeypatch):
        """A failed publish is silent success when another process
        already landed the (byte-identical) record."""
        key = "aa" * 32
        writer_a = RunStore(tmp_path / "s")
        writer_a.put(key, METRICS)  # the concurrent winner

        def fail_replace(a, b):
            raise OSError("lost the rename race")

        monkeypatch.setattr(os, "replace", fail_replace)
        writer_b = RunStore(tmp_path / "s")
        with warnings_as_errors():
            writer_b.put(key, METRICS)  # must not warn: success
        monkeypatch.undo()
        assert RunStore(tmp_path / "s").get(key).metrics == METRICS

    def test_stray_tmp_files_ignored_by_readers(self, tmp_path):
        key = "bb" * 32
        store = RunStore(tmp_path / "s")
        store.put(key, METRICS)
        # A crashed writer's leftover temp file next to the record.
        litter = (store.root / "v1" / key[:2] / "crashed0.tmp")
        litter.write_text("partial garbag")
        fresh = RunStore(tmp_path / "s")
        assert fresh.get(key).metrics == METRICS
        assert dict(fresh.scan()).keys() == {key}


class TestDefaults:
    def test_default_root_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store_root() == ".repro-store"
        monkeypatch.setenv("REPRO_STORE", "/tmp/elsewhere")
        assert default_store_root() == "/tmp/elsewhere"

"""Exploration runner tests: determinism, checkpoint/resume, facade."""

import pytest

import repro
from repro import JobState
from repro.core.search import SearchConfig
from repro.errors import ExploreError
from repro.explore import (ExploreConfig, ExploreRunner, ParetoFront,
                           RunStore, dominates)
from repro.profiling import profile, uniform_traces

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

ALLOC = "sb1=2,cp1=1,e1=1"


def small_config(generations=2, seed=1):
    return ExploreConfig(
        generations=generations, population_size=4,
        max_candidates_per_seed=10, seed=seed,
        search=SearchConfig(max_outer_iters=2, seed=seed,
                            max_candidates_per_seed=10))


@pytest.fixture(scope="module")
def gcd_setup():
    beh = repro.compile(GCD)
    alloc = repro.coerce_allocation(ALLOC)
    probs = dict(profile(beh, uniform_traces(beh, 12, lo=1, hi=255,
                                             seed=1)).branch_probs)
    return beh, alloc, probs


def make_runner(gcd_setup, tmp_path, **kw):
    beh, alloc, probs = gcd_setup
    kw.setdefault("config", small_config())
    kw.setdefault("store", tmp_path / "store")
    return ExploreRunner(beh, alloc, branch_probs=probs, **kw)


class TestRun:
    def test_front_is_non_dominated_and_nonempty(self, gcd_setup,
                                                 tmp_path):
        result = make_runner(gcd_setup, tmp_path).run()
        assert result.state is JobState.DONE
        assert result.generations == 2
        members = result.front.sorted_points()
        assert members
        for a in members:
            for b in members:
                assert not dominates(a.objectives, b.objectives)
        assert result.telemetry.evaluations > 0
        assert len(result.telemetry.generations) == 2

    def test_same_seed_same_front(self, gcd_setup, tmp_path):
        r1 = make_runner(gcd_setup, tmp_path / "a").run()
        r2 = make_runner(gcd_setup, tmp_path / "b").run()
        assert r1.front.to_json() == r2.front.to_json()

    def test_store_shared_across_runs(self, gcd_setup, tmp_path):
        make_runner(gcd_setup, tmp_path).run()
        beh, alloc, probs = gcd_setup
        store = RunStore(tmp_path / "store")
        second = ExploreRunner(beh, alloc, branch_probs=probs,
                               config=small_config(), store=store,
                               checkpoint=tmp_path / "again.ckpt")
        result = second.run()
        # Every evaluation of the rerun is served from the first run's
        # disk store: nothing is scheduled anew.
        assert all(g.scheduled == 0
                   for g in result.telemetry.generations)
        assert store.stats.hit_rate == 1.0

    def test_unschedulable_input_raises(self, tmp_path):
        beh = repro.compile(GCD)
        with pytest.raises(repro.ReproError):
            ExploreRunner(beh, repro.coerce_allocation("a1=1"),
                          config=small_config(),
                          store=tmp_path / "s").run()


class TestCheckpointResume:
    def test_interrupt_then_resume_is_byte_identical(self, gcd_setup,
                                                     tmp_path):
        reference = make_runner(gcd_setup, tmp_path / "ref",
                                config=small_config(3)).run()
        runner = make_runner(gcd_setup, tmp_path / "cut",
                             config=small_config(3))
        # Ask for a stop after the first completed generation: the
        # checkpoint flushes and the run returns cleanly, exactly as
        # the SIGINT handler does.
        original = ExploreRunner._save_checkpoint

        def stop_after_first(self, generation, *args, **kwargs):
            original(self, generation, *args, **kwargs)
            if generation >= 1:
                self.request_stop()

        ExploreRunner._save_checkpoint = stop_after_first
        try:
            partial = runner.run()
        finally:
            ExploreRunner._save_checkpoint = original
        assert partial.state is JobState.CANCELLED
        assert partial.generations == 1
        resumed = make_runner(gcd_setup, tmp_path / "cut",
                              config=small_config(3)).run(resume=True)
        assert resumed.state is JobState.DONE
        assert resumed.generations == 3
        assert resumed.front.to_json() == reference.front.to_json()
        assert resumed.front.to_csv() == reference.front.to_csv()

    def test_resume_without_checkpoint_starts_fresh(self, gcd_setup,
                                                    tmp_path):
        result = make_runner(gcd_setup, tmp_path).run(resume=True)
        assert result.state is JobState.DONE
        assert result.generations == 2

    def test_resume_of_finished_run_is_stable(self, gcd_setup,
                                              tmp_path):
        first = make_runner(gcd_setup, tmp_path).run()
        again = make_runner(gcd_setup, tmp_path).run(resume=True)
        assert again.front.to_json() == first.front.to_json()

    def test_mismatched_config_rejected(self, gcd_setup, tmp_path):
        runner = make_runner(gcd_setup, tmp_path)
        runner.run()
        other = make_runner(gcd_setup, tmp_path,
                            config=small_config(seed=9),
                            checkpoint=runner.checkpoint)
        with pytest.raises(ExploreError):
            other.run(resume=True)

    def test_corrupt_checkpoint_reported(self, gcd_setup, tmp_path):
        runner = make_runner(gcd_setup, tmp_path)
        runner.run()
        with open(runner.checkpoint, "wb") as handle:
            handle.write(b"\x80garbage")
        with pytest.raises(ExploreError):
            make_runner(gcd_setup, tmp_path).run(resume=True)


class TestFacade:
    def test_api_explore_end_to_end(self, tmp_path):
        result = repro.explore(GCD, alloc=ALLOC,
                               config=small_config(),
                               store=tmp_path / "store")
        assert isinstance(result.front, ParetoFront)
        assert len(result.front) >= 1
        assert result.store_hit_rate >= 0.0
        # The baseline (untransformed) design's length anchors the
        # power objective.
        assert result.front.baseline_length > 0

    def test_api_overrides(self, tmp_path):
        result = repro.explore(GCD, alloc=ALLOC,
                               config=small_config(),
                               generations=1, seed=2, workers=0,
                               store=tmp_path / "store")
        assert result.generations == 1
        assert result.telemetry.backend == "serial"

    def test_warm_start_off(self, tmp_path):
        cfg = small_config()
        cfg.warm_start = False
        result = repro.explore(GCD, alloc=ALLOC, config=cfg,
                               store=tmp_path / "store")
        assert len(result.front) >= 1

    def test_explore_returns_job_result(self, tmp_path):
        result = repro.explore(GCD, alloc=ALLOC,
                               config=small_config(),
                               store=tmp_path / "store")
        assert isinstance(result, repro.JobResult)
        assert result.ok


class TestDeprecationShims:
    """The pre-service API keeps working, with DeprecationWarnings."""

    def test_result_interrupted_property_warns(self, gcd_setup,
                                               tmp_path):
        result = make_runner(gcd_setup, tmp_path).run()
        with pytest.warns(DeprecationWarning,
                          match="interrupted is deprecated"):
            assert result.interrupted is False

    def test_result_checkpoint_path_property_warns(self, gcd_setup,
                                                   tmp_path):
        result = make_runner(gcd_setup, tmp_path).run()
        with pytest.warns(DeprecationWarning,
                          match="checkpoint_path is deprecated"):
            assert result.checkpoint_path == result.checkpoint

    def test_runner_checkpoint_path_kwarg_warns(self, gcd_setup,
                                                tmp_path):
        beh, alloc, probs = gcd_setup
        with pytest.warns(DeprecationWarning,
                          match="checkpoint_path=.*deprecated"):
            runner = ExploreRunner(
                beh, alloc, branch_probs=probs,
                config=small_config(), store=tmp_path / "s",
                checkpoint_path=tmp_path / "old.ckpt")
        assert runner.checkpoint == tmp_path / "old.ckpt"

    def test_runner_checkpoint_path_attr_warns(self, gcd_setup,
                                               tmp_path):
        runner = make_runner(gcd_setup, tmp_path)
        with pytest.warns(DeprecationWarning,
                          match="checkpoint_path is deprecated"):
            assert runner.checkpoint_path == runner.checkpoint

    def test_explore_result_constructor_warns(self):
        front = ParetoFront(baseline_length=10.0)
        with pytest.warns(DeprecationWarning,
                          match="ExploreResult is deprecated"):
            legacy = repro.ExploreResult(front, 3, interrupted=True,
                                         checkpoint_path="x.ckpt")
        assert isinstance(legacy, repro.JobResult)
        assert legacy.state is JobState.CANCELLED
        assert legacy.checkpoint == "x.ckpt"
        # isinstance against the old name still holds for results
        # built through the shim.
        assert isinstance(legacy, repro.ExploreResult)

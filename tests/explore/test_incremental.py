"""Incremental vs. full evaluation in the explorer: identical fronts."""

import repro
from repro.core.search import SearchConfig
from repro.explore import ExploreConfig, ExploreRunner
from repro.profiling import profile, uniform_traces

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

ALLOC = "sb1=2,cp1=1,e1=1"


def _run(tmp_path, incremental, tag):
    beh = repro.compile(GCD)
    alloc = repro.coerce_allocation(ALLOC)
    probs = dict(profile(beh, uniform_traces(beh, 12, lo=1, hi=255,
                                             seed=1)).branch_probs)
    cfg = ExploreConfig(
        generations=2, population_size=4, max_candidates_per_seed=10,
        seed=1, incremental=incremental,
        search=SearchConfig(max_outer_iters=2, seed=1,
                            max_candidates_per_seed=10,
                            incremental=incremental))
    # Separate stores: a shared one would serve the second run from
    # disk and nothing would be scheduled at all.
    return ExploreRunner(beh, alloc, branch_probs=probs, config=cfg,
                         store=tmp_path / f"store-{tag}").run()


def test_incremental_front_matches_full(tmp_path):
    inc = _run(tmp_path, True, "inc")
    full = _run(tmp_path, False, "full")
    assert inc.front.to_json() == full.front.to_json()
    assert ([p.lineage for p in inc.front.sorted_points()]
            == [p.lineage for p in full.front.sorted_points()])
    # Both runs actually scheduled (no store crosstalk).
    assert inc.telemetry.evaluations > 0
    assert full.telemetry.evaluations > 0

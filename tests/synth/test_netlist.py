"""Netlist export tests."""

import pytest

from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.sched import SchedConfig, schedule_behavior
from repro.synth import netlist_text, synthesize

LIB = dac98_library()


@pytest.fixture(scope="module")
def mac_netlist():
    beh = compile_source("""
        proc mac(in a, in b, in c, out r) {
            var t = a * b;
            r = t + c;
        }
    """)
    result = schedule_behavior(beh, LIB, Allocation({"mt1": 1, "a1": 1}),
                               SchedConfig())
    return netlist_text(synthesize(result))


class TestNetlistText:
    def test_module_structure(self, mac_netlist):
        assert mac_netlist.startswith("module mac (")
        assert mac_netlist.rstrip().endswith("endmodule")

    def test_ports_declared(self, mac_netlist):
        for port in ("input [31:0] a", "input [31:0] b",
                     "input [31:0] c", "output [31:0] r"):
            assert port in mac_netlist

    def test_fu_instances_listed(self, mac_netlist):
        assert "mt1 u_mt1_0" in mac_netlist
        assert "a1 u_a1_0" in mac_netlist

    def test_controller_states_listed(self, mac_netlist):
        assert "// S0:" in mac_netlist
        assert "DONE" in mac_netlist

    def test_area_summary_present(self, mac_netlist):
        assert "// area:" in mac_netlist

    def test_memories_rendered(self):
        beh = compile_source("""
            proc p(array buf[32], out s) {
                s = buf[0] + buf[1];
            }
        """)
        result = schedule_behavior(beh, LIB, Allocation({"a1": 1}),
                                   SchedConfig())
        text = netlist_text(synthesize(result))
        assert "ram #(.DEPTH(32), .PORTS(1)) mem_buf" in text

    def test_mux_annotations_for_shared_fu(self):
        beh = compile_source("""
            proc p(in a, in b, in c, in d, out r) {
                r = ((a + b) + c) + d;
            }
        """)
        result = schedule_behavior(beh, LIB, Allocation({"a1": 1}),
                                   SchedConfig(allow_chaining=False))
        text = netlist_text(synthesize(result))
        # Three adds share one adder: at least one port needs a mux.
        assert "mux" in text

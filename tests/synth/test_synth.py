"""Synthesis substrate tests: binding, registers, interconnect, power."""

import pytest

from repro.hw import Allocation, dac98_library
from repro.lang import compile_source
from repro.power import estimate_power
from repro.sched import SchedConfig, schedule_behavior
from repro.synth import (activity_factor, allocate_registers,
                         bind_functional_units, simulate_power,
                         synthesize, value_lifetimes)

LIB = dac98_library()


def schedule(src, counts, **cfg):
    beh = compile_source(src)
    return schedule_behavior(beh, LIB, Allocation(counts),
                             SchedConfig(**cfg))


@pytest.fixture(scope="module")
def chain_design():
    return schedule("""
        proc p(in a, in b, in c, in d, out r) {
            var t1 = a * b;
            var t2 = c * d;
            var t3 = t1 + t2;
            r = t3 * t3;
        }
    """, {"mt1": 1, "a1": 1})


@pytest.fixture(scope="module")
def gcd_design():
    return schedule("""
        proc gcd(in a, in b, out g) {
            while (a != b) {
                if (a < b) { b = b - a; } else { a = a - b; }
            }
            g = a;
        }
    """, {"sb1": 2, "cp1": 1, "e1": 1})


class TestBinding:
    def test_ops_bound_within_allocation(self, chain_design):
        binding = bind_functional_units(chain_design)
        assert binding.count("mt1") <= 1
        assert binding.count("a1") <= 1
        # Three multiplies share the single multiplier.
        mults = binding.instances["mt1"]
        assert len(binding.ops_on(mults[0])) == 3

    def test_guarded_subs_share_instance_when_exclusive(self, gcd_design):
        binding = bind_functional_units(gcd_design)
        # The two guarded subtractions are mutually exclusive; they may
        # or may not share, but binding must fit the allocation.
        assert binding.count("sb1") <= 2

    def test_every_state_op_is_bound(self, chain_design):
        binding = bind_functional_units(chain_design)
        from repro.sched import ResourceModel
        rm = ResourceModel(chain_design.behavior.graph, LIB,
                           chain_design.allocation)
        for state in chain_design.stg.states.values():
            for op in state.ops:
                if rm.resource_of(op.node) is not None:
                    assert op.node in binding.assignment


class TestRegisters:
    def test_values_crossing_states_get_registers(self, chain_design):
        alloc = allocate_registers(chain_design)
        assert alloc.count >= 1
        lifetimes = value_lifetimes(chain_design)
        assert all(lt.end > lt.start for lt in lifetimes)

    def test_left_edge_packs_disjoint_intervals(self, chain_design):
        alloc = allocate_registers(chain_design)
        for reg in alloc.registers:
            spans = sorted((lt.start, lt.end) for lt in reg)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 < s2, "overlapping lifetimes share a register"

    def test_register_count_reasonable(self, gcd_design):
        alloc = allocate_registers(gcd_design)
        # GCD needs only a handful of live values.
        assert 1 <= alloc.count <= 8


class TestSynthesize:
    def test_area_report_structure(self, chain_design):
        design = synthesize(chain_design)
        assert design.area.total > 0
        assert design.area.fu_area.get("mt1", 0) == pytest.approx(3.9)
        assert design.area.controller_area > 0
        assert design.controller.n_states == len(chain_design.stg)

    def test_more_parallel_allocation_means_more_area(self):
        narrow = schedule(
            "proc p(in a, in b, in c, in d, out r) "
            "{ r = ((a + b) + c) + d; }", {"a1": 1})
        wide = schedule(
            "proc p(in a, in b, in c, in d, out r) "
            "{ r = ((a + b) + c) + d; }", {"a1": 3},
            allow_chaining=False)
        narrow_area = synthesize(narrow).area
        wide_area = synthesize(wide).area
        assert narrow_area.fu_area["a1"] <= wide_area.fu_area["a1"]


class TestActivity:
    def test_uncorrelated_activity_near_half_of_low_bits(self):
        import random
        rng = random.Random(0)
        samples = [rng.getrandbits(32) - 2 ** 31 for _ in range(500)]
        act = activity_factor(samples)
        assert 0.4 < act < 0.6

    def test_correlated_stream_toggles_less(self):
        from repro.profiling import gaussian_ar_sequence
        smooth = gaussian_ar_sequence(500, std=512, rho=0.98, seed=1)
        rough = gaussian_ar_sequence(500, std=512, rho=0.0, seed=1)
        assert activity_factor(smooth) < activity_factor(rough)

    def test_constant_stream_zero_activity(self):
        assert activity_factor([7] * 100) == 0.0


class TestSimulatedPower:
    def test_simulation_tracks_closed_form(self, gcd_design):
        sim = simulate_power(gcd_design, runs=400, seed=3, rho=0.0)
        est = estimate_power(gcd_design.stg,
                             gcd_design.behavior.graph, LIB)
        # With rho=0 the activity is ~0.5, matching nominal constants;
        # Monte-Carlo should land near the closed form.
        assert sim.power == pytest.approx(est.power, rel=0.30)
        assert sim.mean_length == pytest.approx(est.schedule_length,
                                                rel=0.15)

    def test_correlated_inputs_reduce_power(self, gcd_design):
        smooth = simulate_power(gcd_design, runs=200, seed=3, rho=0.98)
        rough = simulate_power(gcd_design, runs=200, seed=3, rho=0.0)
        assert smooth.power < rough.power

"""CLI tests (invoked in-process through cli.main)."""

import pytest

from repro.cli import main

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


@pytest.fixture()
def gcd_file(tmp_path):
    path = tmp_path / "gcd.bdl"
    path.write_text(GCD)
    return str(path)


class TestCompile:
    def test_stats(self, gcd_file, capsys):
        assert main(["compile", gcd_file]) == 0
        out = capsys.readouterr().out
        assert "gcd:" in out
        assert "loops: ['L1']" in out

    def test_dot(self, gcd_file, capsys):
        assert main(["compile", gcd_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["compile", "/nonexistent.bdl"])

    def test_syntax_error_reported(self, tmp_path):
        bad = tmp_path / "bad.bdl"
        bad.write_text("proc p( {")
        with pytest.raises(SystemExit):
            main(["compile", str(bad)])


class TestRun:
    def test_executes(self, gcd_file, capsys):
        assert main(["run", gcd_file, "a=36", "b=60"]) == 0
        out = capsys.readouterr().out
        assert "g = 12" in out
        assert "loop L1" in out

    def test_bad_input_pair(self, gcd_file):
        with pytest.raises(SystemExit):
            main(["run", gcd_file, "a"])


class TestSchedule:
    def test_schedule_stats(self, gcd_file, capsys):
        assert main(["schedule", gcd_file,
                     "--alloc", "sb1=2,cp1=1,e1=1"]) == 0
        out = capsys.readouterr().out
        assert "states" in out
        assert "cycles per execution" in out

    def test_schedule_dot(self, gcd_file, capsys):
        assert main(["schedule", gcd_file, "--alloc",
                     "sb1=2,cp1=1,e1=1", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_infeasible_allocation(self, gcd_file):
        with pytest.raises(SystemExit):
            main(["schedule", gcd_file, "--alloc", "a1=1"])

    def test_bad_alloc_syntax(self, gcd_file):
        with pytest.raises(SystemExit):
            main(["schedule", gcd_file, "--alloc", "a1"])


class TestOptimize:
    def test_improves_gcd(self, gcd_file, capsys):
        assert main(["optimize", gcd_file, "--alloc",
                     "sb1=2,cp1=1,e1=1", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "optimized:" in out
        assert "speculate" in out

    def test_power_objective(self, gcd_file, capsys):
        assert main(["optimize", gcd_file, "--alloc",
                     "sb1=2,cp1=1,e1=1", "--objective", "power",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "power:" in out
        assert "V)" in out


class TestTable2:
    def test_single_circuit(self, capsys):
        assert main(["table2", "pps"]) == 0
        out = capsys.readouterr().out
        assert "pps" in out
        assert "Table 2" in out


class TestExplore:
    ARGS = ["--alloc", "sb1=2,cp1=1,e1=1", "--seed", "1",
            "--generations", "1", "--population", "4",
            "--candidates-per-seed", "8", "--iterations", "1"]

    def test_smoke_with_exports(self, gcd_file, tmp_path, capsys):
        front_json = tmp_path / "front.json"
        front_csv = tmp_path / "front.csv"
        rc = main(["explore", gcd_file, *self.ARGS,
                   "--store", str(tmp_path / "store"),
                   "--export", str(front_json),
                   "--csv", str(front_csv), "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "front of" in out
        assert "store hit rate" in out
        import json
        doc = json.loads(front_json.read_text())
        assert doc["schema"] == 1
        assert doc["points"]
        assert front_csv.read_text().startswith("fingerprint,")

    def test_resume_of_finished_run_reproduces_front(self, gcd_file,
                                                     tmp_path, capsys):
        store = str(tmp_path / "store")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["explore", gcd_file, *self.ARGS, "--store", store,
                     "--export", str(first)]) == 0
        assert main(["explore", gcd_file, *self.ARGS, "--store", store,
                     "--resume", "--export", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()


class TestService:
    KNOBS = ["--alloc", "sb1=2,cp1=1,e1=1", "--generations", "1",
             "--population", "4", "--candidates-per-seed", "6",
             "--iterations", "1"]

    def test_submit_serve_result_round_trip(self, gcd_file, tmp_path,
                                            capsys):
        queue = str(tmp_path / "queue")
        store = str(tmp_path / "store")
        assert main(["submit", gcd_file, *self.KNOBS,
                     "--queue", queue, "--store", store]) == 0
        job_id = capsys.readouterr().out.strip().splitlines()[0]
        assert len(job_id) == 16

        assert main(["job", "list", "--queue", queue]) == 0
        assert "pending" in capsys.readouterr().out

        assert main(["serve", "--queue", queue, "--store", store,
                     "--workers", "1", "--once"]) == 0
        assert "served 1 job(s)" in capsys.readouterr().out

        front_json = tmp_path / "front.json"
        assert main(["job", "status", job_id, "--queue", queue]) == 0
        assert "state:     done" in capsys.readouterr().out
        assert main(["job", "result", job_id, "--queue", queue,
                     "--export", str(front_json)]) == 0
        assert "merged front of" in capsys.readouterr().out
        import json
        assert json.loads(front_json.read_text())["points"]

    def test_submit_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", str(tmp_path / "no.bdl"),
                  "--queue", str(tmp_path / "q")])

    def test_job_status_unknown_id(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["job", "status", "feedfacefeedface",
                  "--queue", str(tmp_path / "q")])

    def test_store_sync_command(self, gcd_file, tmp_path, capsys):
        queue = str(tmp_path / "queue")
        a = str(tmp_path / "store-a")
        assert main(["submit", gcd_file, *self.KNOBS,
                     "--queue", queue, "--store", a]) == 0
        assert main(["serve", "--queue", queue, "--store", a,
                     "--workers", "1", "--once"]) == 0
        capsys.readouterr()
        assert main(["store", "sync", a,
                     str(tmp_path / "store-b")]) == 0
        out = capsys.readouterr().out
        assert "copied" in out and "disagreements 0" in out

    def test_store_list_round_trip(self, gcd_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--alloc", "sb1=2,cp1=1,e1=1", "--seed", "1",
                "--generations", "1", "--population", "4",
                "--candidates-per-seed", "8", "--iterations", "1",
                "--store", store]
        assert main(["explore", gcd_file, *args]) == 0
        capsys.readouterr()
        assert main(["store", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "stored evaluation(s)" in out
        assert "1 transfer front(s)" in out
        assert "vdd=5" in out

    def test_store_list_empty_store(self, tmp_path, capsys):
        assert main(["store", "list",
                     "--store", str(tmp_path / "empty")]) == 0
        out = capsys.readouterr().out
        assert "0 stored evaluation(s), 0 transfer front(s)" in out

    def test_explore_warm_start_uses_transfer_index(
            self, gcd_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--alloc", "sb1=2,cp1=1,e1=1", "--seed", "1",
                "--generations", "1", "--population", "4",
                "--candidates-per-seed", "8", "--iterations", "1",
                "--store", store]
        assert main(["explore", gcd_file, *args]) == 0
        assert main(["explore", gcd_file, *args, "--warm-start",
                     "--clock", "26"]) == 0
        capsys.readouterr()
        assert main(["store", "list", "--store", store]) == 0
        assert "2 transfer front(s)" in capsys.readouterr().out

    def test_submit_strategy_round_trips_through_queue(
            self, gcd_file, tmp_path, capsys):
        queue = str(tmp_path / "queue")
        assert main(["submit", gcd_file, *self.KNOBS,
                     "--strategy", "macro",
                     "--queue", queue,
                     "--store", str(tmp_path / "store")]) == 0
        job_id = capsys.readouterr().out.strip().splitlines()[0]
        from repro.service.jobs import JobQueue
        record = JobQueue(queue).get(job_id)
        assert record.spec.strategy == "macro"

"""Regressions distilled from fuzz campaigns.

Each ``.bdl`` file under ``corpus/`` is a shrunken circuit that once
exposed a divergence (or pinned down an edge case) between two of the
pipelines the differential oracles compare.  Tests here re-assert the
agreed-on behavior so the original bugs stay fixed.
"""

from pathlib import Path

import pytest

from repro.cdfg.interp import execute
from repro.core.engine import context_fingerprint
from repro.errors import ReproError, ScheduleError
from repro.hw import Allocation, dac98_library
from repro.lang.lower import compile_source
from repro.profiling import uniform_traces
from repro.profiling.profiler import profile
from repro.rewrite import RewriteDriver
from repro.sched.driver import Scheduler
from repro.sched.regioncache import RegionScheduleCache
from repro.sched.types import SchedConfig
from repro.transforms import default_library

CORPUS = Path(__file__).parent / "corpus"


def corpus_behavior(name):
    return compile_source((CORPUS / name).read_text())


def _scheduler_inputs(behavior, seed=0):
    library = dac98_library()
    allocation = Allocation({n: 2 for n in library.fu_types})
    traces = uniform_traces(behavior, 6, lo=0, hi=255, seed=seed,
                            array_lo=0, array_hi=255)
    probs = profile(behavior, traces).branch_probs
    return library, allocation, SchedConfig(), probs


# -- interpreter edge cases -------------------------------------------------

@pytest.mark.parametrize("name,inputs,arrays,expected", [
    ("empty_branch_arms.bdl", {"a": 0}, {}, {"b": 7}),
    ("empty_branch_arms.bdl", {"a": 3}, {}, {"b": 0}),
    ("guarded_store.bdl", {"a": 0}, {"m": [0, 0, 0, 0]}, {"b": 0}),
    ("guarded_store.bdl", {"a": 3}, {"m": [0, 0, 0, 0]}, {"b": 3}),
    ("zero_trip_loop.bdl", {"a": 5}, {}, {"b": 3}),
])
def test_interp_edge_cases(name, inputs, arrays, expected):
    result = execute(corpus_behavior(name), inputs, arrays)
    assert result.outputs == expected


# -- scheduler capacity guard ----------------------------------------------

def test_path_explosion_trips_the_max_states_guard():
    """Branchy straight-line code exceeds ``max_states`` as a
    ScheduleError (the documented capacity limit), not a hang or a
    Python-level failure — the oracles rely on recognizing it."""
    behavior = corpus_behavior("path_explosion.bdl")
    library, allocation, config, probs = _scheduler_inputs(behavior)
    with pytest.raises(ScheduleError, match="exceeded"):
        Scheduler(behavior, library, allocation, config,
                  probs).schedule()


# -- plain walk vs. splice path --------------------------------------------

def test_drift_circuit_splice_matches_plain_structurally():
    """The splice path (region cache off) must produce the same STG as
    the plain walk; the average length may drift only by float
    associativity.  Shrunken from a campaign circuit whose averages
    differed in the last bits."""
    behavior = corpus_behavior("drift_plain_vs_splice.bdl")
    library, allocation, config, probs = _scheduler_inputs(behavior)
    plain = Scheduler(behavior, library, allocation, config,
                      probs).schedule()
    fp = context_fingerprint(library, allocation, config, probs)
    cache_off = RegionScheduleCache(max_entries=0, context_fp=fp)
    splice = Scheduler(behavior, library, allocation, config, probs,
                       region_cache=cache_off).schedule()
    assert splice.n_states() == plain.n_states()
    a, b = plain.average_length(), splice.average_length()
    assert abs(a - b) <= 1e-9 * max(1.0, b)


# -- incremental enumeration after a loop shrinks --------------------------

def _first_apply_parity(behavior):
    """Apply the first applicable candidate, then compare incremental
    re-enumeration against a from-scratch full scan."""
    library = default_library()
    driver = RewriteDriver(library)
    for cand in driver.candidates(behavior):
        try:
            child = driver.apply(behavior, cand)
        except ReproError:
            continue
        incremental = sorted((c.sort_key, c.description)
                             for c in driver.candidates(child))
        full_driver = RewriteDriver(library, incremental=False)
        full = sorted((c.sort_key, c.description)
                      for c in full_driver.candidates(child))
        return cand.description, incremental, full
    pytest.skip("no applicable candidate")


@pytest.mark.parametrize("name", [
    "enum_carry_shrunken_loop.bdl",
    "enum_carry_shrunken_nested_loop.bdl",
])
def test_incremental_enum_rescans_loops_that_lost_nodes(name):
    """A rewrite whose hygiene passes delete a dead node *inside* a
    loop dirties ids that no longer exist in the child graph; the
    scoped re-scan must still revisit the shrunken loop (hoist and
    spec_unroll matches there were invalidated and have to be
    re-found).  Both circuits were shrunk from campaign findings where
    the incremental driver lost a hoist / spec_unroll candidate."""
    applied, incremental, full = _first_apply_parity(
        corpus_behavior(name))
    assert incremental == full, (
        f"after {applied!r}: incremental enumeration diverged")

"""Campaign harness behavior: recording, replay, reports, limits.

Fake oracles injected into the registry keep these tests instant and
make failure placement deterministic; one small real-oracle campaign
covers the integration path.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.gen import (FuzzFinding, FuzzOptions, GEN_SCHEMA_VERSION,
                       GenConfig, replay_finding, run_campaign)
from repro.gen import oracles as oracles_mod
from repro.obs.metrics import MetricsRegistry


def _fail_odd_seeds(ctx):
    if ctx.seed % 2:
        return f"seed {ctx.seed} is odd"
    return None


@pytest.fixture
def fake_oracle(monkeypatch):
    monkeypatch.setitem(oracles_mod.ORACLES, "fake-odd", _fail_odd_seeds)
    return "fake-odd"


def test_campaign_records_findings_and_counters(fake_oracle):
    options = FuzzOptions(seed=0, count=4, oracles=(fake_oracle,),
                          config=GenConfig(), shrink=False)
    metrics = MetricsRegistry()
    report = run_campaign(options, metrics=metrics)
    assert report.circuits == 4
    assert report.checks == 4
    assert not report.ok
    assert [f.seed for f in report.findings] == [1, 3]
    assert report.oracle_pass == {fake_oracle: 2}
    assert report.oracle_fail == {fake_oracle: 2}
    assert metrics.value("fuzz.circuits") == 4
    assert metrics.value("fuzz.findings") == 2
    finding = report.findings[0]
    assert finding.schema_version == GEN_SCHEMA_VERSION
    assert "--seed 1" in finding.repro_command
    assert finding.source  # unshrunk circuit source is attached


def test_max_findings_stops_the_campaign_early(fake_oracle):
    options = FuzzOptions(seed=0, count=50, oracles=(fake_oracle,),
                          config=GenConfig(), shrink=False,
                          max_findings=1)
    report = run_campaign(options)
    assert len(report.findings) == 1
    assert report.circuits < 50


def test_replay_reproduces_a_recorded_finding(fake_oracle):
    options = FuzzOptions(seed=0, count=2, oracles=(fake_oracle,),
                          config=GenConfig(), shrink=False)
    report = run_campaign(options)
    (finding,) = report.findings
    assert replay_finding(finding) == finding.detail
    # Round-trip through the serialized form replays identically.
    clone = FuzzFinding.from_dict(finding.as_dict())
    assert replay_finding(clone) == finding.detail


def test_replay_rejects_other_schema_versions(fake_oracle):
    finding = FuzzFinding(
        schema_version=GEN_SCHEMA_VERSION + 1, seed=1,
        config=GenConfig().as_dict(), oracle=fake_oracle, detail="x")
    with pytest.raises(ConfigError, match="schema"):
        replay_finding(finding)


def test_unknown_oracle_name_is_a_config_error():
    with pytest.raises(ConfigError, match="unknown oracle"):
        FuzzOptions(oracles=("no-such-oracle",)).oracle_names()


def test_report_serializes_to_json(tmp_path, fake_oracle):
    options = FuzzOptions(seed=0, count=2, oracles=(fake_oracle,),
                          config=GenConfig(), shrink=False)
    report = run_campaign(options)
    path = tmp_path / "FUZZ_report.json"
    report.write(str(path))
    doc = json.loads(path.read_text())
    assert doc["circuits"] == 2
    assert doc["schema_version"] == GEN_SCHEMA_VERSION
    assert len(doc["findings"]) == 1
    assert doc["findings"][0]["repro_command"].startswith(
        "python -m repro fuzz replay")


def test_small_real_campaign_is_clean():
    """Two circuits through a real oracle — the integration path the
    CI smoke job exercises at scale."""
    options = FuzzOptions(seed=0, count=2, oracles=("interp-stg",))
    report = run_campaign(options)
    assert report.ok, [f.detail for f in report.findings]
    assert report.oracle_pass == {"interp-stg": 2}

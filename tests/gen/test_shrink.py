"""Shrinker invariants: smaller, still failing, deterministic.

The reducer is driven by a fake oracle with a simple syntactic failure
predicate, so "still failing" is directly checkable on the result.
"""

import pytest

from repro.gen import GenConfig, generate, shrink
from repro.gen import oracles as oracles_mod


def _has_loop(ctx):
    src = ctx.circuit.source
    if "while (" in src or "for (" in src:
        return "circuit contains a loop"
    return None


@pytest.fixture
def loop_oracle(monkeypatch):
    monkeypatch.setitem(oracles_mod.ORACLES, "fake-loop", _has_loop)
    return "fake-loop"


@pytest.fixture
def loopy_circuit():
    return generate(4, GenConfig(loop_depth=1, loop_density=0.9,
                                 while_loops=True, block_stmts=4))


def test_shrink_returns_a_smaller_still_failing_circuit(
        loop_oracle, loopy_circuit):
    assert _has_loop_source(loopy_circuit.source)
    result = shrink(loopy_circuit, loop_oracle)
    assert result.reproduced
    assert result.edits > 0
    assert _has_loop_source(result.circuit.source)
    assert len(result.circuit.source.splitlines()) \
        < len(loopy_circuit.source.splitlines())
    # The reduced program still compiles and validates.
    result.circuit.behavior()


def test_shrink_is_deterministic(loop_oracle, loopy_circuit):
    first = shrink(loopy_circuit, loop_oracle)
    second = shrink(loopy_circuit, loop_oracle)
    assert first.circuit.source == second.circuit.source
    assert first.edits == second.edits
    assert first.checks == second.checks


def test_shrink_passes_through_non_reproducing_circuits(
        loop_oracle):
    straightline = generate(0, GenConfig(loop_depth=0,
                                         loop_density=0.0))
    assert not _has_loop_source(straightline.source)
    result = shrink(straightline, loop_oracle)
    assert not result.reproduced
    assert result.edits == 0
    assert result.circuit.source == straightline.source


def test_shrink_respects_the_check_budget(loop_oracle, loopy_circuit):
    result = shrink(loopy_circuit, loop_oracle, max_checks=5)
    assert result.checks <= 6  # initial probe + budgeted edits


def _has_loop_source(source):
    return "while (" in source or "for (" in source

"""Generator invariants: determinism, validity, reproducibility.

The generator's contract is that every emitted circuit is valid by
construction and a pure function of ``(schema_version, seed, config)``
— the whole fuzzing subsystem (findings, replay, nightly triage) rests
on those two properties, so they are pinned here across the config
grid and a hypothesis-driven sweep of the config space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.interp import execute
from repro.cdfg.validate import validate_behavior
from repro.errors import ConfigError
from repro.gen import (DEFAULT_GRID, GenConfig, config_from_dict,
                       generate, grid_config)
from repro.profiling import uniform_traces


@pytest.mark.parametrize("index", range(len(DEFAULT_GRID)))
def test_grid_circuits_compile_validate_and_run(index):
    """Every grid regime emits circuits that compile, validate and
    execute trap-free on random stimuli."""
    for seed in (index, 100 + index):
        circuit = generate(seed, grid_config(index))
        behavior = circuit.behavior()
        validate_behavior(behavior)
        traces = uniform_traces(behavior, 2, lo=0, hi=255, seed=seed)
        for case in traces:
            result = execute(
                behavior, case.inputs,
                {k: list(v) for k, v in case.arrays.items()})
            assert set(result.outputs) == set(behavior.outputs)


def test_same_seed_same_config_is_byte_identical():
    a = generate(7, GenConfig())
    b = generate(7, GenConfig())
    assert a.source == b.source
    assert a.config == b.config


def test_different_seeds_differ():
    sources = {generate(seed, GenConfig()).source
               for seed in range(8)}
    assert len(sources) == 8


def test_config_round_trips_through_dict():
    cfg = GenConfig(loop_depth=3, op_mix="arith", n_arrays=0)
    assert config_from_dict(cfg.as_dict()) == cfg


def test_config_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown GenConfig"):
        config_from_dict({"loop_depth": 1, "not_a_field": 2})


@pytest.mark.parametrize("bad", [
    {"op_mix": "quantum"},
    {"array_size": 6},
    {"branch_density": 1.5},
    {"n_outputs": 0},
    {"max_trip": 0},
])
def test_config_validation_rejects_bad_values(bad):
    with pytest.raises(ConfigError):
        generate(0, GenConfig(**bad))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       loop_depth=st.integers(min_value=0, max_value=3),
       branch_density=st.floats(min_value=0.0, max_value=0.8),
       block_stmts=st.integers(min_value=1, max_value=5),
       op_mix=st.sampled_from(("arith", "logic", "mixed")),
       n_arrays=st.integers(min_value=0, max_value=2))
def test_generator_is_total_over_the_config_space(
        seed, loop_depth, branch_density, block_stmts, op_mix,
        n_arrays):
    """Any in-range config yields a compiling, validating circuit, and
    regeneration is deterministic."""
    cfg = GenConfig(loop_depth=loop_depth,
                    branch_density=branch_density,
                    block_stmts=block_stmts, op_mix=op_mix,
                    n_arrays=n_arrays)
    circuit = generate(seed, cfg)
    validate_behavior(circuit.behavior())
    assert generate(seed, cfg).source == circuit.source


def test_loops_never_nest_under_branches():
    """The if-converted IR rejects loops under branch guards, so the
    generator must never emit one (a structural scan of the source:
    no `for`/`while` line more indented than an enclosing `if`)."""
    for seed in range(12):
        circuit = generate(seed, GenConfig(loop_depth=2,
                                           branch_density=0.6,
                                           loop_density=0.6))
        if_depths = []  # indent levels of open ifs
        for line in circuit.source.splitlines():
            indent = (len(line) - len(line.lstrip())) // 4
            if_depths = [d for d in if_depths if d < indent]
            stripped = line.strip()
            if stripped.startswith(("for ", "while ")):
                assert not if_depths, (
                    f"seed {seed}: loop nested under an if:\n"
                    f"{circuit.source}")
            if stripped.startswith("if ") or " else " in stripped:
                if_depths.append(indent)

"""Streaming exploration: front parity, speculation, interrupt/resume."""

import pytest

import repro
from repro import JobState
from repro.core.search import SearchConfig
from repro.explore import ExploreConfig, ExploreRunner
from repro.profiling import profile, uniform_traces

GCD = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

ALLOC = "sb1=2,cp1=1,e1=1"


def config(generations=2, seed=1, streaming=False, workers=None):
    return ExploreConfig(
        generations=generations, population_size=4,
        max_candidates_per_seed=10, seed=seed, workers=workers,
        streaming=streaming,
        search=SearchConfig(max_outer_iters=2, seed=seed,
                            max_candidates_per_seed=10,
                            workers=workers))


@pytest.fixture(scope="module")
def gcd_setup():
    beh = repro.compile(GCD)
    alloc = repro.coerce_allocation(ALLOC)
    probs = dict(profile(beh, uniform_traces(beh, 12, lo=1, hi=255,
                                             seed=1)).branch_probs)
    return beh, alloc, probs


def make_runner(gcd_setup, tmp_path, **kw):
    beh, alloc, probs = gcd_setup
    kw.setdefault("config", config())
    kw.setdefault("store", tmp_path / "store")
    return ExploreRunner(beh, alloc, branch_probs=probs, **kw)


class TestFrontParity:
    def test_serial_streaming_front_is_byte_identical(self, gcd_setup,
                                                      tmp_path):
        barrier = make_runner(gcd_setup, tmp_path / "ba",
                              config=config(3)).run()
        stream = make_runner(gcd_setup, tmp_path / "st",
                             config=config(3, streaming=True)).run()
        assert stream.front.to_json() == barrier.front.to_json()
        assert stream.front.to_csv() == barrier.front.to_csv()
        assert stream.generations == barrier.generations

    def test_pool_streaming_front_is_byte_identical(self, gcd_setup,
                                                    tmp_path,
                                                    monkeypatch):
        # Force the speculative feeder on even on a single-CPU host so
        # the whole pipeline (speculation, shedding, carried futures)
        # is exercised, not just the in-flight window.
        monkeypatch.setattr("repro.stream.available_cpus", lambda: 8)
        barrier = make_runner(gcd_setup, tmp_path / "ba",
                              config=config(3, workers=2)).run()
        stream = make_runner(
            gcd_setup, tmp_path / "st",
            config=config(3, streaming=True, workers=2)).run()
        assert stream.front.to_json() == barrier.front.to_json()
        tel = stream.telemetry.stream
        assert tel is not None
        assert tel.enqueued > 0
        assert tel.completed > 0
        assert tel.max_inflight >= 1

    def test_speculation_disabled_on_single_cpu(self, gcd_setup,
                                                tmp_path, monkeypatch):
        monkeypatch.setattr("repro.stream.available_cpus", lambda: 1)
        stream = make_runner(
            gcd_setup, tmp_path,
            config=config(2, streaming=True, workers=2)).run()
        tel = stream.telemetry.stream
        assert tel is not None
        assert tel.speculated == 0
        assert tel.carried == 0

    def test_streaming_telemetry_absent_on_barrier_runs(self, gcd_setup,
                                                        tmp_path):
        barrier = make_runner(gcd_setup, tmp_path).run()
        assert barrier.telemetry.stream is None


class TestInterruptResume:
    def test_interrupt_mid_stream_then_resume_is_byte_identical(
            self, gcd_setup, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.stream.available_cpus", lambda: 8)
        reference = make_runner(gcd_setup, tmp_path / "ref",
                                config=config(3, streaming=True)).run()
        runner = make_runner(gcd_setup, tmp_path / "cut",
                             config=config(3, streaming=True))
        # Ask for a stop after the first completed generation, exactly
        # as the SIGINT handler does mid-campaign.  With streaming on,
        # the request lands while the next generation's speculative
        # work may still be in flight; the checkpoint must only cover
        # committed generations.
        original = ExploreRunner._save_checkpoint

        def stop_after_first(self, generation, *args, **kwargs):
            original(self, generation, *args, **kwargs)
            if generation >= 1:
                self.request_stop()

        ExploreRunner._save_checkpoint = stop_after_first
        try:
            partial = runner.run()
        finally:
            ExploreRunner._save_checkpoint = original
        assert partial.state is JobState.CANCELLED
        assert partial.generations == 1
        resumed = make_runner(gcd_setup, tmp_path / "cut",
                              config=config(3, streaming=True)
                              ).run(resume=True)
        assert resumed.state is JobState.DONE
        assert resumed.generations == 3
        assert resumed.front.to_json() == reference.front.to_json()
        assert resumed.front.to_csv() == reference.front.to_csv()

    def test_resume_may_switch_between_barrier_and_streaming(
            self, gcd_setup, tmp_path):
        # ``streaming`` is a scheduling knob, not a search parameter:
        # the checkpoint identity ignores it, so a barrier run's
        # checkpoint resumes under streaming (and vice versa) with the
        # same front as an uninterrupted barrier run.
        reference = make_runner(gcd_setup, tmp_path / "ref",
                                config=config(3)).run()
        runner = make_runner(gcd_setup, tmp_path / "cut",
                             config=config(3))
        original = ExploreRunner._save_checkpoint

        def stop_after_first(self, generation, *args, **kwargs):
            original(self, generation, *args, **kwargs)
            if generation >= 1:
                self.request_stop()

        ExploreRunner._save_checkpoint = stop_after_first
        try:
            partial = runner.run()
        finally:
            ExploreRunner._save_checkpoint = original
        assert partial.state is JobState.CANCELLED
        resumed = make_runner(gcd_setup, tmp_path / "cut",
                              config=config(3, streaming=True)
                              ).run(resume=True)
        assert resumed.state is JobState.DONE
        assert resumed.front.to_json() == reference.front.to_json()

"""Unit tests for the streaming primitives in ``repro.stream``."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.stream import (AdmissionPolicy, InOrderCommitter, StreamStats,
                          available_cpus)


class TestInOrderCommitter:
    def test_in_order_arrivals_commit_immediately(self):
        c = InOrderCommitter()
        assert c.offer(0, "a") == [(0, "a")]
        assert c.offer(1, "b") == [(1, "b")]
        assert c.depth == 0
        assert c.next_index == 2
        assert c.max_depth == 1

    def test_out_of_order_arrivals_are_held_back(self):
        c = InOrderCommitter()
        assert c.offer(2, "c") == []
        assert c.offer(1, "b") == []
        assert c.depth == 2
        # Index 0 releases the whole contiguous prefix at once.
        assert c.offer(0, "a") == [(0, "a"), (1, "b"), (2, "c")]
        assert c.depth == 0
        assert c.next_index == 3
        assert c.max_depth == 3

    def test_start_offset(self):
        c = InOrderCommitter(start=5)
        assert c.next_index == 5
        assert c.offer(5, "x") == [(5, "x")]

    def test_duplicate_index_rejected(self):
        c = InOrderCommitter()
        c.offer(1, "held")
        with pytest.raises(ValueError):
            c.offer(1, "again")
        c.offer(0, "a")
        # Committed indices are just as unrepeatable as held ones.
        with pytest.raises(ValueError):
            c.offer(0, "again")

    def test_max_depth_is_a_high_water_mark(self):
        c = InOrderCommitter()
        c.offer(3, "d")
        c.offer(2, "c")
        c.offer(1, "b")
        c.offer(0, "a")
        c.offer(4, "e")
        assert c.depth == 0
        assert c.max_depth == 4


class TestAdmissionPolicy:
    def test_window_derives_from_workers(self):
        p = AdmissionPolicy()
        assert p.effective_window(4) == 8
        assert p.effective_window(1) == 4   # floor of 4
        assert p.effective_window(0) == 4

    def test_window_override_wins(self):
        assert AdmissionPolicy(max_inflight=3).effective_window(8) == 3

    def test_flush_is_at_least_one(self):
        assert AdmissionPolicy(flush_size=0).effective_flush() == 1
        assert AdmissionPolicy(flush_size=5).effective_flush() == 5

    def test_speculation_defaults_to_window(self):
        p = AdmissionPolicy()
        assert p.effective_speculation(4) == p.effective_window(4)

    def test_speculation_off_and_override(self):
        assert AdmissionPolicy(speculate=False).effective_speculation(4) \
            == 0
        assert AdmissionPolicy(max_speculative=2) \
            .effective_speculation(4) == 2

    def test_shed_backlog_derivation(self):
        assert AdmissionPolicy().effective_shed_backlog(4) == 4
        assert AdmissionPolicy().effective_shed_backlog(0) == 2
        assert AdmissionPolicy(shed_backlog=7) \
            .effective_shed_backlog(0) == 7


class TestStreamStats:
    def test_add_sums_counters_and_maxes_gauges(self):
        a = StreamStats(enqueued=3, submitted=2, completed=2,
                        cache_hits=1, merged=1, flushes=1, speculated=2,
                        shed=1, carried=1, adopted=1, max_inflight=4,
                        max_reorder_depth=2)
        b = StreamStats(enqueued=1, submitted=1, completed=1,
                        max_inflight=2, max_reorder_depth=5)
        a.add(b)
        assert a.enqueued == 4
        assert a.submitted == 3
        assert a.completed == 3
        assert a.max_inflight == 4
        assert a.max_reorder_depth == 5

    def test_as_dict_covers_every_field(self):
        doc = StreamStats(enqueued=2, carried=1, adopted=1).as_dict()
        assert doc["enqueued"] == 2
        assert doc["carried"] == 1
        assert doc["adopted"] == 1
        assert set(doc) == set(StreamStats._COUNTERS
                               + StreamStats._GAUGES)

    def test_summary_mentions_key_counters(self):
        text = StreamStats(enqueued=5, speculated=3, shed=1, carried=2,
                           adopted=1).summary()
        assert "5 enqueued" in text
        assert "3 speculated" in text
        assert "2 carried" in text
        assert "1 adopted" in text

    def test_metrics_absorption(self):
        reg = MetricsRegistry()
        reg.absorb_stream_stats(StreamStats(
            enqueued=4, submitted=3, completed=3, cache_hits=1,
            speculated=2, shed=1, carried=1, adopted=1, max_inflight=6,
            max_reorder_depth=3))
        doc = reg.as_dict()
        assert doc["counters"]["stream.enqueued"] == 4
        assert doc["counters"]["stream.carried"] == 1
        assert doc["counters"]["stream.adopted"] == 1
        assert doc["gauges"]["stream.max_inflight"] == 6
        assert doc["gauges"]["stream.max_reorder_depth"] == 3


def test_available_cpus_is_positive():
    assert available_cpus() >= 1

"""``EvaluationEngine.evaluate_stream``: parity, protocol, carry-over."""

import pytest

from repro.bench import allocation_for
from repro.core import Objective
from repro.core.engine import EvaluationEngine
from repro.lang import compile_source
from repro.profiling import profile, uniform_traces
from repro.stream import AdmissionPolicy, StreamStats

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""

# Scheduling-compatible variants of the same interface: every body uses
# only subtraction and comparison, so the gcd allocation covers all of
# them while each has a distinct fingerprint (distinct cache key).
VARIANT_BODIES = (
    "g = a - b;",
    "g = b - a;",
    "g = (a - b) - b;",
    "g = (b - a) - a;",
)


def _variants():
    return [compile_source("proc f(in a, in b, out g) { %s }" % body)
            for body in VARIANT_BODIES]


def _engine(**kw):
    beh = compile_source(GCD_SRC)
    traces = uniform_traces(beh, 8, lo=1, hi=60, seed=3)
    probs = profile(beh, traces).branch_probs
    return EvaluationEngine(dac98_lib(), allocation_for("gcd"),
                            Objective(), branch_probs=probs, **kw)


def dac98_lib():
    from repro.hw import dac98_library
    return dac98_library()


def _reassemble(stream, n):
    """Collect ``(index, Evaluated)`` pairs back into input order."""
    out = [None] * n
    for i, ev in stream:
        assert out[i] is None
        out[i] = ev
    assert all(ev is not None for ev in out)
    return out


def _signatures(evaluated):
    return [(ev.score, ev.lineage) for ev in evaluated]


class TestStreamMatchesBatch:
    def test_serial_stream_equals_batch(self):
        pairs = [(beh, (f"v{i}",)) for i, beh in enumerate(_variants())]
        with _engine(workers=0) as eng:
            batch = eng.evaluate_batch(pairs)
        with _engine(workers=0) as eng:
            stream = _reassemble(eng.evaluate_stream(iter(pairs)),
                                 len(pairs))
        assert _signatures(stream) == _signatures(batch)

    def test_pool_stream_equals_serial_batch(self):
        pairs = [(beh, (f"v{i}",)) for i, beh in enumerate(_variants())]
        with _engine(workers=0) as eng:
            batch = eng.evaluate_batch(pairs)
        with _engine(workers=2) as eng:
            stream = _reassemble(eng.evaluate_stream(iter(pairs)),
                                 len(pairs))
            assert eng.stream_stats.submitted == len(pairs)
            assert eng.stream_stats.completed == len(pairs)
        assert _signatures(stream) == _signatures(batch)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_duplicates_merge_and_keep_lineage(self, workers):
        v = _variants()
        pairs = [(v[0], ("first",)), (v[1], ("other",)),
                 (v[0].copy(), ("dup",))]
        with _engine(workers=workers) as eng:
            out = _reassemble(eng.evaluate_stream(iter(pairs)),
                              len(pairs))
            stats = eng.stream_stats
        assert out[0].score == out[2].score
        assert out[2].lineage == ("dup",)
        # The duplicate merged onto the in-flight original (pool) or
        # deferred buffer slot / cache (serial): either way no third
        # evaluation was scheduled.
        assert stats.enqueued == 3
        assert stats.merged + stats.cache_hits == 1

    def test_stats_accumulate_into_supplied_object(self):
        pairs = [(beh, ()) for beh in _variants()[:2]]
        stats = StreamStats()
        with _engine(workers=0) as eng:
            list(eng.evaluate_stream(iter(pairs), stats=stats))
            assert eng.stream_stats.enqueued == 0
        assert stats.enqueued == 2
        assert stats.completed == 2


class TestNoneProtocol:
    def test_serial_skips_none_markers(self):
        v = _variants()[:2]
        feed = iter([None, (v[0], ()), None, None, (v[1], ())])
        with _engine(workers=0) as eng:
            out = _reassemble(eng.evaluate_stream(feed), 2)
        assert [ev.behavior for ev in out] == v

    def test_pool_repulls_after_completion(self):
        v = _variants()[:2]

        def feed():
            yield (v[0], ())
            # "No work yet": the stream must not block on this marker —
            # it drains a completion and pulls again.
            yield None
            yield (v[1], ())

        with _engine(workers=2) as eng:
            out = _reassemble(eng.evaluate_stream(feed()), 2)
            assert eng.stream_stats.submitted == 2
        assert [ev.behavior for ev in out] == v

    def test_pool_none_with_empty_window_is_an_error(self):
        with _engine(workers=2) as eng:
            with pytest.raises(RuntimeError):
                list(eng.evaluate_stream(iter([None])))


class TestDetachedSpeculation:
    def test_detached_work_is_never_reevaluated(self):
        """A detachable item submitted once serves a later stream.

        Whether the speculative future finishes inside the first
        stream, is carried and harvested, or is adopted mid-flight by
        the second stream is timing-dependent — but in every case the
        work is submitted to the pool exactly once and the second
        stream's result matches the serial reference.
        """
        v = _variants()
        with _engine(workers=0) as eng:
            reference = eng.evaluate_batch([(v[1], ())])[0]

        def first():
            yield (v[0], ())
            yield (v[1], (), True)   # speculative: stream may end first

        with _engine(workers=2) as eng:
            seen = dict(eng.evaluate_stream(first()))
            # The real item always surfaces; the speculative one only
            # if it finished before the stream ran out of real work.
            assert 0 in seen
            second = _reassemble(
                eng.evaluate_stream(iter([(v[1], ("real",))])), 1)
            stats = eng.stream_stats
            assert not eng._carried
        assert second[0].score == reference.score
        assert second[0].lineage == ("real",)
        assert stats.submitted == 2
        assert stats.carried == stats.adopted \
            + (stats.cache_hits if stats.carried else 0)

    def test_real_waiter_pins_a_speculative_future(self):
        v = _variants()

        def feed():
            yield (v[0], (), True)
            yield (v[0].copy(), ("real",))   # duplicate, but real

        with _engine(workers=2) as eng:
            out = dict(eng.evaluate_stream(feed()))
            # The merge turned the speculative submission into real
            # work: the stream waited for it, nothing was carried.
            assert eng.stream_stats.merged == 1
            assert eng.stream_stats.carried == 0
            assert not eng._carried
        assert set(out) == {0, 1}
        assert out[1].lineage == ("real",)

    def test_detach_flag_is_ignored_serially(self):
        v = _variants()[:1]
        with _engine(workers=0) as eng:
            out = _reassemble(
                eng.evaluate_stream(iter([(v[0], (), True)])), 1)
            assert eng.stream_stats.carried == 0
        assert out[0].behavior is v[0]

    def test_harvest_absorbs_finished_carried_future(self):
        """_harvest_carried moves a done future into the eval cache."""

        class DoneFuture:
            def done(self):
                return True

            def result(self):
                from repro.core.telemetry import EvalStats
                return (("payload", 42.0, EvalStats()), None)

        with _engine(workers=0) as eng:
            eng._carried["somekey"] = DoneFuture()
            stats = StreamStats()
            eng._harvest_carried(stats)
            assert not eng._carried
            assert stats.completed == 1
            assert eng.cache.get("somekey") == ("payload", 42.0)

    def test_harvest_skips_running_and_drops_failed(self):
        class RunningFuture:
            def done(self):
                return False

        class FailedFuture:
            def done(self):
                return True

            def result(self):
                raise RuntimeError("worker died")

        with _engine(workers=0) as eng:
            eng._carried["running"] = RunningFuture()
            eng._carried["failed"] = FailedFuture()
            stats = StreamStats()
            eng._harvest_carried(stats)
            # The running future stays available for adoption; the
            # failed one is forgotten (its key will simply resubmit).
            assert set(eng._carried) == {"running"}
            assert stats.completed == 0
            del eng._carried["running"]

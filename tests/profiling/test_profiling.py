"""Trace generation and profiler tests."""

import statistics

import pytest

from repro.lang import compile_source
from repro.profiling import (TraceCase, TraceSet, gaussian_ar_sequence,
                             gaussian_traces, profile, uniform_traces)


def lag1_autocorr(xs):
    mean = statistics.fmean(xs)
    num = sum((a - mean) * (b - mean) for a, b in zip(xs, xs[1:]))
    den = sum((a - mean) ** 2 for a in xs)
    return num / den if den else 0.0


class TestGaussianAr:
    def test_deterministic_for_seed(self):
        a = gaussian_ar_sequence(100, seed=5)
        b = gaussian_ar_sequence(100, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert gaussian_ar_sequence(100, seed=1) \
            != gaussian_ar_sequence(100, seed=2)

    def test_correlation_increases_with_rho(self):
        low = gaussian_ar_sequence(4000, rho=0.0, seed=3)
        high = gaussian_ar_sequence(4000, rho=0.95, seed=3)
        assert lag1_autocorr(high) > lag1_autocorr(low) + 0.5

    def test_marginal_std_stays_near_target(self):
        xs = gaussian_ar_sequence(8000, std=100.0, rho=0.9, seed=4)
        assert statistics.pstdev(xs) == pytest.approx(100.0, rel=0.15)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            gaussian_ar_sequence(10, rho=1.0)


BEH_SRC = """
proc p(in n, array x[8], out s) {
    var acc = 0;
    var i = 0;
    while (i < n) {
        if (x[i] > 50) { acc = acc + x[i]; }
        i = i + 1;
    }
    s = acc;
}
"""


class TestTraceSets:
    def test_uniform_covers_interface(self):
        beh = compile_source(BEH_SRC)
        traces = uniform_traces(beh, 5, lo=0, hi=7, seed=1)
        assert len(traces) == 5
        for case in traces:
            assert set(case.inputs) == {"n"}
            assert 0 <= case.inputs["n"] <= 7
            assert len(case.arrays["x"]) == 8

    def test_gaussian_traces_fill_arrays(self):
        beh = compile_source(BEH_SRC)
        traces = gaussian_traces(beh, 3, seed=2)
        assert len(traces) == 3
        assert all(len(c.arrays["x"]) == 8 for c in traces)


class TestProfiler:
    def test_branch_probability_matches_data(self):
        beh = compile_source(BEH_SRC)
        # x[i] > 50 for exactly half the elements.
        traces = TraceSet([
            TraceCase({"n": 8}, {"x": [100, 0, 100, 0, 100, 0, 100, 0]}),
        ])
        prof = profile(beh, traces)
        gt = next(n.id for n in beh.graph
                  if n.kind.value == "gt" and beh.graph.control_users(n.id))
        assert prof.branch_probs[gt] == pytest.approx(0.5)
        assert prof.loop_iterations["L1"] == 8

    def test_loop_probability(self):
        beh = compile_source(BEH_SRC)
        traces = TraceSet([TraceCase({"n": 4}, {"x": [0] * 8})])
        prof = profile(beh, traces)
        # 4 continues, 1 exit -> p = 0.8
        assert prof.prob(beh.loop("L1").cond) == pytest.approx(0.8)

    def test_failed_traces_are_counted_and_skipped(self):
        beh = compile_source(BEH_SRC)
        traces = TraceSet([
            TraceCase({"n": 100}, {"x": [0] * 8}),  # out of bounds
            TraceCase({"n": 4}, {"x": [0] * 8}),
        ])
        prof = profile(beh, traces)
        assert prof.failures == 1
        assert prof.runs == 1

    def test_all_failures_raises(self):
        from repro.errors import InterpError
        beh = compile_source(BEH_SRC)
        traces = TraceSet([TraceCase({"n": 100}, {"x": [0] * 8})])
        with pytest.raises(InterpError):
            profile(beh, traces)

    def test_unobserved_condition_uses_default(self):
        beh = compile_source(BEH_SRC)
        traces = TraceSet([TraceCase({"n": 0}, {"x": [0] * 8})])
        prof = profile(beh, traces)
        # The if-condition never executed: default applies.
        gt = next(n.id for n in beh.graph
                  if n.kind.value == "gt" and beh.graph.control_users(n.id))
        assert prof.prob(gt, default=0.5) == 0.5

"""Disabled-tracer overhead guard.

There is no un-instrumented build to diff against, so the guard works
by projection: measure the per-call cost of a NULL_TRACER span
(everything an instrumented call site pays when tracing is off),
count the spans a real traced run emits, and bound
``per_call × span_count`` against the measured untraced runtime.  The
documented budget is < 2 % (docs/observability.md); the real margin is
two to three orders of magnitude, so the assertions below stay far
from flakiness on loaded CI machines.
"""

import time

from repro.bench import allocation_for
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.obs import NULL_TRACER, Tracer

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _null_span_cost(calls=50_000):
    """Seconds per disabled span() call (best of 3 passes)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(calls):
            with NULL_TRACER.span("evaluate"):
                pass
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def _run(trace=None):
    beh = compile_source(GCD_SRC)
    fact = Fact(dac98_library(), config=FactConfig(
        search=SearchConfig(max_outer_iters=2, max_moves=2,
                            in_set_size=3, seed=1,
                            max_candidates_per_seed=12)), trace=trace)
    t0 = time.perf_counter()
    fact.optimize(beh, allocation_for("gcd"), objective=THROUGHPUT)
    return time.perf_counter() - t0


def test_null_span_is_cheap():
    # A generous absolute bound: even byte-code interpretation on a
    # contended box does a no-op context manager in a few hundred ns.
    assert _null_span_cost() < 20e-6


def test_projected_overhead_under_two_percent():
    tracer = Tracer()
    _run(trace=tracer)
    span_count = len(tracer.spans)
    assert span_count > 50  # the run was actually instrumented
    wall = _run(trace=None)
    projected = _null_span_cost() * span_count
    assert projected < 0.02 * wall, (
        f"{span_count} no-op spans project to {projected * 1e3:.3f} ms "
        f"against a {wall * 1e3:.1f} ms untraced run")


def test_null_tracer_allocates_nothing_per_span():
    handles = {id(NULL_TRACER.span("s", k=1)) for _ in range(100)}
    assert len(handles) == 1

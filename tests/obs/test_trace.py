"""Tracer unit tests: nesting, attributes, cross-process adoption."""

import pickle

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanNesting:
    def test_children_close_before_parents(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_parent_links(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
            with tr.span("d"):
                pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["a"].parent is None
        assert by_name["b"].parent == by_name["a"].id
        assert by_name["c"].parent == by_name["b"].id
        assert by_name["d"].parent == by_name["a"].id

    def test_sibling_roots(self):
        tr = Tracer()
        with tr.span("first"):
            pass
        with tr.span("second"):
            pass
        assert all(s.parent is None for s in tr.spans)
        assert len({s.id for s in tr.spans}) == 2

    def test_attrs_at_open_and_set(self):
        tr = Tracer()
        with tr.span("s", mode="x") as sp:
            sp.set(states=7, mode="y")
        assert tr.spans[0].attrs == {"mode": "y", "states": 7}

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("no")
        assert tr.spans[0].attrs["error"] == "ValueError"
        # the stack unwound: a new span is a root again
        with tr.span("after"):
            pass
        assert tr.spans[-1].parent is None

    def test_current_id(self):
        tr = Tracer()
        assert tr.current_id is None
        with tr.span("s"):
            inner = tr.current_id
            assert inner is not None
        assert tr.current_id is None
        assert tr.spans[0].id == inner

    def test_durations_and_timestamps(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.spans
        assert 0.0 <= inner.duration <= outer.duration
        assert inner.start >= outer.start


class TestSpanSerialization:
    def test_round_trip(self):
        span = Span(name="s", id=3, parent=1, start=12.5, duration=0.25,
                    pid=42, attrs={"k": "v"})
        assert Span.from_dict(span.as_dict()) == span

    def test_payload_is_picklable(self):
        tr = Tracer()
        with tr.span("evaluate", cache="miss"):
            pass
        payload = tr.drain_payload()
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert tr.spans == []  # drained


class TestAdopt:
    def _worker_payload(self):
        worker = Tracer()
        with worker.span("schedule"):
            with worker.span("markov.solve"):
                pass
        with worker.span("evaluate"):  # second root
            pass
        return worker.drain_payload()

    def test_reparents_roots_under_open_span(self):
        parent = Tracer()
        with parent.span("evaluate.batch"):
            roots = parent.adopt(self._worker_payload())
        by_name = {s.name: s for s in parent.spans}
        batch = by_name["evaluate.batch"]
        assert by_name["schedule"].parent == batch.id
        assert by_name["evaluate"].parent == batch.id
        assert by_name["markov.solve"].parent == by_name["schedule"].id
        assert sorted(roots) == sorted(
            [by_name["schedule"].id, by_name["evaluate"].id])

    def test_fresh_ids_no_collisions(self):
        parent = Tracer()
        with parent.span("own"):  # consumes id 1, like the worker did
            pass
        parent.adopt(self._worker_payload())
        ids = [s.id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_root_attrs_only_on_roots(self):
        parent = Tracer()
        parent.adopt(self._worker_payload(),
                     root_attrs={"candidate": "ab12"})
        by_name = {s.name: s for s in parent.spans}
        assert by_name["schedule"].attrs["candidate"] == "ab12"
        assert by_name["evaluate"].attrs["candidate"] == "ab12"
        assert "candidate" not in by_name["markov.solve"].attrs

    def test_explicit_parent_id(self):
        parent = Tracer()
        with parent.span("anchor"):
            pass
        anchor = parent.spans[0].id
        parent.adopt(self._worker_payload(), parent_id=anchor)
        assert all(s.parent == anchor for s in parent.spans
                   if s.name in ("schedule", "evaluate"))

    def test_pid_preserved(self):
        payload = self._worker_payload()
        doctored = [dict(d, pid=99999) for d in payload]
        parent = Tracer()
        parent.adopt(doctored)
        assert {s.pid for s in parent.spans} == {99999}

    def test_empty_payload(self):
        parent = Tracer()
        assert parent.adopt(()) == []
        assert parent.spans == []


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", k=1) as sp:
            sp.set(more=2)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.current_id is None
        assert NULL_TRACER.drain_payload() == ()
        assert NULL_TRACER.adopt(({"id": 1},)) == []

    def test_shared_handle(self):
        # one module-level handle: span() allocates nothing
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("s"):
                raise RuntimeError

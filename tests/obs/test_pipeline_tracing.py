"""End-to-end tracing: span trees from real runs, on/off determinism,
and cross-worker re-parenting.

The contract pinned here (see docs/observability.md): tracing reads
clocks and nothing else, so a traced run's *results* — search history,
lineage, scores, Pareto fronts — are byte-identical to an untraced
run's, on any evaluation backend.
"""

import json

import pytest

import repro
from repro.bench import allocation_for
from repro.core import Fact, FactConfig, SearchConfig, THROUGHPUT
from repro.hw import dac98_library
from repro.lang import compile_source
from repro.obs import Tracer, load_trace, write_trace
from repro.profiling import uniform_traces

LIB = dac98_library()

GCD_SRC = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _optimize(trace=None, workers=0, seed=1):
    beh = compile_source(GCD_SRC)
    traces = uniform_traces(beh, 8, lo=1, hi=60, seed=3)
    fact = Fact(LIB, config=FactConfig(
        search=SearchConfig(max_outer_iters=2, max_moves=2,
                            in_set_size=3, seed=seed,
                            max_candidates_per_seed=12,
                            workers=workers)), trace=trace)
    return fact.optimize(beh, allocation_for("gcd"), traces=traces,
                         objective=THROUGHPUT)


def _fingerprint(res):
    """Everything a run produces, minus wall-clock noise."""
    assert res.best.result is not None
    return (res.best.score, tuple(res.search.history),
            res.best.lineage, res.best.result.stg.to_dot())


class TestSpanTree:
    def test_expected_stages_present_and_nested(self):
        tracer = Tracer()
        _optimize(trace=tracer)
        names = {s.name for s in tracer.spans}
        assert {"optimize", "profile", "schedule", "partition",
                "search", "search.generation", "apply",
                "evaluate.batch", "evaluate",
                "markov.solve"} <= names
        by_id = {s.id: s for s in tracer.spans}
        # every parent link resolves (no orphans)...
        for span in tracer.spans:
            assert span.parent is None or span.parent in by_id
        # ...and the key stages hang off the right parents
        for span in tracer.spans:
            parent = by_id.get(span.parent)
            if span.name == "search.generation":
                assert parent.name == "search"
            elif span.name == "evaluate":
                assert parent.name == "evaluate.batch"
        roots = [s for s in tracer.spans if s.parent is None]
        assert [r.name for r in roots] == ["optimize"]

    def test_evaluate_spans_carry_cache_attr(self):
        tracer = Tracer()
        _optimize(trace=tracer)
        verdicts = {s.attrs.get("cache") for s in tracer.spans
                    if s.name == "evaluate"}
        assert "miss" in verdicts
        for span in tracer.spans:
            if span.name == "evaluate":
                assert span.attrs.get("candidate")

    def test_exported_trace_is_strict_json(self, tmp_path):
        tracer = Tracer()
        _optimize(trace=tracer)
        path = str(tmp_path / "t.json")
        write_trace(path, tracer.spans, format="chrome")
        # json.loads with no inf/nan allowance: unschedulable
        # candidates must not leak float("inf") scores
        json.loads(open(path).read(), parse_constant=_reject_constant)


def _reject_constant(name):
    raise AssertionError(f"non-strict JSON constant {name} in trace")


class TestDeterminism:
    def test_traced_matches_untraced_serial(self):
        assert _fingerprint(_optimize(trace=Tracer())) \
            == _fingerprint(_optimize(trace=None))

    def test_traced_parallel_matches_untraced_serial(self):
        assert _fingerprint(_optimize(trace=Tracer(), workers=2)) \
            == _fingerprint(_optimize(trace=None, workers=0))


class TestWorkerAdoption:
    def test_worker_spans_reparented_across_pids(self):
        tracer = Tracer()
        res = _optimize(trace=tracer, workers=2)
        assert res.search.telemetry.backend == "process"
        pids = {s.pid for s in tracer.spans}
        assert len(pids) >= 2, "no spans shipped from workers"
        by_id = {s.id: s for s in tracer.spans}
        worker_spans = [s for s in tracer.spans
                        if s.pid != tracer.spans[-1].pid]
        assert worker_spans
        for span in tracer.spans:
            assert span.parent is None or span.parent in by_id
        # worker evaluate roots hang under the parent's batch span
        for span in worker_spans:
            if span.name == "evaluate":
                assert by_id[span.parent].name == "evaluate.batch"
            if span.name == "markov.solve":
                assert by_id[span.parent].pid == span.pid


class TestExploreTracing:
    def test_explore_spans_and_front_identity(self, tmp_path):
        beh = compile_source(GCD_SRC)
        kw = dict(alloc="sb1=2,cp1=1,e1=1", generations=2,
                  profile_traces=6,
                  config=repro.ExploreConfig(
                      population_size=4, max_candidates_per_seed=6,
                      seed=0, warm_start=False))

        tracer = Tracer()
        traced = repro.explore(beh, store=str(tmp_path / "s1"),
                               trace=tracer, **kw)
        untraced = repro.explore(beh, store=str(tmp_path / "s2"), **kw)
        assert traced.front.to_json() == untraced.front.to_json()
        names = {s.name for s in tracer.spans}
        assert {"explore", "explore.generation", "evaluate.batch",
                "schedule"} <= names


class TestCliTrace:
    @pytest.fixture()
    def gcd_file(self, tmp_path):
        path = tmp_path / "gcd.bdl"
        path.write_text(GCD_SRC)
        return str(path)

    def test_optimize_writes_chrome_trace(self, gcd_file, tmp_path,
                                          capsys):
        from repro.cli import main
        out = str(tmp_path / "t.json")
        assert main(["optimize", gcd_file,
                     "--alloc", "sb1=2,cp1=1,e1=1",
                     "--iterations", "1",
                     "--trace", out, "--trace-format", "chrome"]) == 0
        captured = capsys.readouterr()
        assert "trace written to" in captured.err
        assert "trace written to" not in captured.out
        doc = json.load(open(out))
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"compile", "optimize", "schedule", "evaluate"} <= names
        assert doc["otherData"]["metrics"]["counters"][
            "engine.evaluations"] > 0

    def test_summarize_consistent_with_telemetry(self, gcd_file,
                                                 tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "t.jsonl")
        assert main(["optimize", gcd_file,
                     "--alloc", "sb1=2,cp1=1,e1=1",
                     "--iterations", "1", "--stats",
                     "--trace", out]) == 0
        stats_out = capsys.readouterr().out
        spans, metrics = load_trace(out)
        evals = metrics["counters"]["engine.evaluations"]
        # the --stats line reports the same evaluation count the
        # trace's embedded metrics snapshot carries
        assert f"evaluations: {int(evals)} " in stats_out

        assert main(["trace", "summarize", out]) == 0
        summary = capsys.readouterr().out
        assert "engine.evaluations" in summary
        assert f"{int(evals):7g}" in summary

    def test_run_and_schedule_traces(self, gcd_file, tmp_path):
        from repro.cli import main
        run_out = str(tmp_path / "run.jsonl")
        assert main(["run", gcd_file, "a=36", "b=60",
                     "--trace", run_out]) == 0
        spans, _ = load_trace(run_out)
        assert [d["name"] for d in spans] == ["compile", "execute"]

        sched_out = str(tmp_path / "sched.jsonl")
        assert main(["schedule", gcd_file,
                     "--alloc", "sb1=2,cp1=1,e1=1",
                     "--trace", sched_out]) == 0
        spans, _ = load_trace(sched_out)
        assert {"compile", "profile", "schedule"} <= \
            {d["name"] for d in spans}

    def test_summarize_missing_file(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["trace", "summarize", "/nonexistent.trace"])

"""summarize_trace / format_summary on synthetic span trees."""

import pytest

from repro.obs.summary import format_summary, summarize_trace


def _span(name, id, parent, duration, pid=1, **attrs):
    return {"name": name, "id": id, "parent": parent, "start": 0.0,
            "duration": duration, "pid": pid, "attrs": attrs}


class TestSummarize:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            _span("search", 1, None, 10.0),
            _span("evaluate", 2, 1, 6.0),
            _span("schedule", 3, 2, 4.0),
        ]
        report = summarize_trace(spans)
        stages = report["stages"]
        assert stages["search"]["self"] == pytest.approx(4.0)
        assert stages["evaluate"]["self"] == pytest.approx(2.0)
        assert stages["schedule"]["self"] == pytest.approx(4.0)
        assert report["wall"] == pytest.approx(10.0)
        assert stages["search"]["share"] == pytest.approx(0.4)

    def test_same_name_spans_aggregate(self):
        spans = [
            _span("batch", 1, None, 9.0),
            _span("evaluate", 2, 1, 3.0),
            _span("evaluate", 3, 1, 5.0),
        ]
        stages = summarize_trace(spans)["stages"]
        assert stages["evaluate"]["count"] == 2
        assert stages["evaluate"]["total"] == pytest.approx(8.0)
        assert stages["batch"]["self"] == pytest.approx(1.0)

    def test_clock_skew_clamped_to_zero(self):
        # a same-process child can nominally exceed the parent span
        spans = [
            _span("batch", 1, None, 1.0),
            _span("evaluate", 2, 1, 1.5),
        ]
        report = summarize_trace(spans)
        assert report["stages"]["batch"]["self"] == 0.0

    def test_adopted_worker_spans_keep_parent_self_time(self):
        # Spans adopted from pool workers (other pid) overlap the
        # parent's wall time instead of consuming it: the parent spent
        # its own time waiting/collecting, not running the child.
        spans = [
            _span("evaluate.batch", 1, None, 1.0),
            _span("schedule", 2, 1, 0.8, pid=7),
        ]
        report = summarize_trace(spans)
        assert report["stages"]["evaluate.batch"]["self"] == \
            pytest.approx(1.0)
        assert report["stages"]["schedule"]["self"] == pytest.approx(0.8)
        assert report["processes"] == 2

    def test_mixed_pid_children_subtract_only_local_ones(self):
        spans = [
            _span("evaluate.batch", 1, None, 2.0),
            _span("collect", 2, 1, 0.5),           # same pid: subtracts
            _span("schedule", 3, 1, 1.2, pid=9),   # adopted: does not
        ]
        stages = summarize_trace(spans)["stages"]
        assert stages["evaluate.batch"]["self"] == pytest.approx(1.5)

    def test_unknown_parent_id_assumes_same_process(self):
        # A child whose parent span is missing from the trace falls
        # back to the old same-process accounting (no pid to compare).
        spans = [
            _span("orphan", 2, 99, 0.5),
        ]
        report = summarize_trace(spans)
        assert report["stages"]["orphan"]["self"] == pytest.approx(0.5)

    def test_empty(self):
        report = summarize_trace([])
        assert report == {"stages": {}, "wall": 0.0, "span_count": 0,
                          "processes": 0, "metrics": {}}

    def test_metrics_echoed(self):
        metrics = {"counters": {"x": 1}}
        assert summarize_trace([], metrics)["metrics"] == metrics


class TestFormat:
    def test_table_and_metric_lines(self):
        spans = [
            _span("schedule", 1, None, 2.0),
            _span("apply", 2, None, 1.0),
        ]
        metrics = {
            "counters": {"region_cache.requests": 185,
                         "region_cache.hits": 11},
            "gauges": {"region_cache.hit_rate": 0.059,
                       "engine.reschedule_fraction": 0.944},
            "histograms": {},
        }
        text = format_summary(summarize_trace(spans, metrics))
        lines = text.splitlines()
        assert lines[0].startswith("spans: 2")
        # sorted by self time: schedule first
        schedule_at = next(i for i, l in enumerate(lines)
                           if l.startswith("schedule"))
        apply_at = next(i for i, l in enumerate(lines)
                        if l.startswith("apply"))
        assert schedule_at < apply_at
        assert any("region_cache.hit_rate" in l and "5.9%" in l
                   for l in lines)
        assert any("engine.reschedule_fraction" in l and "94.4%" in l
                   for l in lines)
        assert any("region_cache.requests" in l for l in lines)

    def test_no_metrics_section_when_empty(self):
        text = format_summary(summarize_trace(
            [_span("s", 1, None, 1.0)]))
        assert "metrics:" not in text

"""Trace export/load: JSONL and Chrome round trips, schema validity."""

import json

import pytest

from repro.obs.export import (TRACE_SCHEMA, load_trace, write_chrome,
                              write_jsonl, write_trace)
from repro.obs.trace import Tracer


def _sample_tracer():
    tr = Tracer()
    with tr.span("optimize", objective="throughput"):
        with tr.span("schedule") as sp:
            sp.set(states=4)
        with tr.span("evaluate", cache="miss", score=None) as sp:
            sp.set(unschedulable=True)
    return tr


METRICS = {"counters": {"engine.evaluations": 3},
           "gauges": {"region_cache.hit_rate": 0.25},
           "histograms": {}}


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = _sample_tracer()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, tr.spans, METRICS)
        spans, metrics = load_trace(path)
        assert metrics == METRICS
        assert spans == [s.as_dict() for s in tr.spans]

    def test_line_structure(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, _sample_tracer().spans, METRICS)
        lines = [json.loads(line) for line in
                 open(path, encoding="utf-8")]
        assert lines[0] == {"type": "meta", "schema": TRACE_SCHEMA,
                            "format": "repro-trace"}
        assert [rec["type"] for rec in lines[1:-1]] == ["span"] * 3
        assert lines[-1]["type"] == "metrics"

    def test_no_metrics_record_when_none(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, _sample_tracer().spans)
        spans, metrics = load_trace(path)
        assert len(spans) == 3 and metrics == {}


class TestChrome:
    def test_schema_validity(self, tmp_path):
        tr = _sample_tracer()
        path = str(tmp_path / "t.json")
        write_chrome(path, tr.spans, METRICS)
        doc = json.load(open(path, encoding="utf-8"))  # strict JSON
        assert set(doc) >= {"traceEvents", "otherData"}
        events = doc["traceEvents"]
        assert len(events) == len(tr.spans)
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0  # relative to earliest span
            assert event["pid"] == event["tid"]
            assert "id" in event["args"]
            assert "parent" in event["args"]
        assert doc["otherData"]["metrics"] == METRICS
        assert doc["otherData"]["schema"] == TRACE_SCHEMA

    def test_round_trip_recovers_tree(self, tmp_path):
        tr = _sample_tracer()
        path = str(tmp_path / "t.json")
        write_chrome(path, tr.spans, METRICS)
        spans, metrics = load_trace(path)
        assert metrics == METRICS
        by_name = {d["name"]: d for d in spans}
        assert by_name["schedule"]["parent"] == by_name["optimize"]["id"]
        assert by_name["schedule"]["attrs"]["states"] == 4
        assert by_name["evaluate"]["attrs"]["cache"] == "miss"
        # durations survive the s -> us -> s round trip
        for span, original in zip(spans, tr.spans):
            assert span["duration"] == pytest.approx(
                original.duration, abs=1e-9)

    def test_timestamps_relative_and_ordered(self, tmp_path):
        tr = _sample_tracer()
        path = str(tmp_path / "t.json")
        write_chrome(path, tr.spans)
        events = json.load(open(path))["traceEvents"]
        assert min(e["ts"] for e in events) == 0.0


class TestDispatch:
    def test_write_trace_formats(self, tmp_path):
        tr = _sample_tracer()
        for fmt in ("jsonl", "chrome"):
            path = str(tmp_path / f"t.{fmt}")
            write_trace(path, tr.spans, METRICS, format=fmt)
            spans, metrics = load_trace(path)
            assert len(spans) == 3 and metrics == METRICS

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(str(tmp_path / "t"), [], format="xml")

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("")
        assert load_trace(str(path)) == ([], {})

    def test_accepts_span_dicts(self, tmp_path):
        docs = [s.as_dict() for s in _sample_tracer().spans]
        path = str(tmp_path / "t.jsonl")
        write_trace(path, docs)
        spans, _ = load_trace(path)
        assert spans == docs

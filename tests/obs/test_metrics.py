"""MetricsRegistry unit tests: instruments, merge, absorption."""

from repro.core.evalcache import CacheStats
from repro.core.telemetry import EvalStats
from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 4)
        assert reg.value("a.b") == 5
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.set("g", 0.25)
        reg.set("g", 0.75)  # last write wins
        assert reg.value("g") == 0.75

    def test_value_default(self):
        assert MetricsRegistry().value("missing", -1.0) == -1.0

    def test_histogram(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        h = reg.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0


class TestMerge:
    def _sample(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 0.5)
        reg.observe("h", 1.0)
        reg.observe("h", 5.0)
        return reg

    def test_merge_adds_counters_combines_histograms(self):
        a, b = self._sample(), self._sample()
        b.set("g", 0.9)
        a.merge(b)
        assert a.value("c") == 4
        assert a.value("g") == 0.9
        h = a.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (4, 12.0, 1.0, 5.0)

    def test_merge_dict_equals_merge(self):
        a, b = self._sample(), self._sample()
        via_obj = self._sample()
        via_obj.merge(b)
        a.merge_dict(b.as_dict())
        assert a.as_dict() == via_obj.as_dict()

    def test_as_dict_shape(self):
        doc = self._sample().as_dict()
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert doc["counters"] == {"c": 2}
        assert doc["histograms"]["h"]["count"] == 2


class TestAbsorption:
    def test_absorb_cache_stats(self):
        reg = MetricsRegistry()
        stats = CacheStats(hits=7, misses=3, evictions=1)
        reg.absorb_cache_stats("engine.cache", stats)
        assert reg.value("engine.cache.hits") == 7
        assert reg.value("engine.cache.requests") == 10
        assert reg.value("engine.cache.hit_rate") == stats.hit_rate

    def test_absorb_eval_stats_canonical_names(self):
        reg = MetricsRegistry()
        stats = EvalStats(scheduled=4, region_requests=20,
                          region_hits=5, region_evictions=2,
                          states_built=30, states_reused=10,
                          markov_local=3, markov_reused=1,
                          markov_full=1, sched_time=0.5,
                          solver_time=0.1)
        reg.absorb_eval_stats(stats)
        assert reg.value("engine.scheduled") == 4
        assert reg.value("region_cache.requests") == 20
        assert reg.value("region_cache.misses") == 15
        assert reg.value("region_cache.evictions") == 2
        assert reg.value("region_cache.hit_rate") == 0.25
        assert reg.value("stg.states_built") == 30
        assert reg.value("engine.reschedule_fraction") == 0.75
        assert reg.value("markov.full") == 1
        assert reg.value("markov.solver_seconds") == 0.1

    def test_summary_renders_every_instrument(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 0.5)
        reg.observe("h", 1.5)
        text = reg.summary()
        assert "c = 2" in text
        assert "g = 0.5000" in text
        assert "h: n=1" in text

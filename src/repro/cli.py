"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``        — parse + lower a BDL file, print CDFG stats
  (``--dot`` emits Graphviz).
* ``run FILE k=v ...``    — execute a behavior on given inputs.
* ``schedule FILE``       — schedule and print STG statistics
  (``--alloc a1=2,sb1=1`` sets the allocation, ``--dot`` emits the STG).
* ``optimize FILE``       — run the full FACT flow
  (``--objective power``).
* ``table2 [CIRCUIT...]`` — regenerate the paper's Table-2 rows.

Examples::

    python -m repro compile examples/gcd.bdl --dot > gcd.dot
    python -m repro optimize examples/gcd.bdl --alloc sb1=2,cp1=1,e1=1
    python -m repro table2 gcd pps
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .bench.table2 import (format_power_table, format_throughput_table,
                           run_power_row, run_throughput_row)
from .cdfg.dot import behavior_to_dot
from .core.fact import Fact, FactConfig
from .core.search import SearchConfig
from .errors import ReproError
from .hw import Allocation, dac98_library
from .lang import compile_source
from .profiling import profile, uniform_traces
from .sched import SchedConfig, Scheduler


def _parse_alloc(text: Optional[str]) -> Allocation:
    counts: Dict[str, int] = {}
    if text:
        for item in text.split(","):
            name, _, value = item.partition("=")
            if not value:
                raise SystemExit(f"bad allocation item {item!r}; expected "
                                 f"name=count")
            counts[name.strip()] = int(value)
    else:
        # A generous default: two of everything.
        counts = {name: 2 for name in dac98_library().fu_types}
    return Allocation(counts)


def _parse_inputs(pairs: List[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"bad input {pair!r}; expected name=value")
        out[name] = int(value)
    return out


def _load(path: str):
    try:
        with open(path) as handle:
            return compile_source(handle.read())
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ReproError as exc:
        raise SystemExit(f"{path}: {exc}")


def cmd_compile(args: argparse.Namespace) -> int:
    behavior = _load(args.file)
    if args.dot:
        print(behavior_to_dot(behavior))
        return 0
    stats = behavior.graph.stats()
    print(f"{behavior.name}: {stats['nodes']} nodes, "
          f"{stats['data_edges']} data edges, "
          f"{stats['control_edges']} control edges")
    print(f"inputs: {behavior.inputs}  outputs: {behavior.outputs}  "
          f"arrays: {sorted(behavior.arrays)}")
    print(f"loops: {[lp.name for lp in behavior.loops()]}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    behavior = _load(args.file)
    from .cdfg.interp import execute
    result = execute(behavior, _parse_inputs(args.inputs))
    for name, value in sorted(result.outputs.items()):
        print(f"{name} = {value}")
    for name, iters in sorted(result.loop_iterations.items()):
        print(f"# loop {name}: {iters} iterations")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    behavior = _load(args.file)
    library = dac98_library()
    allocation = _parse_alloc(args.alloc)
    probs = None
    if args.profile_traces > 0:
        traces = uniform_traces(behavior, args.profile_traces,
                                lo=1, hi=255, seed=args.seed)
        probs = profile(behavior, traces).branch_probs
    try:
        result = Scheduler(behavior, library, allocation,
                           SchedConfig(clock=args.clock),
                           probs).schedule()
    except ReproError as exc:
        raise SystemExit(f"scheduling failed: {exc}")
    if args.dot:
        print(result.stg.to_dot())
        return 0
    print(f"{behavior.name}: {result.n_states()} states, expected "
          f"{result.average_length():.2f} cycles per execution "
          f"(throughput x1000 = {1000 * result.throughput():.2f})")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    behavior = _load(args.file)
    library = dac98_library()
    allocation = _parse_alloc(args.alloc)
    traces = uniform_traces(behavior, args.profile_traces or 12,
                            lo=1, hi=255, seed=args.seed)
    fact = Fact(library, config=FactConfig(
        sched=SchedConfig(clock=args.clock),
        search=SearchConfig(max_outer_iters=args.iterations,
                            seed=args.seed)))
    try:
        result = fact.optimize(behavior, allocation, traces=traces,
                               objective=args.objective)
    except ReproError as exc:
        raise SystemExit(f"optimization failed: {exc}")
    print(f"initial: {result.initial_length:.2f} cycles")
    print(f"optimized: {result.best_length:.2f} cycles "
          f"({result.speedup:.2f}x)")
    for step in result.best.lineage:
        print(f"  - {step}")
    if args.objective == "power":
        report = result.power_report(library)
        print(f"power: {report['initial_power']:.2f} -> "
              f"{report['optimized_power']:.2f} "
              f"({100 * report['reduction']:.1f}% at "
              f"{report['scaled_vdd']:.2f} V)")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    names = args.circuits or ["gcd", "fir", "test2", "sintran", "igf",
                              "pps"]
    rows = []
    for name in names:
        print(f"running {name}...", file=sys.stderr)
        rows.append(run_throughput_row(name))
    print(format_throughput_table(rows))
    if args.power:
        prows = []
        for name in names:
            print(f"running {name} (power)...", file=sys.stderr)
            prows.append(run_power_row(name))
        print()
        print(format_power_table(prows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACT (DAC 1998) reproduction: throughput- and "
                    "power-optimizing transformations for CFI behaviors")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="parse and lower a BDL file")
    p.add_argument("file")
    p.add_argument("--dot", action="store_true",
                   help="emit the CDFG as Graphviz DOT")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a behavior")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", metavar="name=value")
    p.set_defaults(func=cmd_run)

    for name, func in (("schedule", cmd_schedule),
                       ("optimize", cmd_optimize)):
        p = sub.add_parser(name)
        p.add_argument("file")
        p.add_argument("--alloc", help="e.g. a1=2,sb1=1,cp1=1")
        p.add_argument("--clock", type=float, default=25.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--profile-traces", type=int, default=12)
        if name == "schedule":
            p.add_argument("--dot", action="store_true",
                           help="emit the STG as Graphviz DOT")
        else:
            p.add_argument("--objective",
                           choices=("throughput", "power"),
                           default="throughput")
            p.add_argument("--iterations", type=int, default=6,
                           help="search outer iterations")
        p.set_defaults(func=func)

    p = sub.add_parser("table2", help="regenerate the paper's Table 2")
    p.add_argument("circuits", nargs="*",
                   help="subset of circuits (default: all six)")
    p.add_argument("--power", action="store_true",
                   help="also run the power-optimization columns")
    p.set_defaults(func=cmd_table2)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

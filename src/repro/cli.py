"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``        — parse + lower a BDL file, print CDFG stats
  (``--dot`` emits Graphviz).
* ``run FILE k=v ...``    — execute a behavior on given inputs.
* ``schedule FILE``       — schedule and print STG statistics
  (``--alloc a1=2,sb1=1`` sets the allocation, ``--dot`` emits the STG).
* ``optimize FILE``       — run the full FACT flow
  (``--objective power``; ``--workers N`` fans candidate evaluation out
  across N processes; ``--stats`` prints per-generation engine
  telemetry including the cache hit rate).
* ``explore FILE``        — Pareto design-space exploration over
  throughput, power and area (``--store`` persists every evaluation;
  SIGINT checkpoints cleanly and ``--resume`` continues bit-for-bit;
  ``--export front.json`` / ``--csv front.csv`` write the front).
* ``serve``               — run an optimization server draining the
  job queue with a sharded worker pool (``--workers N``; SIGTERM
  drains gracefully; see ``docs/service.md``).
* ``submit FILE``         — enqueue an exploration job; prints its
  content-derived id (idempotent).
* ``job list|status|result`` — inspect queued jobs / fetch merged
  fronts.
* ``store sync SRC DST``  — federate two run stores (conflict-free
  union; ``--both`` merges in both directions).
* ``fuzz run|replay|shrink`` — differential fuzzing over seeded random
  circuits: run a campaign (``--count``/``--seed``/``--report``),
  replay one finding from its seed + config, or minimize it (see
  ``docs/fuzzing.md``).
* ``table2 [CIRCUIT...]`` — regenerate the paper's Table-2 rows.
* ``trace summarize FILE`` — aggregate a recorded trace file into a
  per-stage self-time table plus the run's metric counters.

Shared option groups are defined once as ``argparse`` parent parsers
(`--store`/`--workers`/`--trace` are the same flags with the same
semantics on ``explore`` and ``serve``).

Every pipeline command additionally accepts ``--trace FILE`` (record
nested spans — compile / schedule / evaluate / search.generation / ...
— to FILE) and ``--trace-format {jsonl,chrome}`` (``chrome`` loads
straight into ``chrome://tracing`` / Perfetto).  Tracing never changes
results; see ``docs/observability.md``.

Examples::

    python -m repro compile examples/gcd.bdl --dot > gcd.dot
    python -m repro optimize examples/gcd.bdl --alloc sb1=2,cp1=1,e1=1
    python -m repro optimize examples/gcd.bdl --workers 4 --stats
    python -m repro optimize examples/gcd.bdl --trace out.json \\
        --trace-format chrome
    python -m repro trace summarize out.json
    python -m repro table2 gcd pps

The commands are thin wrappers over the :mod:`repro.api` facade
(``repro.compile`` / ``repro.schedule`` / ``repro.optimize``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from . import api
from .bench.table2 import (format_power_table, format_throughput_table,
                           run_power_row, run_throughput_row)
from .cdfg.dot import behavior_to_dot
from .core.search import SearchConfig
from .errors import ConfigError, ReproError
from .hw import Allocation
from .obs.trace import NULL_TRACER, AnyTracer, Tracer
from .profiling import profile, uniform_traces
from .sched import SchedConfig


def _parse_alloc(text: Optional[str]) -> Allocation:
    """CLI allocation spec → :class:`Allocation`.

    Raises :class:`~repro.errors.ConfigError` (a
    :class:`~repro.errors.ReproError`) on malformed items, non-integer
    counts, or negative counts; :func:`main` renders it as a clean
    command-line error.
    """
    return api.coerce_allocation(text)


def _parse_inputs(pairs: List[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise ConfigError(f"bad input {pair!r}; expected name=value")
        try:
            out[name] = int(value)
        except ValueError:
            raise ConfigError(
                f"input {name!r} must be an integer, got {value!r}"
            ) from None
    return out


def _tracer_for(args: argparse.Namespace) -> AnyTracer:
    """A live :class:`Tracer` when ``--trace`` was given, else the
    shared no-op (so command bodies thread one object unconditionally).
    """
    return Tracer() if getattr(args, "trace", None) else NULL_TRACER


def _export_trace(args: argparse.Namespace, tracer: AnyTracer,
                  metrics=None) -> None:
    """Write the recorded spans to ``--trace FILE`` (if given).

    The confirmation goes to stderr so ``--dot`` and other
    machine-readable stdout stays clean.
    """
    if not getattr(args, "trace", None):
        return
    from .obs import write_trace
    write_trace(args.trace, tracer.spans, metrics,
                format=args.trace_format)
    print(f"trace written to {args.trace} "
          f"({len(tracer.spans)} spans, {args.trace_format})",
          file=sys.stderr)


def _load(path: str):
    # The CLI always takes a file (api.compile would fall back to
    # treating a missing path as source text and report a confusing
    # lex error on a typo'd filename).
    if not os.path.isfile(path):
        raise SystemExit(f"error: cannot read {path}: no such file")
    try:
        return api.compile(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def cmd_compile(args: argparse.Namespace) -> int:
    tracer = _tracer_for(args)
    with tracer.span("compile", file=args.file) as span:
        behavior = _load(args.file)
        span.set(behavior=behavior.name)
    stats = behavior.graph.stats()
    _export_trace(args, tracer)
    if args.dot:
        print(behavior_to_dot(behavior))
        return 0
    print(f"{behavior.name}: {stats['nodes']} nodes, "
          f"{stats['data_edges']} data edges, "
          f"{stats['control_edges']} control edges")
    print(f"inputs: {behavior.inputs}  outputs: {behavior.outputs}  "
          f"arrays: {sorted(behavior.arrays)}")
    print(f"loops: {[lp.name for lp in behavior.loops()]}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    tracer = _tracer_for(args)
    with tracer.span("compile", file=args.file):
        behavior = _load(args.file)
    from .cdfg.interp import execute
    with tracer.span("execute", behavior=behavior.name) as span:
        result = execute(behavior, _parse_inputs(args.inputs))
        span.set(loop_iterations=sum(result.loop_iterations.values()))
    _export_trace(args, tracer)
    for name, value in sorted(result.outputs.items()):
        print(f"{name} = {value}")
    for name, iters in sorted(result.loop_iterations.items()):
        print(f"# loop {name}: {iters} iterations")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    tracer = _tracer_for(args)
    with tracer.span("compile", file=args.file):
        behavior = _load(args.file)
    probs = None
    if args.profile_traces > 0:
        with tracer.span("profile", traces=args.profile_traces):
            traces = uniform_traces(behavior, args.profile_traces,
                                    lo=1, hi=255, seed=args.seed)
            probs = profile(behavior, traces).branch_probs
    result = api.schedule(
        behavior, alloc=args.alloc,
        config=api.ReproConfig(sched=SchedConfig(clock=args.clock)),
        branch_probs=probs, trace=tracer)
    _export_trace(args, tracer)
    if args.dot:
        print(result.stg.to_dot())
        return 0
    print(f"{behavior.name}: {result.n_states()} states, expected "
          f"{result.average_length():.2f} cycles per execution "
          f"(throughput x1000 = {1000 * result.throughput():.2f})")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    tracer = _tracer_for(args)
    with tracer.span("compile", file=args.file):
        behavior = _load(args.file)
    config = api.ReproConfig(
        sched=SchedConfig(clock=args.clock),
        search=SearchConfig(max_outer_iters=args.iterations,
                            seed=args.seed,
                            incremental=not args.no_incremental,
                            incremental_enumeration=(
                                not args.no_incremental_enum),
                            numeric_backend=args.numeric_backend,
                            streaming=args.streaming,
                            **_strategy_fields(args)),
        workers=args.workers)
    result = api.optimize(
        behavior, objective=args.objective, config=config,
        alloc=args.alloc, profile_traces=args.profile_traces,
        trace=tracer)
    metrics = (result.telemetry.metrics().as_dict()
               if result.telemetry is not None else None)
    _export_trace(args, tracer, metrics)
    print(f"initial: {result.initial_length:.2f} cycles")
    print(f"optimized: {result.best_length:.2f} cycles "
          f"({result.speedup:.2f}x)")
    for step in result.best.lineage:
        print(f"  - {step}")
    if args.objective == "power":
        from .hw import dac98_library
        report = result.power_report(dac98_library())
        print(f"power: {report['initial_power']:.2f} -> "
              f"{report['optimized_power']:.2f} "
              f"({100 * report['reduction']:.1f}% at "
              f"{report['scaled_vdd']:.2f} V)")
    if args.stats and result.telemetry is not None:
        print(result.telemetry.summary())
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    tracer = _tracer_for(args)
    with tracer.span("compile", file=args.file):
        behavior = _load(args.file)
    from .core.search import SearchConfig as _SearchConfig
    from .explore import ExploreConfig
    search = _SearchConfig(max_outer_iters=args.iterations,
                           seed=args.seed, workers=args.workers,
                           incremental=not args.no_incremental,
                           incremental_enumeration=(
                               not args.no_incremental_enum),
                           numeric_backend=args.numeric_backend,
                           streaming=args.streaming,
                           **_strategy_fields(args))
    config = ExploreConfig(
        generations=args.generations,
        population_size=args.population,
        max_candidates_per_seed=args.candidates_per_seed,
        seed=args.seed, workers=args.workers,
        warm_start=not args.no_warm_start,
        warm_start_transfer=args.warm_start_transfer,
        sched=SchedConfig(clock=args.clock), search=search,
        incremental=not args.no_incremental,
        incremental_enumeration=not args.no_incremental_enum,
        numeric_backend=args.numeric_backend,
        streaming=args.streaming)
    result = api.explore(
        behavior, config=config, alloc=args.alloc,
        profile_traces=args.profile_traces, store=args.store,
        checkpoint=args.checkpoint, resume=args.resume, trace=tracer)
    _export_trace(args, tracer,
                  result.telemetry.metrics().as_dict())
    from .service.jobs import JobState
    front = result.front
    interrupted = result.state is JobState.CANCELLED
    state = "interrupted" if interrupted else "complete"
    print(f"{behavior.name}: front of {len(front)} designs after "
          f"{result.generations} generations ({state}; "
          f"{result.evaluations} evaluations, store hit rate "
          f"{100 * result.store_hit_rate:.1f}%)")
    _print_front(front)
    if interrupted:
        print(f"checkpoint: {result.checkpoint} "
              f"(rerun with --resume to continue)")
    _write_front(front, args)
    if args.stats:
        print(result.telemetry.summary())
    return 130 if interrupted else 0


def _print_front(front) -> None:
    for p in front:
        t, pw, a = p.objectives
        last = p.lineage[-1] if p.lineage else "(input)"
        print(f"  len {t:8.2f}  power {pw:8.2f}  area {a:7.2f}  {last}")


def _write_front(front, args: argparse.Namespace) -> None:
    if getattr(args, "export", None):
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(front.to_json())
        print(f"front JSON written to {args.export}")
    if getattr(args, "csv", None):
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(front.to_csv())
        print(f"front CSV written to {args.csv}")


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs.metrics import MetricsRegistry
    from .service.orchestrator import serve
    tracer = _tracer_for(args)
    metrics = MetricsRegistry()
    workers = args.workers if args.workers is not None else 2
    processed = serve(queue=args.queue, store=args.store,
                      workers=workers, once=args.once, poll=args.poll,
                      isolate_stores=args.isolate_stores,
                      streaming=args.streaming,
                      tracer=tracer, metrics=metrics)
    _export_trace(args, tracer, metrics.as_dict())
    print(f"served {processed} job(s) "
          f"({int(metrics.value('service.shards_completed', 0))} "
          f"shards, {int(metrics.value('service.steals', 0))} steals)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    if not os.path.isfile(args.file):
        raise SystemExit(f"error: cannot read {args.file}: no such file")
    job_id = api.submit(
        args.file, alloc=args.alloc, objective=args.objective,
        queue=args.queue, store=args.store, seed=args.seed,
        num_seeds=args.num_seeds, generations=args.generations,
        population=args.population,
        candidates_per_seed=args.candidates_per_seed,
        iterations=args.iterations,
        warm_start=not args.no_warm_start,
        strategy=args.strategy,
        profile_traces=args.profile_traces, clock=args.clock)
    record = api.status(job_id, queue=args.queue, store=args.store)
    print(job_id)
    print(f"state: {record.state.value} "
          f"(run `repro serve` to process the queue)", file=sys.stderr)
    return 0


def cmd_job_list(args: argparse.Namespace) -> int:
    records = api._job_queue(args.queue, args.store).jobs()
    if not records:
        print("no jobs")
        return 0
    for record in records:
        line = (f"{record.job_id}  {record.state.value:<9}  "
                f"{record.spec.objective}")
        if record.error:
            line += f"  ({record.error})"
        print(line)
    return 0


def cmd_job_status(args: argparse.Namespace) -> int:
    record = api.status(args.job_id, queue=args.queue,
                        store=args.store)
    print(f"job:       {record.job_id}")
    print(f"state:     {record.state.value}")
    print(f"objective: {record.spec.objective}")
    print(f"seeds:     {record.spec.num_seeds} "
          f"(from {record.spec.seed})")
    print(f"attempts:  {record.attempts}")
    if record.worker:
        print(f"worker:    {record.worker}")
    if record.error:
        print(f"error:     {record.error}")
    return 0


def cmd_job_result(args: argparse.Namespace) -> int:
    result = api.result(args.job_id, queue=args.queue,
                        store=args.store)
    print(f"{result.job_id}: merged front of {len(result.front)} "
          f"designs from {result.shards} shard(s)")
    _print_front(result.front)
    _write_front(result.front, args)
    return 0


def cmd_store_list(args: argparse.Namespace) -> int:
    from .explore.store import RunStore, default_store_root
    store = RunStore(args.store if args.store
                     else default_store_root())
    designs = sum(1 for _ in store.scan())
    transfers = store.transfers()
    print(f"{store.root}: {designs} stored evaluation(s), "
          f"{len(transfers)} transfer front(s)")
    for doc in transfers:
        features = doc["features"]
        context = ", ".join(
            f"{k}={features[k]:g}" for k in ("vdd", "vt", "cycle_time")
            if k in features)
        print(f"  {str(doc['run'])[:12]}  behavior "
              f"{str(doc['behavior'])[:12]}  front "
              f"{doc['front_size']:>3}  {context}")
    return 0


def cmd_store_sync(args: argparse.Namespace) -> int:
    from .service.sync import merge_store, sync_stores
    if args.both:
        ab, ba = sync_stores(args.src, args.dst)
        print(f"{args.src} -> {args.dst}: copied {ab.copied}, "
              f"skipped {ab.skipped}, disagreements "
              f"{ab.disagreements}")
        print(f"{args.dst} -> {args.src}: copied {ba.copied}, "
              f"skipped {ba.skipped}, disagreements "
              f"{ba.disagreements}")
    else:
        stats = merge_store(args.src, args.dst)
        print(f"copied {stats.copied}, skipped {stats.skipped}, "
              f"disagreements {stats.disagreements}")
    return 0


def _gen_config_overrides(pairs: Optional[List[str]]):
    """``--gen key=value`` overrides -> GenConfig (None if no pairs)."""
    if not pairs:
        return None
    from .gen import GenConfig, config_from_dict
    doc: Dict[str, object] = {}
    fields = GenConfig.__dataclass_fields__
    for pair in pairs:
        name, eq, value = pair.partition("=")
        if not eq:
            raise ConfigError(
                f"bad --gen {pair!r}; expected key=value")
        if name not in fields:
            raise ConfigError(
                f"unknown GenConfig field {name!r}; expected one of "
                f"{sorted(fields)}")
        kind = fields[name].type
        try:
            if "bool" in kind:
                doc[name] = value.lower() in ("1", "true", "yes")
            elif "float" in kind:
                doc[name] = float(value)
            elif "int" in kind:
                doc[name] = int(value)
            else:
                doc[name] = value
        except ValueError:
            raise ConfigError(
                f"--gen {name}: cannot parse {value!r}") from None
    base = GenConfig().as_dict()
    base.update(doc)
    return config_from_dict(base)


def _finding_from_args(args: argparse.Namespace):
    """A finding to replay/shrink: from a report file or from flags."""
    from .gen import FuzzFinding, GEN_SCHEMA_VERSION, GenConfig
    if args.finding:
        import json
        if not os.path.isfile(args.finding):
            raise SystemExit(
                f"error: cannot read {args.finding}: no such file")
        with open(args.finding, encoding="utf-8") as handle:
            doc = json.load(handle)
        if isinstance(doc, dict) and "findings" in doc:
            findings = doc["findings"]
            if not findings:
                raise SystemExit(f"error: {args.finding}: no findings")
            if args.index >= len(findings):
                raise SystemExit(
                    f"error: {args.finding}: --index {args.index} out "
                    f"of range ({len(findings)} findings)")
            doc = findings[args.index]
        return FuzzFinding.from_dict(doc)
    if args.seed is None or not args.oracle:
        raise SystemExit(
            "error: need either a finding file or --seed and --oracle")
    config = _gen_config_overrides(args.gen) or GenConfig()
    return FuzzFinding(schema_version=GEN_SCHEMA_VERSION,
                       seed=args.seed, config=config.as_dict(),
                       oracle=args.oracle, detail="")


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    from .gen import FuzzOptions, run_campaign
    from .obs.metrics import MetricsRegistry
    options = FuzzOptions(
        seed=args.seed, count=args.count,
        oracles=tuple(args.oracle or ()),
        config=_gen_config_overrides(args.gen),
        workers=args.workers or 0,
        pool_every=args.pool_every,
        max_findings=args.max_findings,
        shrink=not args.no_shrink)
    tracer = _tracer_for(args)
    metrics = MetricsRegistry()
    report = run_campaign(options, tracer=tracer, metrics=metrics)
    _export_trace(args, tracer, metrics.as_dict())
    if args.report:
        report.write(args.report)
        print(f"report written to {args.report}", file=sys.stderr)
    print(f"fuzzed {report.circuits} circuits "
          f"({report.checks} oracle checks) in "
          f"{report.elapsed_s:.1f}s: {len(report.findings)} findings")
    for name in sorted(set(report.oracle_pass) | set(report.oracle_fail)):
        print(f"  {name}: {report.oracle_pass.get(name, 0)} pass, "
              f"{report.oracle_fail.get(name, 0)} fail")
    for finding in report.findings:
        print(f"FINDING [{finding.oracle}] seed={finding.seed}")
        print(f"  {finding.detail.splitlines()[0]}")
        print(f"  replay: {finding.repro_command}")
    return 0 if report.ok else 1


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from .gen import replay_finding
    finding = _finding_from_args(args)
    detail = replay_finding(finding, workers=args.workers or 0)
    if detail is None:
        print(f"[{finding.oracle}] seed={finding.seed}: "
              f"no divergence (does not reproduce)")
        return 1
    print(f"[{finding.oracle}] seed={finding.seed}: diverges")
    print(detail)
    if finding.detail and detail != finding.detail:
        print("note: detail differs from the recorded finding "
              "(fix in progress, or nondeterministic environment?)")
    return 0


def cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from .gen import config_from_dict, generate, shrink
    finding = _finding_from_args(args)
    circuit = generate(finding.seed,
                       config_from_dict(dict(finding.config)))
    before = len(circuit.source.splitlines())
    result = shrink(circuit, finding.oracle,
                    max_checks=args.max_checks)
    if not result.reproduced:
        print(f"[{finding.oracle}] seed={finding.seed}: oracle passes "
              f"on the regenerated circuit; nothing to shrink")
        return 1
    print(f"# shrunk {before} -> {result.lines} lines "
          f"({result.edits} edits, {result.checks} oracle checks)",
          file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.circuit.source)
        print(f"minimized circuit written to {args.out}",
              file=sys.stderr)
    else:
        print(result.circuit.source, end="")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    if not os.path.isfile(args.file):
        raise SystemExit(f"error: cannot read {args.file}: no such file")
    from .obs import format_summary, load_trace, summarize_trace
    try:
        spans, metrics = load_trace(args.file)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load trace {args.file}: {exc}")
    print(format_summary(summarize_trace(spans, metrics)))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    names = args.circuits or ["gcd", "fir", "test2", "sintran", "igf",
                              "pps"]
    rows = []
    for name in names:
        print(f"running {name}...", file=sys.stderr)
        rows.append(run_throughput_row(name, workers=args.workers))
    print(format_throughput_table(rows))
    if args.power:
        prows = []
        for name in names:
            print(f"running {name} (power)...", file=sys.stderr)
            prows.append(run_power_row(name, workers=args.workers))
        print()
        print(format_power_table(prows))
    return 0


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE",
                   help="record nested spans of the run to FILE "
                        "(never changes results; see "
                        "docs/observability.md)")
    p.add_argument("--trace-format", choices=("jsonl", "chrome"),
                   default="jsonl",
                   help="trace file format: one JSON object per line, "
                        "or Chrome trace_event JSON for "
                        "chrome://tracing / Perfetto (default: jsonl)")


def _add_input_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("file")
    p.add_argument("--alloc", help="e.g. a1=2,sb1=1,cp1=1")
    p.add_argument("--clock", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile-traces", type=int, default=12,
                   help="uniform random traces profiled for branch "
                        "probabilities (0 = scheduler defaults)")


def _add_store_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--store", default=None,
                   help="run-store directory (default: REPRO_STORE or "
                        ".repro-store); evaluations persist and are "
                        "shared across runs, processes and servers")


def _add_workers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (explore: evaluation "
                        "fan-out, default REPRO_WORKERS or serial; "
                        "serve: shard workers, default 2)")


def _add_queue_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--queue", default=None,
                   help="job-queue directory (default: "
                        "<store>/queue)")


def _add_stats_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--stats", action="store_true",
                   help="print engine telemetry (per-generation wall "
                        "time, cache hit rate)")


def _add_incremental_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-incremental", action="store_true",
                   help="disable region-level schedule memoization "
                        "(identical results, slower; the benchmark "
                        "baseline)")
    p.add_argument("--no-incremental-enum", action="store_true",
                   help="disable incremental candidate enumeration "
                        "(identical results, slower; the benchmark "
                        "baseline)")
    p.add_argument("--numeric-backend", choices=("scalar", "batched"),
                   default="scalar",
                   help="linear-algebra core for candidate evaluation: "
                        "'batched' stacks Markov solves into blocked "
                        "LAPACK calls (identical results; see "
                        "docs/performance.md)")
    p.add_argument("--streaming", action="store_true",
                   help="pipeline each generation through the "
                        "streaming evaluator instead of the "
                        "generation barrier (identical results; see "
                        "docs/pipeline.md)")


def _add_explore_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--generations", type=int, default=4,
                   help="exploration generations")
    p.add_argument("--population", type=int, default=8,
                   help="NSGA-II population size")
    p.add_argument("--candidates-per-seed", type=int, default=24,
                   help="transformation candidates sampled per seed")
    p.add_argument("--iterations", type=int, default=6,
                   help="warm-start search outer iterations")
    p.add_argument("--no-warm-start", action="store_true",
                   help="skip the single-objective warm-start searches")


def _add_strategy_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--strategy",
                   choices=("greedy", "macro", "portfolio"),
                   default="greedy",
                   help="search strategy (docs/search.md): greedy is "
                        "the paper's loop, macro adds dependent "
                        "rewrite chains, portfolio races several "
                        "configurations under one budget")
    p.add_argument("--portfolio", type=int, default=None, metavar="N",
                   help="race N strategy members (implies "
                        "--strategy portfolio)")
    p.add_argument("--max-evaluations", type=int, default=None,
                   help="stop the search once this many schedule "
                        "evaluations were spent (soft cap, checked "
                        "between generations)")


def _strategy_fields(args: argparse.Namespace) -> Dict[str, object]:
    """``--strategy/--portfolio/--max-evaluations`` → SearchConfig
    keyword overrides."""
    fields: Dict[str, object] = {
        "strategy": args.strategy,
        "max_evaluations": args.max_evaluations,
    }
    if args.portfolio is not None:
        fields["strategy"] = "portfolio"
        fields["portfolio_size"] = args.portfolio
    return fields


def _add_gen_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--gen", action="append", metavar="KEY=VALUE",
                   help="GenConfig override, repeatable (e.g. --gen "
                        "loop_depth=3 --gen op_mix=arith); fuzz run: "
                        "replaces the default config grid")


def _add_finding_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("finding", nargs="?",
                   help="a finding JSON file, or a FUZZ_report.json "
                        "(pick an entry with --index)")
    p.add_argument("--index", type=int, default=0,
                   help="finding index inside a report file (default 0)")
    p.add_argument("--seed", type=int, default=None,
                   help="circuit seed (alternative to a finding file)")
    p.add_argument("--oracle",
                   help="oracle name (alternative to a finding file)")


def _make_parent(*adders) -> argparse.ArgumentParser:
    """One shared option group as an ``argparse`` parent parser, so a
    flag is defined once and means the same thing on every command."""
    parent = argparse.ArgumentParser(add_help=False)
    for adder in adders:
        adder(parent)
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACT (DAC 1998) reproduction: throughput- and "
                    "power-optimizing transformations for CFI behaviors")
    sub = parser.add_subparsers(dest="command", required=True)

    trace_parent = _make_parent(_add_trace_args)
    input_parent = _make_parent(_add_input_args)
    #: The one `--store/--workers/--trace` group `explore` and `serve`
    #: share: same flags, same semantics, defined once.
    service_parent = _make_parent(_add_store_arg, _add_workers_arg,
                                  _add_trace_args)
    queue_parent = _make_parent(_add_store_arg, _add_queue_arg)
    explore_parent = _make_parent(_add_explore_args)
    tuning_parent = _make_parent(_add_stats_arg,
                                 _add_incremental_args,
                                 _add_strategy_args)

    p = sub.add_parser("compile", help="parse and lower a BDL file",
                       parents=[trace_parent])
    p.add_argument("file")
    p.add_argument("--dot", action="store_true",
                   help="emit the CDFG as Graphviz DOT")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a behavior",
                       parents=[trace_parent])
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", metavar="name=value")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("schedule",
                       help="schedule and print STG statistics",
                       parents=[input_parent, trace_parent])
    p.add_argument("--dot", action="store_true",
                   help="emit the STG as Graphviz DOT")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("optimize", help="run the full FACT flow",
                       parents=[input_parent, tuning_parent,
                                trace_parent])
    p.add_argument("--objective", choices=("throughput", "power"),
                   default="throughput")
    p.add_argument("--iterations", type=int, default=6,
                   help="search outer iterations")
    _add_workers_arg(p)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser(
        "explore",
        help="Pareto design-space exploration (throughput/power/area)",
        parents=[input_parent, explore_parent, service_parent,
                 tuning_parent])
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file (default: derived from the "
                        "store dir and the run fingerprint)")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted run from its "
                        "checkpoint (bit-for-bit)")
    p.add_argument("--warm-start", action="store_true",
                   dest="warm_start_transfer",
                   help="seed the initial population from the nearest "
                        "prior run's front in the store's transfer "
                        "index (docs/search.md)")
    p.add_argument("--export", metavar="FILE",
                   help="write the front as canonical JSON")
    p.add_argument("--csv", metavar="FILE",
                   help="write the front as CSV")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "serve",
        help="drain the job queue with a sharded worker pool",
        parents=[service_parent])
    _add_queue_arg(p)
    p.add_argument("--once", action="store_true",
                   help="exit when the queue is empty instead of "
                        "polling forever")
    p.add_argument("--poll", type=float, default=0.5,
                   help="idle queue polling interval, seconds")
    p.add_argument("--isolate-stores", action="store_true",
                   help="give each job a private sub-store, merged "
                        "into the main store on completion")
    p.add_argument("--streaming", action="store_true",
                   help="run shard campaigns through the streaming "
                        "evaluation pipeline (identical fronts; see "
                        "docs/pipeline.md)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="enqueue an exploration job (prints its id)",
        parents=[input_parent, explore_parent, queue_parent])
    p.add_argument("--objective",
                   choices=("pareto", "throughput", "power"),
                   default="pareto")
    p.add_argument("--num-seeds", type=int, default=1,
                   help="independent exploration seeds (sharded "
                        "across workers)")
    p.add_argument("--strategy",
                   choices=("greedy", "macro", "portfolio"),
                   default="greedy",
                   help="search strategy for the job's warm-start "
                        "searches (docs/search.md)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("job", help="inspect queued jobs")
    jsub = p.add_subparsers(dest="job_command", required=True)
    pj = jsub.add_parser("list", help="all jobs, oldest first",
                         parents=[queue_parent])
    pj.set_defaults(func=cmd_job_list)
    pj = jsub.add_parser("status", help="one job's record",
                         parents=[queue_parent])
    pj.add_argument("job_id")
    pj.set_defaults(func=cmd_job_status)
    pj = jsub.add_parser("result",
                         help="the merged front of a finished job",
                         parents=[queue_parent])
    pj.add_argument("job_id")
    pj.add_argument("--export", metavar="FILE",
                    help="write the front as canonical JSON")
    pj.add_argument("--csv", metavar="FILE",
                    help="write the front as CSV")
    pj.set_defaults(func=cmd_job_result)

    p = sub.add_parser("store", help="run-store maintenance")
    ssub = p.add_subparsers(dest="store_command", required=True)
    ps = ssub.add_parser(
        "list",
        help="stored evaluation count and the transfer index")
    _add_store_arg(ps)
    ps.set_defaults(func=cmd_store_list)
    ps = ssub.add_parser(
        "sync", help="conflict-free union of two run stores")
    ps.add_argument("src", help="source store directory")
    ps.add_argument("dst", help="destination store directory")
    ps.add_argument("--both", action="store_true",
                    help="merge in both directions")
    ps.set_defaults(func=cmd_store_sync)

    #: `fuzz run/replay/shrink` share the `--trace/--workers` group
    #: with explore/serve, plus one `--gen key=value` override group.
    fuzz_parent = _make_parent(_add_trace_args, _add_workers_arg,
                               _add_gen_arg)
    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing over seeded random circuits")
    fsub = p.add_subparsers(dest="fuzz_command", required=True)
    pf = fsub.add_parser(
        "run", parents=[fuzz_parent],
        help="generate circuits and run the oracle stack over each")
    pf.add_argument("--seed", type=int, default=0,
                    help="base seed; circuit i uses seed+i (default 0)")
    pf.add_argument("--count", type=int, default=200,
                    help="number of circuits (default 200)")
    pf.add_argument("--oracle", action="append", metavar="NAME",
                    help="run only this oracle (repeatable; default: "
                         "the full stack)")
    pf.add_argument("--report", metavar="FILE",
                    help="write the campaign report (JSON) to FILE")
    pf.add_argument("--max-findings", type=int, default=0,
                    help="stop after N findings (default: never)")
    pf.add_argument("--pool-every", type=int, default=25,
                    help="run the pool-backend oracle every Nth "
                         "circuit when --workers >= 2 (default 25)")
    pf.add_argument("--no-shrink", action="store_true",
                    help="record findings unminimized (faster)")
    pf.set_defaults(func=cmd_fuzz_run)
    pf = fsub.add_parser(
        "replay", parents=[fuzz_parent],
        help="re-run one finding's oracle from its seed + config")
    _add_finding_args(pf)
    pf.set_defaults(func=cmd_fuzz_replay)
    pf = fsub.add_parser(
        "shrink", parents=[fuzz_parent],
        help="minimize a failing circuit while its oracle still fails")
    _add_finding_args(pf)
    pf.add_argument("--out", metavar="FILE",
                    help="write the minimized BDL source to FILE "
                         "(default: stdout)")
    pf.add_argument("--max-checks", type=int, default=400,
                    help="oracle re-check budget (default 400)")
    pf.set_defaults(func=cmd_fuzz_shrink)

    p = sub.add_parser("trace", help="inspect recorded trace files")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser(
        "summarize",
        help="per-stage self-time table + metric counters of a trace")
    ps.add_argument("file", help="a file written by --trace "
                                 "(jsonl or chrome format)")
    ps.set_defaults(func=cmd_trace_summarize)

    p = sub.add_parser("table2", help="regenerate the paper's Table 2")
    p.add_argument("circuits", nargs="*",
                   help="subset of circuits (default: all six)")
    p.add_argument("--power", action="store_true",
                   help="also run the power-optimization columns")
    p.add_argument("--workers", type=int, default=None,
                   help="evaluation worker processes per search")
    p.set_defaults(func=cmd_table2)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

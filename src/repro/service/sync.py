"""Store federation: conflict-free union of content-addressed stores.

A :class:`~repro.explore.store.RunStore` key is derived from the
evaluation context and the behavior's WL fingerprint, never from the
machine or process that wrote the record — so two stores populated
independently (two worker pools, two machines, a laptop and a CI run)
can always be merged: a key either exists in one store or holds the
same evaluation in both.  :func:`merge_store` copies absent records
atomically (crash-safe, and safe against a live explorer reading the
destination); :func:`sync_stores` runs the merge both ways, leaving
the two stores with the identical union.

A key present in *both* stores with *different* bytes can only mean
corruption or a record written under a different schema revision; the
merge keeps the destination's copy, counts a ``disagreement``, and
warns — it never destroys data.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

from ..explore.store import (LAYOUT_DIR, RunStoreWarning,
                             atomic_write_bytes)

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class SyncStats:
    """Outcome of one directed :func:`merge_store` pass."""

    copied: int = 0         #: records new to the destination
    skipped: int = 0        #: records already present (byte-identical)
    disagreements: int = 0  #: same key, different bytes (kept dst)

    @property
    def examined(self) -> int:
        return self.copied + self.skipped + self.disagreements

    def as_dict(self) -> dict:
        return {"copied": self.copied, "skipped": self.skipped,
                "disagreements": self.disagreements}


def merge_store(src: PathLike, dst: PathLike) -> SyncStats:
    """Copy every record of ``src`` absent from ``dst`` into ``dst``.

    Purely additive: nothing in ``src`` is modified and nothing in
    ``dst`` is overwritten.  Stray ``*.tmp`` files from crashed writers
    are ignored, copies are atomic and fsynced, and the pass is
    idempotent — re-running it skips everything it copied.
    """
    stats = SyncStats()
    src_layout = Path(src) / LAYOUT_DIR
    dst_layout = Path(dst) / LAYOUT_DIR
    if not src_layout.is_dir():
        return stats
    for path in sorted(src_layout.glob("*/*.json")):
        target = dst_layout / path.parent.name / path.name
        try:
            data = path.read_bytes()
        except OSError as exc:
            warnings.warn(
                f"store sync: skipping unreadable source record "
                f"{path.name}: {exc}", RunStoreWarning, stacklevel=2)
            continue
        if target.exists():
            try:
                same = target.read_bytes() == data
            except OSError:
                same = False
            if same:
                stats.skipped += 1
            else:
                stats.disagreements += 1
                warnings.warn(
                    f"store sync: key {path.stem} differs between "
                    f"stores; keeping the destination's record",
                    RunStoreWarning, stacklevel=2)
            continue
        atomic_write_bytes(target, data)
        stats.copied += 1
    return stats


def sync_stores(a: PathLike, b: PathLike) -> Tuple[SyncStats, SyncStats]:
    """Bidirectional merge: afterwards ``a`` and ``b`` hold the same
    union of records.  Returns the (a→b, b→a) pass statistics."""
    return merge_store(a, b), merge_store(b, a)


__all__ = ["SyncStats", "merge_store", "sync_stores"]

"""The async campaign orchestrator behind ``repro serve``.

A **campaign** is one batch of claimed jobs.  The orchestrator expands
every job into its deterministic shards (:func:`~repro.service.jobs
.expand_shards`), publishes them on a file-backed :class:`ShardBoard`,
and supervises a pool of worker *processes* from an asyncio event
loop:

* workers pull shards off the board themselves (work stealing over
  unclaimed shards is the scheduling policy — there is no push
  dispatch to go wrong), claim with ``O_EXCL`` lock files carrying
  pid + timestamp, and heartbeat their claim while executing;
* a **collector** task feeds completed shard results through a
  *bounded* ``asyncio.Queue`` into the **merger** task, which folds
  shard fronts into per-job merged fronts (:func:`merge_fronts`) and
  finalizes job records as their last shard lands;
* a **monitor** task reaps dead workers, releases their claims (so a
  surviving worker steals the shard), and respawns replacements with
  exponential backoff; a shard is retried until
  ``max_attempts`` and a :class:`~repro.errors.ReproError` inside a
  shard is deterministic and never retried.

Because every shard is a serial, deterministic exploration and fronts
merge conflict-free, the merged front of a campaign is byte-identical
whether it ran on one worker, on N, or with workers dying mid-shard —
the property the fault-injection tests pin down.

Instrumentation goes through :mod:`repro.obs`: ``service.*`` metrics
(queue depth, shard latency, steal/retry/respawn counters) and
``service.campaign`` / ``service.merge`` spans.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (Dict, List, Optional, Sequence, Set, Tuple,
                    Union)

from ..errors import ReproError, ServiceError
from ..explore.pareto import ParetoFront
from ..explore.store import atomic_write_text, default_store_root
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, AnyTracer
from .jobs import (JobQueue, JobRecord, JobResult, JobState, PARETO,
                   ShardSpec, default_queue_root, expand_shards)

#: Environment hook for fault-injection tests: a worker process whose
#: claim matches this shard id hard-exits on the shard's *first*
#: attempt (simulating a machine dying mid-shard).
CRASH_ENV = "REPRO_SERVICE_CRASH"

#: Exit code of the simulated crash (distinguishable from signals).
CRASH_EXIT = 17

#: Merge order of objective cells: the full Pareto cell first, so on
#: identical objective vectors the serial run's representative wins
#: and single-seed campaigns reproduce ``repro explore`` byte-for-byte.
_CELL_ORDER = {PARETO: 0, "throughput": 1, "power": 2}


@dataclass
class OrchestratorConfig:
    """Supervision knobs (defaults suit tests and small campaigns)."""

    workers: int = 2          #: worker processes (<=1 runs in-process)
    poll: float = 0.05        #: worker/board polling interval, seconds
    lease: float = 60.0       #: claim lease; stale claims are stolen
    max_attempts: int = 3     #: attempts per shard before giving up
    max_respawns: int = 5     #: worker respawns before aborting
    respawn_backoff: float = 0.1  #: base respawn delay (doubles)
    queue_bound: int = 8      #: collector->merger queue bound
    isolate_stores: bool = False  #: per-job sub-stores, synced on merge
    #: run shard campaigns through the streaming evaluation pipeline
    #: (byte-identical fronts; see docs/pipeline.md)
    streaming: bool = False


class ShardBoard:
    """File-backed shard coordination shared by all workers.

    Layout under the board root::

        shards/<shard_id>.json    the work items (written once)
        claims/<shard_id>.claim   O_EXCL lease: {"pid", "worker", "ts"}
        attempts/<shard_id>.<n>   one marker per attempt started
        steals/<shard_id>.<n>     one marker per stolen/released claim
        results/<shard_id>.json   shard outcome (front or error)
        DRAIN / CANCEL            flag files

    Everything is atomic-write + ``O_EXCL``, so any number of worker
    processes — or machines sharing a filesystem — coordinate without
    locks.
    """

    FLAGS = ("DRAIN", "CANCEL")

    def __init__(self, root: Union[str, "os.PathLike[str]"], *,
                 lease: float = OrchestratorConfig.lease) -> None:
        self.root = Path(root)
        self.lease = lease
        try:
            for sub in ("shards", "claims", "attempts", "steals",
                        "results"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServiceError(
                f"cannot create shard board at {self.root}: {exc}"
            ) from exc

    # -- population -----------------------------------------------------
    def populate(self, shards: Sequence[ShardSpec]) -> None:
        for shard in shards:
            atomic_write_text(
                self.root / "shards" / f"{shard.shard_id}.json",
                json.dumps(shard.as_dict(), sort_keys=True))

    def shard_ids(self) -> List[str]:
        return sorted(p.stem
                      for p in (self.root / "shards").glob("*.json"))

    def load_shard(self, shard_id: str) -> ShardSpec:
        path = self.root / "shards" / f"{shard_id}.json"
        try:
            return ShardSpec.from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError) as exc:
            raise ServiceError(
                f"shard {shard_id} is unreadable: {exc}") from exc

    # -- flags ----------------------------------------------------------
    def set_flag(self, name: str) -> None:
        atomic_write_text(self.root / name, "", durable=False)

    def has_flag(self, name: str) -> bool:
        return (self.root / name).exists()

    # -- results --------------------------------------------------------
    def result_path(self, shard_id: str) -> Path:
        return self.root / "results" / f"{shard_id}.json"

    def has_result(self, shard_id: str) -> bool:
        return self.result_path(shard_id).exists()

    def load_result(self, shard_id: str) -> Dict[str, object]:
        try:
            return json.loads(self.result_path(shard_id).read_text())
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"result of shard {shard_id} is unreadable: {exc}"
            ) from exc

    def complete(self, shard_id: str, doc: Dict[str, object]) -> None:
        atomic_write_text(self.result_path(shard_id),
                          json.dumps(doc, sort_keys=True))
        self.release(shard_id)

    def all_done(self) -> bool:
        return all(self.has_result(sid) for sid in self.shard_ids())

    # -- attempts / steals ----------------------------------------------
    def _mark(self, kind: str, shard_id: str) -> int:
        """Create the next ``<kind>/<shard_id>.<n>`` marker; returns n."""
        n = self.count(kind, shard_id) + 1
        while True:
            try:
                fd = os.open(self.root / kind / f"{shard_id}.{n}",
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL)
                os.close(fd)
                return n
            except FileExistsError:
                n += 1
            except OSError:
                return n  # marker is bookkeeping only; never fail work

    def count(self, kind: str, shard_id: Optional[str] = None) -> int:
        pattern = f"{shard_id}.*" if shard_id else "*"
        return sum(1 for _ in (self.root / kind).glob(pattern))

    # -- claims ---------------------------------------------------------
    def _claim_path(self, shard_id: str) -> Path:
        return self.root / "claims" / f"{shard_id}.claim"

    def _read_claim(self, shard_id: str) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self._claim_path(shard_id).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return {}  # unreadable claim: stale by definition

    def claim(self, shard_id: str, worker: str) -> bool:
        doc = json.dumps({"pid": os.getpid(), "worker": worker,
                          "ts": time.time()})
        path = self._claim_path(shard_id)
        for retry in (False, True):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if retry or not self._claim_is_stale(shard_id):
                    return False
                self.steal(shard_id)
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(doc)
            return True
        return False

    def _claim_is_stale(self, shard_id: str) -> bool:
        claim = self._read_claim(shard_id)
        if claim is None:
            return False  # vanished: not ours to steal, just re-race
        ts = claim.get("ts")
        if not isinstance(ts, (int, float)):
            return True
        return time.time() - ts > self.lease

    def heartbeat(self, shard_id: str, worker: str) -> None:
        atomic_write_text(
            self._claim_path(shard_id),
            json.dumps({"pid": os.getpid(), "worker": worker,
                        "ts": time.time()}), durable=False)

    def release(self, shard_id: str) -> None:
        try:
            os.unlink(self._claim_path(shard_id))
        except OSError:
            pass

    def steal(self, shard_id: str) -> None:
        """Release another worker's (stale/dead) claim, with a marker
        so the orchestrator can count steals."""
        self._mark("steals", shard_id)
        self.release(shard_id)

    def release_dead(self, pids: Set[int]) -> int:
        """Steal every claim held by one of ``pids`` (dead workers)."""
        released = 0
        for path in list((self.root / "claims").glob("*.claim")):
            shard_id = path.stem
            claim = self._read_claim(shard_id)
            if claim is not None and claim.get("pid") in pids:
                self.steal(shard_id)
                released += 1
        return released

    # -- worker-side scheduling -----------------------------------------
    @staticmethod
    def _claim_order(shard_id: str) -> Tuple[int, str]:
        # Pareto cells board-wide before warm-endpoint cells: a pareto
        # shard's warm start evaluates the same designs as its
        # warm-only siblings, so running it first turns the siblings
        # into pure store hits instead of duplicated work when two
        # workers land on one job.  Scheduling order only; results are
        # order-independent.
        return (0 if shard_id.endswith(f"-{PARETO}") else 1, shard_id)

    def claim_next(self, worker: str, max_attempts: int
                   ) -> Optional[Tuple[ShardSpec, int]]:
        """Claim the first available shard; (spec, attempt#) or None.

        Claim order prefers pareto cells (see :meth:`_claim_order`);
        shards whose attempt budget is exhausted are completed with a
        terminal error so the campaign can finish.
        """
        for shard_id in sorted(self.shard_ids(),
                               key=self._claim_order):
            if self.has_result(shard_id):
                continue
            attempts = self.count("attempts", shard_id)
            if attempts >= max_attempts:
                self.complete(shard_id, {
                    "shard": shard_id,
                    "error": f"gave up after {attempts} attempts "
                             f"(worker died or crashed each time)",
                    "retryable": False})
                continue
            if self.claim(shard_id, worker):
                if self.has_result(shard_id):
                    # Lost a race with a completing worker.
                    self.release(shard_id)
                    continue
                return self.load_shard(shard_id), \
                    self._mark("attempts", shard_id)
        return None


class _Heartbeat(threading.Thread):
    """Rewrites a shard claim's timestamp while the shard executes."""

    def __init__(self, board: ShardBoard, shard_id: str,
                 worker: str) -> None:
        super().__init__(daemon=True,
                         name=f"heartbeat-{shard_id}")
        self.board = board
        self.shard_id = shard_id
        self.worker = worker
        # Name must not shadow threading.Thread's internal _stop().
        self._halt = threading.Event()

    def run(self) -> None:
        interval = max(self.board.lease / 4.0, 0.05)
        while not self._halt.wait(interval):
            try:
                self.board.heartbeat(self.shard_id, self.worker)
            except OSError:  # pragma: no cover - disk trouble
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def shard_store_root(store_root: Union[str, "os.PathLike[str]"],
                     job_id: str, isolate: bool) -> Path:
    """Where a shard's evaluations persist.

    With ``isolate`` each job gets a private sub-store
    (``<store>/jobs/<job_id>``) that is merged into the main store when
    the job finishes — the same federation path two machines would use.
    """
    root = Path(store_root)
    return root / "jobs" / job_id if isolate else root


def _run_shard(shard: ShardSpec,
               store_root: Union[str, "os.PathLike[str]"],
               isolate: bool,
               streaming: bool = False) -> Dict[str, object]:
    """Execute one shard to a result document (workers call this)."""
    from dataclasses import replace
    from .. import api
    from ..explore.runner import ExploreRunner
    behavior = api.compile(shard.spec.source)
    alloc = api.coerce_allocation(shard.spec.alloc)
    cfg = shard.explore_config()
    if streaming:
        # Streaming is normalized out of run fingerprints, so a shard
        # checkpointed under one mode resumes cleanly under the other.
        cfg = replace(
            cfg, streaming=True,
            search=replace(cfg.search, streaming=True)
            if cfg.search is not None else None)
    probs = api.default_branch_probs(
        behavior, profile_traces=shard.spec.profile_traces,
        seed=cfg.warm_start_search().seed)
    runner = ExploreRunner(
        behavior, alloc, config=cfg, branch_probs=probs,
        store=shard_store_root(store_root, shard.job_id, isolate))
    # resume=True makes retries incremental: a worker that died after
    # generation k left a valid checkpoint, and the resumed trajectory
    # is byte-identical to an uninterrupted one.
    result = runner.run(resume=True)
    return {"shard": shard.shard_id,
            "front": result.front.as_dict(),
            "generations": result.generations,
            "evaluations": result.evaluations}


def _worker_main(board_root: str, store_root: str, worker: str,
                 isolate: bool, poll: float, max_attempts: int,
                 inline: bool = False,
                 streaming: bool = False) -> None:
    """Worker loop: steal-claim shards off the board until drained."""
    if not inline:
        try:
            signal.signal(signal.SIGINT, signal.SIG_IGN)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    board = ShardBoard(board_root)
    while not board.has_flag("CANCEL"):
        claimed = board.claim_next(worker, max_attempts)
        if claimed is None:
            if board.all_done() or board.has_flag("DRAIN"):
                return
            time.sleep(poll)
            continue
        shard, attempt = claimed
        if (not inline and attempt == 1
                and os.environ.get(CRASH_ENV) == shard.shard_id):
            os._exit(CRASH_EXIT)  # fault injection: die mid-shard
        beat = _Heartbeat(board, shard.shard_id, worker)
        beat.start()
        started = time.perf_counter()
        try:
            doc = _run_shard(shard, store_root, isolate, streaming)
        except ReproError as exc:
            # Deterministic failure: retrying reproduces it exactly.
            doc = {"shard": shard.shard_id, "error": str(exc),
                   "retryable": False}
        except Exception as exc:  # noqa: BLE001 - isolate the shard
            # Unexpected: release and let the attempt budget decide.
            beat.stop()
            board.release(shard.shard_id)
            if inline:
                raise
            time.sleep(poll)
            continue
        finally:
            beat.stop()
        doc["worker"] = worker
        doc["wall_time"] = time.perf_counter() - started
        board.complete(shard.shard_id, doc)


def merge_fronts(fronts: Sequence[ParetoFront]) -> ParetoFront:
    """Conflict-free union of shard fronts, in the order given.

    The non-dominated *set* is order-independent; only the choice of
    representative among identical objective vectors follows offer
    order (first wins, matching :meth:`ParetoFront.add`).  Callers
    order fronts canonically (Pareto cells first — see
    :data:`_CELL_ORDER`) so the merge is deterministic and single-seed
    campaigns reproduce the serial front byte-for-byte.
    """
    fronts = [f for f in fronts if f is not None and len(f)]
    if not fronts:
        raise ServiceError("nothing to merge: no shard front is "
                           "non-empty")
    baselines = sorted({f.baseline_length for f in fronts})
    if len(baselines) != 1:
        raise ServiceError(
            f"cannot merge fronts with different baselines "
            f"{baselines}: they were evaluated under different "
            f"contexts")
    merged = ParetoFront(baseline_length=baselines[0])
    for front in fronts:
        merged.update(front.sorted_points())
    return merged


def _shard_sort_key(shard: ShardSpec) -> Tuple[int, int]:
    return (_CELL_ORDER.get(shard.cell, 99), shard.seed)


class CampaignOrchestrator:
    """Runs one batch of jobs to terminal state over a worker pool."""

    def __init__(self, queue: JobQueue,
                 records: Sequence[JobRecord], *,
                 store: Union[str, "os.PathLike[str]", None] = None,
                 config: Optional[OrchestratorConfig] = None,
                 tracer: Optional[AnyTracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not records:
            raise ServiceError("a campaign needs at least one job")
        self.queue = queue
        self.records = list(records)
        self.store_root = Path(store) if store is not None \
            else Path(default_store_root())
        self.config = config or OrchestratorConfig()
        self.tracer: AnyTracer = tracer if tracer is not None \
            else NULL_TRACER
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.campaign_id = f"c{int(time.time() * 1000):x}-{os.getpid()}"
        self.results: Dict[str, JobResult] = {}
        self._cancel = threading.Event()
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._worker_seq = 0

    # -- public ---------------------------------------------------------
    def cancel(self) -> None:
        """Request cancellation (thread-safe); in-flight shards finish
        or are terminated, jobs become CANCELLED, no orphans remain."""
        self._cancel.set()

    def run(self) -> Dict[str, JobResult]:
        """Drive the campaign to completion; job_id -> result."""
        return asyncio.run(self._run())

    # -- supervision ----------------------------------------------------
    async def _run(self) -> Dict[str, JobResult]:
        cfg = self.config
        board = ShardBoard(self.queue.board_root(self.campaign_id),
                           lease=cfg.lease)
        by_job: Dict[str, List[ShardSpec]] = {}
        shards: List[ShardSpec] = []
        for record in self.records:
            self.queue.transition(record.job_id, JobState.RUNNING,
                                  worker=self.campaign_id)
            job_shards = expand_shards(record.spec, record.job_id)
            by_job[record.job_id] = job_shards
            shards.extend(job_shards)
        board.populate(shards)
        self.metrics.set("service.shards_total", len(shards))
        self.metrics.set("service.queue_depth", len(shards))
        inline = cfg.workers <= 1
        with self.tracer.span("service.campaign",
                              campaign=self.campaign_id,
                              jobs=len(self.records),
                              shards=len(shards),
                              workers=max(cfg.workers, 1)) as span:
            if not inline:
                for _ in range(cfg.workers):
                    self._spawn_worker(board)
            pending: Set[str] = {s.shard_id for s in shards}
            results_q: asyncio.Queue = asyncio.Queue(
                maxsize=max(cfg.queue_bound, 1))
            collector = asyncio.create_task(
                self._collect(board, pending, results_q))
            merger = asyncio.create_task(
                self._merge(board, by_job, results_q))
            monitor = asyncio.create_task(
                self._monitor(board, pending))
            worker_task = None
            if inline:
                loop = asyncio.get_running_loop()
                worker_task = loop.run_in_executor(
                    None, _worker_main, str(board.root),
                    str(self.store_root), "inline-0",
                    cfg.isolate_stores, cfg.poll, cfg.max_attempts,
                    True, cfg.streaming)
            cancelled = False
            try:
                waiting = {merger, monitor}
                if worker_task is not None:
                    waiting.add(worker_task)
                done, _ = await asyncio.wait(
                    waiting, return_when=asyncio.FIRST_COMPLETED)
                if merger not in done:
                    if worker_task is not None and worker_task in done:
                        # Inline worker finished: surface its error or,
                        # on a clean drain, let the merger catch up.
                        worker_task.result()
                        await merger
                    else:
                        try:
                            # Cancellation or irrecoverable pool death.
                            monitor.result()
                        except ServiceError:
                            self._fail_remaining(by_job)
                            raise
                        cancelled = True
            finally:
                for task in (collector, merger, monitor):
                    task.cancel()
                await asyncio.gather(collector, merger, monitor,
                                     return_exceptions=True)
                self._shutdown_workers(board, force=cancelled)
                if worker_task is not None:
                    await asyncio.gather(worker_task,
                                         return_exceptions=True)
            if cancelled:
                self._cancel_remaining(by_job)
            span.set(steals=int(board.count("steals")),
                     cancelled=cancelled)
            self.metrics.set("service.steals",
                             board.count("steals"))
        return self.results

    def _spawn_worker(self, board: ShardBoard) -> None:
        cfg = self.config
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context("spawn")
        name = f"repro-worker-{self._worker_seq}"
        self._worker_seq += 1
        proc = ctx.Process(
            target=_worker_main,
            args=(str(board.root), str(self.store_root), name,
                  cfg.isolate_stores, cfg.poll, cfg.max_attempts,
                  False, cfg.streaming),
            name=name, daemon=True)
        proc.start()
        self._procs.append(proc)

    def _shutdown_workers(self, board: ShardBoard, *,
                          force: bool) -> None:
        flag = "CANCEL" if force else "DRAIN"
        try:
            board.set_flag(flag)
        except OSError:  # pragma: no cover
            pass
        deadline = time.monotonic() + (1.0 if force else 10.0)
        for proc in self._procs:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck in syscall
                proc.kill()
                proc.join(timeout=5.0)

    async def _collect(self, board: ShardBoard, pending: Set[str],
                       results_q: asyncio.Queue) -> None:
        """Feed completed shard results into the bounded merge queue."""
        poll = self.config.poll
        while pending:
            ready = [sid for sid in sorted(pending)
                     if board.has_result(sid)]
            for shard_id in ready:
                pending.discard(shard_id)
                doc = board.load_result(shard_id)
                if "wall_time" in doc:
                    self.metrics.observe("service.shard_latency",
                                         float(doc["wall_time"]))
                self.metrics.inc("service.shards_completed")
                self.metrics.set("service.queue_depth", len(pending))
                await results_q.put((shard_id, doc))
            if not ready:
                await asyncio.sleep(poll)

    async def _merge(self, board: ShardBoard,
                     by_job: Dict[str, List[ShardSpec]],
                     results_q: asyncio.Queue) -> None:
        """Fold shard results into per-job merged fronts."""
        outstanding = {job_id: {s.shard_id for s in job_shards}
                       for job_id, job_shards in by_job.items()}
        docs: Dict[str, Dict[str, object]] = {}
        while outstanding:
            shard_id, doc = await results_q.get()
            docs[shard_id] = doc
            job_id = shard_id.split(".", 1)[0]
            remaining = outstanding.get(job_id)
            if remaining is None:
                continue
            remaining.discard(shard_id)
            if remaining:
                continue
            del outstanding[job_id]
            self._finalize_job(job_id, by_job[job_id], docs)

    def _finalize_job(self, job_id: str,
                      job_shards: List[ShardSpec],
                      docs: Dict[str, Dict[str, object]]) -> None:
        errors = [str(docs[s.shard_id]["error"]) for s in job_shards
                  if "error" in docs[s.shard_id]]
        if errors:
            self.queue.transition(job_id, JobState.FAILED,
                                  error="; ".join(errors))
            self.results[job_id] = JobResult(
                front=ParetoFront(), state=JobState.FAILED,
                job_id=job_id, shards=len(job_shards),
                error="; ".join(errors))
            self.metrics.inc("service.jobs_failed")
            return
        ordered = sorted(job_shards, key=_shard_sort_key)
        with self.tracer.span("service.merge", job=job_id,
                              shards=len(ordered)) as span:
            front = merge_fronts([
                ParetoFront.from_dict(docs[s.shard_id]["front"])
                for s in ordered])
            span.set(front_size=len(front))
        if self.config.isolate_stores:
            from .sync import merge_store
            merge_store(shard_store_root(self.store_root, job_id,
                                         True), self.store_root)
        self.queue.store_front(job_id, front.to_json())
        self.queue.transition(job_id, JobState.DONE)
        self.results[job_id] = JobResult(
            front=front, state=JobState.DONE,
            generations=max(int(docs[s.shard_id]["generations"])
                            for s in ordered),
            job_id=job_id, shards=len(ordered))
        self.metrics.inc("service.jobs_done")

    async def _monitor(self, board: ShardBoard,
                       pending: Set[str]) -> None:
        """Reap dead workers, steal their claims, respawn with
        backoff; returns early on cancellation."""
        cfg = self.config
        respawns = 0
        while True:
            await asyncio.sleep(cfg.poll)
            if self._cancel.is_set():
                return
            dead = [p for p in self._procs if not p.is_alive()]
            if dead and pending:
                pids = {p.pid for p in dead if p.pid is not None}
                if board.release_dead(pids):
                    self.metrics.inc("service.retries", len(pids))
                for proc in dead:
                    self._procs.remove(proc)
                if not board.all_done():
                    for _ in dead:
                        if respawns >= cfg.max_respawns:
                            if not any(p.is_alive()
                                       for p in self._procs):
                                raise ServiceError(
                                    f"worker pool died "
                                    f"{respawns} times; aborting "
                                    f"campaign "
                                    f"{self.campaign_id}")
                            continue
                        respawns += 1
                        self.metrics.inc(
                            "service.workers_respawned")
                        await asyncio.sleep(
                            cfg.respawn_backoff
                            * (2 ** (respawns - 1)))
                        self._spawn_worker(board)

    def _fail_remaining(self,
                        by_job: Dict[str, List[ShardSpec]]) -> None:
        for job_id in by_job:
            if job_id in self.results:
                continue
            record = self.queue.get(job_id)
            if not record.state.terminal:
                self.queue.transition(job_id, JobState.FAILED,
                                      error="worker pool died")
            self.metrics.inc("service.jobs_failed")

    def _cancel_remaining(self,
                          by_job: Dict[str, List[ShardSpec]]) -> None:
        for job_id in by_job:
            if job_id in self.results:
                continue
            record = self.queue.get(job_id)
            if not record.state.terminal:
                self.queue.transition(job_id, JobState.CANCELLED,
                                      error="campaign cancelled")
            self.results[job_id] = JobResult(
                front=ParetoFront(), state=JobState.CANCELLED,
                job_id=job_id, shards=len(by_job[job_id]),
                error="campaign cancelled")
            self.metrics.inc("service.jobs_cancelled")


def serve(queue: Union[JobQueue, str, "os.PathLike[str]", None]
          = None, *,
          store: Union[str, "os.PathLike[str]", None] = None,
          workers: int = 2, once: bool = False, poll: float = 0.5,
          max_batch: Optional[int] = None,
          isolate_stores: bool = False,
          streaming: bool = False,
          config: Optional[OrchestratorConfig] = None,
          tracer: Optional[AnyTracer] = None,
          metrics: Optional[MetricsRegistry] = None) -> int:
    """Drain a job queue: the long-running loop behind ``repro serve``.

    Claims pending jobs in submission order (stealing stale server
    leases), runs each batch through a :class:`CampaignOrchestrator`,
    and repeats.  ``once=True`` exits when the queue is empty; without
    it the loop polls forever and **SIGTERM drains gracefully**: the
    in-flight batch finishes, no new jobs are claimed, and the loop
    returns.  Returns the number of jobs processed.
    """
    store_root = Path(store) if store is not None \
        else Path(default_store_root())
    if isinstance(queue, JobQueue):
        job_queue = queue
    else:
        job_queue = JobQueue(queue if queue is not None
                             else default_queue_root(store_root))
    base = config or OrchestratorConfig()
    base = replace(base, workers=workers,
                   isolate_stores=isolate_stores,
                   streaming=streaming or base.streaming)
    drain = threading.Event()
    previous = None
    in_main = (threading.current_thread()
               is threading.main_thread())
    if in_main:
        try:
            previous = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: drain.set())
        except (ValueError, OSError):  # pragma: no cover
            previous = None
    me = f"serve-{os.getpid()}"
    processed = 0
    try:
        while not drain.is_set():
            batch: List[JobRecord] = []
            for record in job_queue.pending():
                if max_batch is not None and len(batch) >= max_batch:
                    break
                if job_queue.claim(record.job_id, me):
                    batch.append(job_queue.get(record.job_id))
            if batch:
                orchestrator = CampaignOrchestrator(
                    job_queue, batch, store=store_root, config=base,
                    tracer=tracer, metrics=metrics)
                try:
                    orchestrator.run()
                finally:
                    for record in batch:
                        job_queue.release(record.job_id)
                processed += len(batch)
                continue
            if once:
                break
            drain.wait(poll)
    finally:
        if in_main and previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return processed


__all__ = [
    "CRASH_ENV", "CampaignOrchestrator", "OrchestratorConfig",
    "ShardBoard", "merge_fronts", "serve", "shard_store_root",
]

"""The job model of the optimization service.

A **job** is one self-contained optimization request: BDL source +
allocation + objective + search knobs, serialized as a versioned
canonical-JSON document (:data:`JOB_SCHEMA`).  Its identity is content
derived — :meth:`JobSpec.job_id` hashes the evaluation-context
fingerprint (library, allocation, scheduler config) together with the
behavior's WL fingerprint and the canonical spec document, so
resubmitting the same work from any machine yields the same id, and two
stores that each ran it can be merged without coordination
(:mod:`repro.service.sync`).

Jobs move through the :class:`JobState` lifecycle::

    PENDING --> RUNNING --> DONE
                        \\-> FAILED
                        \\-> CANCELLED

:class:`JobQueue` is the file-backed queue ``repro serve`` drains:
every record is one atomically-written JSON file, claims are
``O_EXCL`` lock files, and results are canonical front exports — the
same crash model as the run store (:mod:`repro.explore.store`).

A running job is split into **shards** (:class:`ShardSpec`): one
deterministic serial exploration per (seed, objective-cell), where the
``"pareto"`` cell is the full NSGA-II loop and the ``"throughput"`` /
``"power"`` cells are warm-start-only runs contributing the
single-objective endpoints early.  Shard fronts merge conflict-free
(:func:`repro.service.orchestrator.merge_fronts`): the merged front of
a single-seed campaign is byte-identical to the serial
``repro explore`` export.

This module deliberately imports nothing from :mod:`repro.explore` or
:mod:`repro.api` at module level: the exploration runner imports
:class:`JobResult` / :class:`JobState` from here, and keeping this
module leaf-like makes that import acyclic from every entry point.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, fields
from enum import Enum
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, List, Optional, Tuple,
                    Union)

from ..core.objectives import POWER, THROUGHPUT
from ..errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.evalcache import CacheStats
    from ..core.telemetry import ExploreTelemetry
    from ..explore.pareto import ParetoFront

#: Version stamp of the canonical job documents (specs and records).
JOB_SCHEMA = 1

#: The multi-objective job objective (full Pareto exploration).
PARETO = "pareto"

#: Objectives a job may request.
JOB_OBJECTIVES = (PARETO, THROUGHPUT, POWER)


def _atomic_write(path: Union[str, "os.PathLike[str]"],
                  text: str) -> None:
    # Runtime import: explore triggers the full package, which in turn
    # imports this module — see the module docstring.
    from ..explore.store import atomic_write_text
    atomic_write_text(path, text)


class JobState(str, Enum):
    """Lifecycle state of a submitted job."""

    PENDING = "pending"      #: queued, not yet claimed by a server
    RUNNING = "running"      #: claimed; shards executing
    DONE = "done"            #: merged front available
    FAILED = "failed"        #: a shard failed deterministically
    CANCELLED = "cancelled"  #: interrupted before completion

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


@dataclass
class JobSpec:
    """One optimization request, canonically serializable.

    ``source`` is the BDL text itself (never a path — a job must be
    executable on a machine that has only the queue).  Defaults mirror
    the ``repro explore`` CLI, so a default job reproduces a default
    CLI run byte-for-byte.
    """

    source: str
    alloc: Optional[str] = None
    objective: str = PARETO
    seed: int = 0
    num_seeds: int = 1
    generations: int = 4
    population: int = 8
    candidates_per_seed: int = 24
    iterations: int = 6
    warm_start: bool = True
    #: search strategy for the warm-start searches ("greedy", "macro"
    #: or "portfolio"; see docs/search.md)
    strategy: str = "greedy"
    profile_traces: int = 12
    clock: float = 25.0
    vdd: float = 5.0
    vt: float = 1.0
    cycle_time: float = 1.0

    # -- validation -----------------------------------------------------
    def validate(self) -> "JobSpec":
        """Check the spec; returns ``self`` for chaining."""
        if not isinstance(self.source, str) or not self.source.strip():
            raise ServiceError("job spec needs non-empty BDL source")
        if self.objective not in JOB_OBJECTIVES:
            raise ServiceError(
                f"unknown objective {self.objective!r}; expected one "
                f"of {JOB_OBJECTIVES}")
        for name in ("num_seeds", "generations", "population",
                     "candidates_per_seed", "iterations",
                     "profile_traces"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ServiceError(
                    f"job spec field {name} must be a non-negative "
                    f"integer, got {value!r}")
        if self.num_seeds < 1:
            raise ServiceError("num_seeds must be >= 1")
        from ..search import STRATEGIES
        if self.strategy not in STRATEGIES:
            raise ServiceError(
                f"unknown strategy {self.strategy!r}; expected one "
                f"of {STRATEGIES}")
        return self

    # -- canonical serialization ----------------------------------------
    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"schema": JOB_SCHEMA}
        doc.update(asdict(self))
        return doc

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, minimal separators, one line.

        Identical specs serialize to identical bytes on every machine;
        the document (not the in-memory object) is what the job id
        hashes.
        """
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobSpec":
        if not isinstance(doc, dict):
            raise ServiceError(
                f"job spec is {type(doc).__name__}, not an object")
        if doc.get("schema") != JOB_SCHEMA:
            raise ServiceError(
                f"job spec schema {doc.get('schema')!r} unsupported "
                f"(this build reads {JOB_SCHEMA})")
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in doc.items() if k in known}
        missing = {"source"} - set(kwargs)
        if missing:
            raise ServiceError(
                f"job spec is missing fields: {sorted(missing)}")
        return cls(**kwargs).validate()

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ServiceError(f"unparsable job spec: {exc}") from exc
        return cls.from_dict(doc)

    # -- identity -------------------------------------------------------
    def job_id(self) -> str:
        """Stable content-derived id of this job.

        Extends the run store's fingerprint scheme: the id digests the
        evaluation-context fingerprint (library + allocation +
        scheduler config), the behavior's WL fingerprint (invariant
        under node renumbering), and the canonical spec document.  Two
        machines computing the id of the same request agree without
        any shared state.
        """
        from ..api import coerce_allocation
        from ..cdfg.ir import _digest
        from ..core.engine import context_fingerprint
        from ..core.evalcache import behavior_fingerprint
        from ..hw import dac98_library
        from ..lang import compile_source
        from ..sched.types import SchedConfig
        self.validate()
        behavior = compile_source(self.source)
        ctx = context_fingerprint(dac98_library(),
                                  coerce_allocation(self.alloc),
                                  SchedConfig(clock=self.clock))
        payload = ":".join((ctx, behavior_fingerprint(behavior),
                            self.to_json()))
        return _digest(payload.encode()).hexdigest()[:16]

    # -- sharding -------------------------------------------------------
    def seeds(self) -> Tuple[int, ...]:
        return tuple(range(self.seed, self.seed + self.num_seeds))

    def cells(self) -> Tuple[str, ...]:
        """Objective cells each seed shards into."""
        if self.objective != PARETO:
            return (self.objective,)
        if not self.warm_start:
            return (PARETO,)
        # Warm-start endpoints run as their own shards: they finish
        # early (single-objective searches, zero generations) and their
        # points are by construction already members-or-dominated of
        # the pareto cell's front, so merging them never changes it.
        return (THROUGHPUT, POWER, PARETO)


@dataclass
class ShardSpec:
    """One deterministic serial exploration unit of a job."""

    job_id: str
    seed: int
    cell: str          #: "pareto", "throughput" or "power"
    spec: JobSpec

    @property
    def shard_id(self) -> str:
        return f"{self.job_id}.s{self.seed}-{self.cell}"

    def explore_config(self):
        """The exact :class:`~repro.explore.ExploreConfig` this shard
        runs — chosen so a single-seed campaign's merged front equals
        the serial ``repro explore`` front byte-for-byte."""
        from ..core.search import SearchConfig
        from ..explore.runner import ExploreConfig
        from ..sched.types import SchedConfig
        spec = self.spec
        search = SearchConfig(max_outer_iters=spec.iterations,
                              seed=self.seed,
                              strategy=spec.strategy)
        base = dict(population_size=spec.population,
                    max_candidates_per_seed=spec.candidates_per_seed,
                    seed=self.seed, workers=0,
                    sched=SchedConfig(clock=spec.clock), search=search,
                    vdd=spec.vdd, vt=spec.vt,
                    cycle_time=spec.cycle_time)
        if self.cell == PARETO:
            return ExploreConfig(generations=spec.generations,
                                 warm_start=spec.warm_start, **base)
        # Warm-start-only endpoint shard: no generational loop, one
        # single-objective search seeding the front.
        return ExploreConfig(generations=0, warm_start=True,
                             warm_start_objectives=(self.cell,),
                             **base)

    def as_dict(self) -> Dict[str, object]:
        return {"schema": JOB_SCHEMA, "job_id": self.job_id,
                "seed": self.seed, "cell": self.cell,
                "spec": self.spec.as_dict()}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ShardSpec":
        if doc.get("schema") != JOB_SCHEMA:
            raise ServiceError(
                f"shard doc schema {doc.get('schema')!r} unsupported")
        return cls(job_id=doc["job_id"], seed=int(doc["seed"]),
                   cell=doc["cell"],
                   spec=JobSpec.from_dict(doc["spec"]))


def expand_shards(spec: JobSpec, job_id: Optional[str] = None
                  ) -> List[ShardSpec]:
    """All shards of a job, in deterministic (seed, cell) order."""
    spec.validate()
    jid = job_id if job_id is not None else spec.job_id()
    return [ShardSpec(job_id=jid, seed=seed, cell=cell, spec=spec)
            for seed in spec.seeds() for cell in spec.cells()]


@dataclass
class JobResult:
    """The one public result shape of the service *and* the facade.

    ``repro.explore(...)``, ``repro.result(job_id)`` and every shard
    all report through this type.  ``front`` is the (merged)
    :class:`~repro.explore.pareto.ParetoFront`; ``state`` is terminal.
    ``telemetry`` / ``store_stats`` are present for in-process runs and
    ``None`` for results rehydrated from a queue.
    """

    front: "ParetoFront"
    state: JobState
    generations: int = 0
    telemetry: Optional["ExploreTelemetry"] = None
    store_stats: Optional["CacheStats"] = None
    checkpoint: str = ""
    job_id: str = ""
    shards: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.state is JobState.DONE

    @property
    def evaluations(self) -> int:
        return self.telemetry.evaluations if self.telemetry else 0

    @property
    def store_hit_rate(self) -> float:
        return self.store_stats.hit_rate if self.store_stats else 0.0

    # -- deprecated pre-service accessors -------------------------------
    @property
    def interrupted(self) -> bool:
        """Deprecated: compare ``state`` to :class:`JobState` instead."""
        import warnings
        warnings.warn(
            "JobResult.interrupted is deprecated; check "
            "result.state is JobState.CANCELLED instead",
            DeprecationWarning, stacklevel=2)
        return self.state is JobState.CANCELLED

    @property
    def checkpoint_path(self) -> str:
        """Deprecated: use ``checkpoint``."""
        import warnings
        warnings.warn(
            "JobResult.checkpoint_path is deprecated; use "
            "result.checkpoint instead",
            DeprecationWarning, stacklevel=2)
        return self.checkpoint


@dataclass
class JobRecord:
    """One queue entry: spec + lifecycle bookkeeping."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    worker: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {"schema": JOB_SCHEMA, "job_id": self.job_id,
                "state": self.state.value, "spec": self.spec.as_dict(),
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "attempts": self.attempts, "error": self.error,
                "worker": self.worker}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobRecord":
        if doc.get("schema") != JOB_SCHEMA:
            raise ServiceError(
                f"job record schema {doc.get('schema')!r} unsupported")
        try:
            state = JobState(doc["state"])
        except (KeyError, ValueError) as exc:
            raise ServiceError(
                f"job record has bad state {doc.get('state')!r}"
            ) from exc
        return cls(job_id=doc["job_id"],
                   spec=JobSpec.from_dict(doc["spec"]), state=state,
                   submitted_at=float(doc.get("submitted_at", 0.0)),
                   started_at=doc.get("started_at"),
                   finished_at=doc.get("finished_at"),
                   attempts=int(doc.get("attempts", 0)),
                   error=doc.get("error"), worker=doc.get("worker"))


class JobQueue:
    """File-backed job queue shared by submitters and servers.

    Layout under the queue root (default ``<store>/queue``)::

        jobs/<job_id>.json          one atomically-written record each
        claims/<job_id>.claim       O_EXCL server lease (pid + stamp)
        results/<job_id>.front.json merged front, canonical JSON
        campaigns/<id>/             shard boards (see orchestrator)

    Submission is idempotent: the job id is content-derived, so
    resubmitting an identical request returns the existing record.
    """

    #: A server lease older than this (seconds, no heartbeat) may be
    #: reclaimed by another server.
    JOB_LEASE = 600.0

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self.root = Path(root)
        try:
            for sub in ("jobs", "claims", "results", "campaigns"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServiceError(
                f"cannot create job queue at {self.root}: {exc}"
            ) from exc

    # -- paths ----------------------------------------------------------
    def _record_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def _claim_path(self, job_id: str) -> Path:
        return self.root / "claims" / f"{job_id}.claim"

    def front_path(self, job_id: str) -> Path:
        """Where the merged front of a finished job lives."""
        return self.root / "results" / f"{job_id}.front.json"

    def board_root(self, campaign_id: str) -> Path:
        return self.root / "campaigns" / campaign_id

    # -- submission -----------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue a job (idempotent); returns its record."""
        spec.validate()
        job_id = spec.job_id()
        existing = self._load(job_id)
        if existing is not None:
            return existing
        record = JobRecord(job_id=job_id, spec=spec,
                           submitted_at=time.time())
        self.save(record)
        return record

    # -- access ---------------------------------------------------------
    def _load(self, job_id: str) -> Optional[JobRecord]:
        path = self._record_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return JobRecord.from_dict(json.load(handle))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ServiceError(
                f"job record {path.name} is unreadable: {exc}") from exc

    def get(self, job_id: str) -> JobRecord:
        record = self._load(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return record

    def save(self, record: JobRecord) -> None:
        _atomic_write(self._record_path(record.job_id),
                      json.dumps(record.as_dict(), sort_keys=True))

    def jobs(self) -> List[JobRecord]:
        """All records, oldest submission first (id tiebreak)."""
        out = []
        for path in sorted((self.root / "jobs").glob("*.json")):
            record = self._load(path.stem)
            if record is not None:
                out.append(record)
        return sorted(out, key=lambda r: (r.submitted_at, r.job_id))

    def pending(self) -> List[JobRecord]:
        return [r for r in self.jobs() if r.state is JobState.PENDING]

    # -- server claims --------------------------------------------------
    def claim(self, job_id: str, worker: str) -> bool:
        """Take the server lease on a job (O_EXCL; steals stale ones)."""
        path = self._claim_path(job_id)
        doc = json.dumps({"pid": os.getpid(), "worker": worker,
                          "ts": time.time()})
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if attempt or not self._claim_stale(path):
                    return False
                try:
                    os.unlink(path)  # stale lease: steal it
                except OSError:
                    return False
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(doc)
            return True
        return False

    def _claim_stale(self, path: Path) -> bool:
        try:
            doc = json.loads(path.read_text())
            return time.time() - float(doc["ts"]) > self.JOB_LEASE
        except (OSError, ValueError, KeyError, TypeError):
            return True  # unreadable claim: treat as stale

    def release(self, job_id: str) -> None:
        try:
            os.unlink(self._claim_path(job_id))
        except OSError:
            pass

    # -- lifecycle ------------------------------------------------------
    def transition(self, job_id: str, state: JobState, *,
                   error: Optional[str] = None,
                   worker: Optional[str] = None) -> JobRecord:
        record = self.get(job_id)
        if record.state.terminal and state is not record.state:
            raise ServiceError(
                f"job {job_id} is already {record.state.value}")
        record.state = state
        now = time.time()
        if state is JobState.RUNNING:
            record.started_at = now
            record.attempts += 1
            record.worker = worker
        elif state.terminal:
            record.finished_at = now
            record.error = error
        self.save(record)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation: pending jobs cancel immediately;
        running jobs are cancelled by their server at the next tick."""
        record = self.get(job_id)
        if record.state is JobState.PENDING:
            return self.transition(job_id, JobState.CANCELLED)
        return record

    # -- results --------------------------------------------------------
    def store_front(self, job_id: str, front_json: str) -> None:
        _atomic_write(self.front_path(job_id), front_json)

    def result(self, job_id: str) -> JobResult:
        """The merged-front result of a finished job."""
        from ..explore.pareto import ParetoFront
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} is {record.state.value}, not done"
                + (f" ({record.error})" if record.error else ""))
        path = self.front_path(job_id)
        try:
            front = ParetoFront.from_json(path.read_text())
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"result of job {job_id} is unreadable: {exc}"
            ) from exc
        spec = record.spec
        return JobResult(front=front, state=record.state,
                         generations=(spec.generations
                                      if spec.objective == PARETO
                                      else 0),
                         job_id=job_id,
                         shards=len(expand_shards(spec, job_id)))


def default_queue_root(store: Union[str, "os.PathLike[str]", None]
                       = None) -> Path:
    """The queue directory for a store root (``<store>/queue``)."""
    from ..explore.store import default_store_root
    root = Path(store) if store is not None else \
        Path(default_store_root())
    return root / "queue"


__all__ = [
    "JOB_OBJECTIVES", "JOB_SCHEMA", "JobQueue", "JobRecord",
    "JobResult", "JobSpec", "JobState", "PARETO", "ShardSpec",
    "default_queue_root", "expand_shards",
]

"""Optimization-as-a-service: jobs, orchestration, store federation.

Three pieces turn the single-call :mod:`repro.api` into a long-running
service (see ``docs/service.md``):

* :mod:`repro.service.jobs` — the canonical job model: versioned
  :class:`JobSpec` documents with content-derived ids, the
  :class:`JobState` lifecycle, the file-backed :class:`JobQueue`, and
  :class:`JobResult` — the one public result shape shared with
  ``repro.explore``;
* :mod:`repro.service.orchestrator` — the asyncio campaign
  orchestrator: splits jobs into (seed, objective) shards on a shared
  file board, dispatches them to a worker-process pool with
  heartbeats, stale-lease work stealing and retry-with-backoff, and
  merges shard fronts deterministically;
* :mod:`repro.service.sync` — conflict-free union of two
  content-addressed run stores, so N processes or machines cooperate
  on one campaign.

Only the leaf job model loads eagerly; the orchestrator (which pulls
in the full pipeline) loads on first attribute access, keeping
``import repro.service`` cheap and the explore → jobs import acyclic.
"""

from .jobs import (JOB_OBJECTIVES, JOB_SCHEMA, JobQueue, JobRecord,
                   JobResult, JobSpec, JobState, PARETO, ShardSpec,
                   default_queue_root, expand_shards)

#: Lazily-loaded names -> defining submodule (PEP 562).
_LAZY = {
    "CampaignOrchestrator": "orchestrator",
    "ShardBoard": "orchestrator",
    "merge_fronts": "orchestrator",
    "serve": "orchestrator",
    "SyncStats": "sync",
    "merge_store": "sync",
    "sync_stores": "sync",
}

__all__ = [
    "JOB_OBJECTIVES", "JOB_SCHEMA", "JobQueue", "JobRecord",
    "JobResult", "JobSpec", "JobState", "PARETO", "ShardSpec",
    "default_queue_root", "expand_shards",
] + sorted(_LAZY)


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    return getattr(import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

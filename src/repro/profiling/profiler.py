"""CDFG profiling: branch probabilities from input traces.

The first step of the FACT flow (paper Section 4.1): "The simulation
yields the number of times each branch in the CDFG is encountered, from
which the probability of a branch can be computed."  Once computed, the
probabilities are reused for every rescheduling inside the
transformation loop — simulation happens only once per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cdfg.interp import Interpreter
from ..cdfg.regions import Behavior
from ..errors import InterpError
from .traces import TraceSet


@dataclass
class Profile:
    """Aggregated execution statistics over a trace set.

    Attributes:
        branch_probs: per condition node, P(condition is true).
        cond_counts: raw [false, true] counts per condition node.
        loop_iterations: mean body executions per run, per loop name.
        runs: number of traces executed.
        failures: traces that raised (e.g. out-of-bounds index); they
            are skipped but counted.
    """

    branch_probs: Dict[int, float] = field(default_factory=dict)
    cond_counts: Dict[int, List[int]] = field(default_factory=dict)
    loop_iterations: Dict[str, float] = field(default_factory=dict)
    runs: int = 0
    failures: int = 0

    def prob(self, cond: int, default: float = 0.5) -> float:
        """P(cond true), with a default for unobserved conditions."""
        return self.branch_probs.get(cond, default)


def profile(behavior: Behavior, traces: TraceSet,
            max_steps: int = 2_000_000) -> Profile:
    """Execute ``behavior`` over every trace and aggregate statistics.

    Raises:
        InterpError: only if *every* trace fails.
    """
    result = Profile()
    loop_totals: Dict[str, int] = {}
    interp = Interpreter(behavior, max_steps=max_steps)
    last_error: Optional[InterpError] = None
    for case in traces:
        try:
            run = interp.run(case.inputs, case.arrays)
        except InterpError as exc:
            result.failures += 1
            last_error = exc
            continue
        result.runs += 1
        for cond, (f, t) in run.cond_counts.items():
            acc = result.cond_counts.setdefault(cond, [0, 0])
            acc[0] += f
            acc[1] += t
        for name, iters in run.loop_iterations.items():
            loop_totals[name] = loop_totals.get(name, 0) + iters
    if result.runs == 0:
        if last_error is not None:
            raise InterpError(
                f"every profiling trace failed; last error: {last_error}")
        return result
    for cond, (f, t) in result.cond_counts.items():
        total = f + t
        result.branch_probs[cond] = t / total if total else 0.5
    result.loop_iterations = {name: total / result.runs
                              for name, total in loop_totals.items()}
    return result

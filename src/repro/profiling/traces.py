"""Input trace generation.

The paper drives both profiling and power measurement from "typical
input traces"; for power they use "a zero-mean Gaussian sequence ...
passed through an autoregressive filter to introduce the desired level
of temporal correlation" (Section 5).  This module provides seeded
generators for both styles plus a :class:`TraceSet` container.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cdfg.regions import Behavior


@dataclass
class TraceCase:
    """One stimulus: scalar inputs plus initial array contents."""

    inputs: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, List[int]] = field(default_factory=dict)


@dataclass
class TraceSet:
    """A collection of stimuli representing typical operating input."""

    cases: List[TraceCase] = field(default_factory=list)

    def __iter__(self):
        return iter(self.cases)

    def __len__(self) -> int:
        return len(self.cases)


def gaussian_ar_sequence(n: int, *, std: float = 64.0, rho: float = 0.9,
                         mean: float = 0.0, seed: int = 0,
                         rng: Optional[random.Random] = None) -> List[int]:
    """Zero-mean Gaussian sequence with AR(1) temporal correlation.

    ``x[t] = rho * x[t-1] + sqrt(1 - rho²) * n[t]`` keeps the marginal
    standard deviation at ``std`` for any correlation ``rho``.
    """
    if not -1.0 < rho < 1.0:
        raise ValueError(f"AR(1) coefficient must be in (-1, 1), got {rho}")
    r = rng if rng is not None else random.Random(seed)
    innov = math.sqrt(max(0.0, 1.0 - rho * rho))
    x = 0.0
    out: List[int] = []
    for _ in range(n):
        x = rho * x + innov * r.gauss(0.0, std)
        out.append(int(round(mean + x)))
    return out


def uniform_traces(behavior: Behavior, runs: int, *, lo: int = 0,
                   hi: int = 100, seed: int = 0,
                   array_lo: int = 0, array_hi: int = 100) -> TraceSet:
    """Uniform random stimuli matching the behavior's interface."""
    rng = random.Random(seed)
    cases = []
    for _ in range(runs):
        inputs = {name: rng.randint(lo, hi) for name in behavior.inputs}
        arrays = {name: [rng.randint(array_lo, array_hi)
                         for _ in range(decl.size)]
                  for name, decl in behavior.arrays.items()}
        cases.append(TraceCase(inputs, arrays))
    return TraceSet(cases)


def gaussian_traces(behavior: Behavior, runs: int, *, std: float = 64.0,
                    rho: float = 0.9, mean: float = 0.0,
                    seed: int = 0) -> TraceSet:
    """Gaussian-AR stimuli: each input/array cell drawn from one stream.

    This mirrors the paper's power-measurement stimulus: temporally
    correlated samples shared across consecutive runs.
    """
    rng = random.Random(seed)
    n_scalars = len(behavior.inputs)
    n_cells = sum(d.size for d in behavior.arrays.values())
    stream = gaussian_ar_sequence(runs * (n_scalars + n_cells), std=std,
                                  rho=rho, mean=mean, rng=rng)
    cases = []
    pos = 0
    for _ in range(runs):
        inputs = {}
        for name in behavior.inputs:
            inputs[name] = stream[pos]
            pos += 1
        arrays = {}
        for name, decl in behavior.arrays.items():
            arrays[name] = stream[pos:pos + decl.size]
            pos += decl.size
        cases.append(TraceCase(inputs, arrays))
    return TraceSet(cases)

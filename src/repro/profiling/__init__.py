"""Trace generation and CDFG profiling."""

from .profiler import Profile, profile
from .traces import (TraceCase, TraceSet, gaussian_ar_sequence,
                     gaussian_traces, uniform_traces)

__all__ = [
    "Profile", "TraceCase", "TraceSet", "gaussian_ar_sequence",
    "gaussian_traces", "profile", "uniform_traces",
]

"""Operation kinds for the token-passing CDFG.

Each CDFG node carries an :class:`OpKind`.  This module centralizes the
static properties of every kind — arity, algebraic properties used by the
transformation library (commutativity / associativity / distributive
pairs), and a Python evaluator used by the CDFG interpreter.

The evaluators implement fixed-width two's-complement integer arithmetic
(default 32 bits) so that behavior matches what synthesized hardware
would compute, and so that transformed and untransformed CDFGs can be
compared bit-exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Default datapath width, in bits, for interpreter arithmetic.
DEFAULT_WIDTH = 32


def wrap(value: int, width: int = DEFAULT_WIDTH) -> int:
    """Wrap ``value`` into signed two's-complement range for ``width`` bits."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


class OpKind(enum.Enum):
    """The operation alphabet of the CDFG."""

    # Sources / sinks
    CONST = "const"
    INPUT = "input"
    OUTPUT = "output"
    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    INC = "inc"
    DEC = "dec"
    SHL = "shl"
    SHR = "shr"
    # Bitwise
    BAND = "band"
    BOR = "bor"
    BXOR = "bxor"
    BNOT = "bnot"
    # Comparison
    LT = "lt"
    GT = "gt"
    LE = "le"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    # Logical
    LAND = "land"
    LOR = "lor"
    LNOT = "lnot"
    # Memory
    LOAD = "load"
    STORE = "store"
    # Control / merge
    JOIN = "join"
    SELECT = "select"
    COPY = "copy"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an :class:`OpKind`.

    Attributes:
        arity: number of data inputs; ``None`` for variable arity (JOIN).
        commutative: operand order is irrelevant.
        associative: ``(a op b) op c == a op (b op c)``.
        has_output: the node produces a data value.
        evaluator: pure function over operand values, or ``None`` for
            kinds with bespoke interpreter handling (JOIN, LOAD, ...).
    """

    arity: Optional[int]
    commutative: bool = False
    associative: bool = False
    has_output: bool = True
    evaluator: Optional[Callable[..., int]] = None


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("CDFG division by zero")
    return int(a / b)  # truncate toward zero, like C


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("CDFG modulo by zero")
    return a - _div(a, b) * b


def _shl(a: int, b: int) -> int:
    return a << (b & (DEFAULT_WIDTH - 1))


def _shr(a: int, b: int) -> int:
    return a >> (b & (DEFAULT_WIDTH - 1))


OP_INFO: Dict[OpKind, OpInfo] = {
    OpKind.CONST: OpInfo(arity=0),
    OpKind.INPUT: OpInfo(arity=0),
    OpKind.OUTPUT: OpInfo(arity=1, has_output=False),
    OpKind.ADD: OpInfo(2, commutative=True, associative=True,
                       evaluator=lambda a, b: a + b),
    OpKind.SUB: OpInfo(2, evaluator=lambda a, b: a - b),
    OpKind.MUL: OpInfo(2, commutative=True, associative=True,
                       evaluator=lambda a, b: a * b),
    OpKind.DIV: OpInfo(2, evaluator=_div),
    OpKind.MOD: OpInfo(2, evaluator=_mod),
    OpKind.NEG: OpInfo(1, evaluator=lambda a: -a),
    OpKind.INC: OpInfo(1, evaluator=lambda a: a + 1),
    OpKind.DEC: OpInfo(1, evaluator=lambda a: a - 1),
    OpKind.SHL: OpInfo(2, evaluator=_shl),
    OpKind.SHR: OpInfo(2, evaluator=_shr),
    OpKind.BAND: OpInfo(2, commutative=True, associative=True,
                        evaluator=lambda a, b: a & b),
    OpKind.BOR: OpInfo(2, commutative=True, associative=True,
                       evaluator=lambda a, b: a | b),
    OpKind.BXOR: OpInfo(2, commutative=True, associative=True,
                        evaluator=lambda a, b: a ^ b),
    OpKind.BNOT: OpInfo(1, evaluator=lambda a: ~a),
    OpKind.LT: OpInfo(2, evaluator=lambda a, b: int(a < b)),
    OpKind.GT: OpInfo(2, evaluator=lambda a, b: int(a > b)),
    OpKind.LE: OpInfo(2, evaluator=lambda a, b: int(a <= b)),
    OpKind.GE: OpInfo(2, evaluator=lambda a, b: int(a >= b)),
    OpKind.EQ: OpInfo(2, commutative=True, evaluator=lambda a, b: int(a == b)),
    OpKind.NE: OpInfo(2, commutative=True, evaluator=lambda a, b: int(a != b)),
    OpKind.LAND: OpInfo(2, commutative=True, associative=True,
                        evaluator=lambda a, b: int(bool(a) and bool(b))),
    OpKind.LOR: OpInfo(2, commutative=True, associative=True,
                       evaluator=lambda a, b: int(bool(a) or bool(b))),
    OpKind.LNOT: OpInfo(1, evaluator=lambda a: int(not a)),
    OpKind.LOAD: OpInfo(1),
    OpKind.STORE: OpInfo(2, has_output=False),
    OpKind.JOIN: OpInfo(None),
    OpKind.SELECT: OpInfo(3),
    OpKind.COPY: OpInfo(1, evaluator=lambda a: a),
}

#: Comparison kinds (map to comparator functional units).
COMPARISONS = frozenset({OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE,
                         OpKind.EQ, OpKind.NE})

#: Kinds that never occupy a functional unit (wiring / control plumbing).
FREE_KINDS = frozenset({OpKind.CONST, OpKind.INPUT, OpKind.OUTPUT,
                        OpKind.JOIN, OpKind.COPY})

#: Pairs (mul_like, add_like) over which distributivity holds:
#: ``a*b (+/-) a*c == a*(b (+/-) c)``.
DISTRIBUTIVE_PAIRS: Tuple[Tuple[OpKind, OpKind], ...] = (
    (OpKind.MUL, OpKind.ADD),
    (OpKind.MUL, OpKind.SUB),
    (OpKind.BAND, OpKind.BOR),
)

#: For comparisons, the kind obtained by swapping the operands
#: (``a < b  ==  b > a``).  Used by the commutativity transformation.
SWAPPED_COMPARISON: Dict[OpKind, OpKind] = {
    OpKind.LT: OpKind.GT,
    OpKind.GT: OpKind.LT,
    OpKind.LE: OpKind.GE,
    OpKind.GE: OpKind.LE,
    OpKind.EQ: OpKind.EQ,
    OpKind.NE: OpKind.NE,
}


def info(kind: OpKind) -> OpInfo:
    """Return the :class:`OpInfo` for ``kind``."""
    return OP_INFO[kind]


def is_commutative(kind: OpKind) -> bool:
    """True if operand order is irrelevant for ``kind``."""
    return OP_INFO[kind].commutative


def is_associative(kind: OpKind) -> bool:
    """True if ``kind`` is associative."""
    return OP_INFO[kind].associative


def evaluate(kind: OpKind, *operands: int, width: int = DEFAULT_WIDTH) -> int:
    """Evaluate a pure operation on integer operands with wraparound.

    Raises:
        ValueError: if ``kind`` has no pure evaluator.
    """
    op = OP_INFO[kind]
    if op.evaluator is None:
        raise ValueError(f"operation {kind.value} has no pure evaluator")
    return wrap(op.evaluator(*operands), width)

"""Guard algebra and mutual-exclusion analysis.

A *guard* is a conjunction of literals ``(cond_node, polarity)``: the set
of conditions under which an operation executes.  The *effective* guard
of a node also accounts for the guards of the values it consumes — a node
cannot execute if a producer it reads from did not — with ``JOIN`` nodes
weakening the condition to the literals common to all of their inputs
(a join fires if *any* input fired, so only the shared part of the
inputs' guards is guaranteed).

Mutual exclusion (paper Example 3: "some input pairs might be mutually
exclusive") falls out of the guard algebra: two nodes are mutually
exclusive iff their effective guards contain the same condition with
opposite polarities.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from .ir import Graph
from .ops import OpKind

#: A guard: conjunction of (condition node id, required polarity).
Guard = FrozenSet[Tuple[int, bool]]

TRUE_GUARD: Guard = frozenset()


def direct_guard(graph: Graph, nid: int) -> Guard:
    """The literals attached to ``nid`` via control edges only."""
    return frozenset(graph.control_inputs(nid))


def conflicts(a: Guard, b: Guard) -> bool:
    """True if the two guards can never hold simultaneously.

    Detects only syntactic conflicts (same condition, opposite
    polarity); semantically contradictory guard pairs over different
    condition nodes are conservatively treated as compatible.
    """
    conds_a = {cond: pol for cond, pol in a}
    return any(cond in conds_a and conds_a[cond] != pol for cond, pol in b)


def implies(a: Guard, b: Guard) -> bool:
    """True if guard ``a`` holding implies guard ``b`` holds (b ⊆ a)."""
    return b <= a


class GuardAnalysis:
    """Computes effective guards over a graph, with memoization.

    The analysis treats loop back edges (cycles through header joins) as
    unconditional, which is sound for intra-iteration reasoning: the
    question "can these two ops execute in the same iteration?" only
    involves guards resolved within the iteration.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._memo: Dict[int, Guard] = {}
        self._on_stack: Set[int] = set()

    def effective_guard(self, nid: int) -> Guard:
        """Conjunction of literals guaranteed to hold when ``nid`` runs."""
        if nid in self._memo:
            return self._memo[nid]
        if nid in self._on_stack:
            return TRUE_GUARD  # back edge: assume unconditional
        self._on_stack.add(nid)
        try:
            g = self.graph
            node = g.nodes[nid]
            literals: Set[Tuple[int, bool]] = set(g.control_inputs(nid))
            inputs = list(g.input_ports(nid).values())
            if node.kind is OpKind.JOIN:
                if inputs:
                    common: Optional[Guard] = None
                    for src in inputs:
                        eg = self.effective_guard(src)
                        common = eg if common is None else common & eg
                    literals |= common or TRUE_GUARD
            else:
                for src in inputs:
                    literals |= self.effective_guard(src)
            result: Guard = frozenset(literals)
        finally:
            self._on_stack.discard(nid)
        self._memo[nid] = result
        return result

    def mutually_exclusive(self, a: int, b: int) -> bool:
        """True if nodes ``a`` and ``b`` can never both execute.

        This is the test used both by cross-block transformation safety
        (Example 3) and by the scheduler when deciding whether two
        guarded operations may share a functional unit in the same
        cycle.
        """
        return conflicts(self.effective_guard(a), self.effective_guard(b))

    def compatible_for_sharing(self, ids: Tuple[int, ...]) -> bool:
        """True if every pair in ``ids`` is mutually exclusive."""
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if not self.mutually_exclusive(a, b):
                    return False
        return True

"""Core CDFG intermediate representation.

A :class:`Graph` is a directed graph whose nodes are operations
(:class:`Node`, tagged with an :class:`~repro.cdfg.ops.OpKind`) and whose
edges come in three flavors, following the paper's CDFG model:

* **data edges** — the source produces a value the sink consumes.  Data
  inputs of a node are *ported* (port 0 is the left operand, port 1 the
  right, and so on); ``JOIN`` nodes have an arbitrary number of ports.
* **control edges** — the sink executes only if the source (a condition
  node) evaluated to the edge's polarity (the paper's ``+`` / ``-``
  annotations).
* **order edges** — pure sequencing constraints used to serialize
  accesses to the same memory; they carry no value.

Loops appear as cycles through ``JOIN`` nodes, but their structure is
recorded explicitly in a region tree (:mod:`repro.cdfg.regions`) rather
than being re-discovered, since the frontend that creates the graph knows
it.  A :class:`~repro.cdfg.regions.Behavior` bundles a graph with its
region tree and interface declarations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import CdfgError
from .ops import OpKind, info


def _digest(data: bytes = b"") -> "hashlib.blake2b":
    """A 128-bit hash (stable: independent of PYTHONHASHSEED)."""
    return hashlib.blake2b(data, digest_size=16)


@dataclass
class Node:
    """A single CDFG operation.

    Attributes:
        id: unique (per-graph) integer identity.
        kind: the operation kind.
        name: optional human-readable label (e.g. the variable assigned).
        value: constant value, for ``CONST`` nodes.
        var: interface variable name, for ``INPUT`` / ``OUTPUT`` nodes.
        array: array name, for ``LOAD`` / ``STORE`` nodes.
    """

    id: int
    kind: OpKind
    name: str = ""
    value: Optional[int] = None
    var: Optional[str] = None
    array: Optional[str] = None

    def label(self) -> str:
        """Short display label used by DOT export and error messages."""
        if self.kind is OpKind.CONST:
            return f"#{self.value}"
        if self.kind in (OpKind.INPUT, OpKind.OUTPUT):
            return f"{self.kind.value}:{self.var}"
        if self.kind in (OpKind.LOAD, OpKind.STORE):
            return f"{self.kind.value}:{self.array}"
        if self.name:
            return f"{self.kind.value}:{self.name}"
        return self.kind.value


class Graph:
    """A mutable CDFG.

    Nodes are identified by integers handed out by :meth:`add_node`.
    All iteration orders are deterministic (sorted by node id) so that
    scheduling and search results are reproducible.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self._next_id = 0
        # data edges: dst -> {port: src}; src -> {(dst, port)}
        self._din: Dict[int, Dict[int, int]] = {}
        self._dout: Dict[int, Set[Tuple[int, int]]] = {}
        # control edges: dst -> [(src, polarity)]; src -> [(dst, polarity)]
        self._cin: Dict[int, List[Tuple[int, bool]]] = {}
        self._cout: Dict[int, List[Tuple[int, bool]]] = {}
        # order edges: dst -> {src}; src -> {dst}
        self._oin: Dict[int, Set[int]] = {}
        self._oout: Dict[int, Set[int]] = {}
        # mutation journal: node ids touched by each mutating call, in
        # order.  copy() starts the copy with an empty journal, so the
        # journal of a freshly copied graph records exactly the nodes a
        # rewrite touched (the "dirty set" the incremental enumeration
        # driver keys invalidation on).
        self._journal: List[int] = []

    # ------------------------------------------------------------------
    # Mutation journal
    # ------------------------------------------------------------------
    def _touch(self, *nids: int) -> None:
        self._journal.extend(nids)

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumps on every mutating call).

        Cheap way to detect "has this graph changed since I computed X"
        without hashing: the fingerprint helpers in
        :mod:`repro.core.evalcache` cache per-object keyed on this.
        """
        return len(self._journal)

    def journal_mark(self) -> int:
        """Opaque position in the journal; pair with
        :meth:`touched_since`."""
        return len(self._journal)

    def touched_since(self, mark: int) -> Set[int]:
        """Node ids touched by mutations after ``mark`` (including ids
        of nodes created or removed since)."""
        return set(self._journal[mark:])

    def touch(self, *nids: int) -> None:
        """Record an out-of-band semantic change to ``nids``.

        Rewrites that change a node's meaning without going through a
        graph mutator — e.g. moving it to a different region, or fusing
        the loop that owns it — must call this so version-keyed caches
        and incremental dirty sets see the change.
        """
        self._touch(*nids)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, kind: OpKind, *, name: str = "",
                 value: Optional[int] = None, var: Optional[str] = None,
                 array: Optional[str] = None) -> int:
        """Create a node and return its id."""
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = Node(nid, kind, name=name, value=value,
                               var=var, array=array)
        self._din[nid] = {}
        self._dout[nid] = set()
        self._cin[nid] = []
        self._cout[nid] = []
        self._oin[nid] = set()
        self._oout[nid] = set()
        self._touch(nid)
        return nid

    def set_kind(self, nid: int, kind: OpKind) -> None:
        """Retag a node in place (e.g. flipping a comparison).

        Rewrites must use this (not ``node.kind = ...``) so the change
        lands in the mutation journal.
        """
        self.node(nid).kind = kind
        self._touch(nid)

    def node(self, nid: int) -> Node:
        """Return the node with id ``nid``."""
        try:
            return self.nodes[nid]
        except KeyError:
            raise CdfgError(f"unknown node id {nid}") from None

    def remove_node(self, nid: int) -> None:
        """Remove a node and every edge incident to it."""
        self.node(nid)
        for port in list(self._din[nid]):
            self.remove_data_edge(nid, port)
        for dst, port in list(self._dout[nid]):
            self.remove_data_edge(dst, port)
        for src, pol in list(self._cin[nid]):
            self.remove_control_edge(src, nid, pol)
        for dst, pol in list(self._cout[nid]):
            self.remove_control_edge(nid, dst, pol)
        for src in list(self._oin[nid]):
            self.remove_order_edge(src, nid)
        for dst in list(self._oout[nid]):
            self.remove_order_edge(nid, dst)
        for table in (self._din, self._dout, self._cin, self._cout,
                      self._oin, self._oout):
            del table[nid]
        del self.nodes[nid]
        self._touch(nid)

    def __contains__(self, nid: int) -> bool:
        return nid in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def node_ids(self) -> List[int]:
        """All node ids, sorted for determinism."""
        return sorted(self.nodes)

    # ------------------------------------------------------------------
    # Data edges
    # ------------------------------------------------------------------
    def set_data_edge(self, src: int, dst: int, port: int) -> None:
        """Connect ``src``'s output to ``dst``'s input ``port``.

        Replaces any existing edge into that port.
        """
        self.node(src)
        self.node(dst)
        if not info(self.nodes[src].kind).has_output:
            raise CdfgError(
                f"node {src} ({self.nodes[src].label()}) has no output")
        old = self._din[dst].get(port)
        if old is not None:
            self._dout[old].discard((dst, port))
            self._touch(old)
        self._din[dst][port] = src
        self._dout[src].add((dst, port))
        self._touch(src, dst)

    def remove_data_edge(self, dst: int, port: int) -> None:
        """Disconnect ``dst``'s input ``port``."""
        src = self._din[dst].pop(port, None)
        if src is not None:
            self._dout[src].discard((dst, port))
            self._touch(src, dst)

    def data_inputs(self, nid: int) -> List[int]:
        """Source node ids feeding ``nid``, ordered by port.

        Raises if any port in ``0..max`` is unconnected.
        """
        ports = self._din[nid]
        if not ports:
            return []
        out = []
        for port in range(max(ports) + 1):
            if port not in ports:
                raise CdfgError(
                    f"node {nid} ({self.nodes[nid].label()}) missing "
                    f"input port {port}")
            out.append(ports[port])
        return out

    def data_input(self, nid: int, port: int) -> int:
        """Source node feeding ``nid``'s input ``port``."""
        try:
            return self._din[nid][port]
        except KeyError:
            raise CdfgError(
                f"node {nid} ({self.nodes[nid].label()}) has no input "
                f"port {port}") from None

    def input_ports(self, nid: int) -> Dict[int, int]:
        """Mapping ``port -> src`` for ``nid`` (a copy)."""
        return dict(self._din[nid])

    def data_users(self, nid: int) -> List[Tuple[int, int]]:
        """``(dst, port)`` pairs consuming ``nid``'s output, sorted."""
        return sorted(self._dout[nid])

    def replace_uses(self, old: int, new: int) -> None:
        """Rewire every data consumer of ``old`` to read from ``new``."""
        if old == new:
            return
        for dst, port in list(self._dout[old]):
            self.set_data_edge(new, dst, port)

    # ------------------------------------------------------------------
    # Control edges
    # ------------------------------------------------------------------
    def add_control_edge(self, src: int, dst: int, polarity: bool) -> None:
        """Make ``dst`` execute only when ``src`` evaluates to ``polarity``."""
        self.node(src)
        self.node(dst)
        if (src, polarity) not in self._cin[dst]:
            self._cin[dst].append((src, polarity))
            self._cout[src].append((dst, polarity))
            self._touch(src, dst)

    def remove_control_edge(self, src: int, dst: int, polarity: bool) -> None:
        """Remove a control edge if present."""
        if (src, polarity) in self._cin.get(dst, []):
            self._cin[dst].remove((src, polarity))
            self._cout[src].remove((dst, polarity))
            self._touch(src, dst)

    def control_inputs(self, nid: int) -> List[Tuple[int, bool]]:
        """``(cond_node, polarity)`` guards of ``nid`` (a copy)."""
        return list(self._cin[nid])

    def control_users(self, nid: int) -> List[Tuple[int, bool]]:
        """``(guarded_node, polarity)`` pairs controlled by ``nid``."""
        return list(self._cout[nid])

    def clear_control_inputs(self, nid: int) -> None:
        """Strip every guard from ``nid`` (used by speculation)."""
        for src, pol in list(self._cin[nid]):
            self.remove_control_edge(src, nid, pol)

    # ------------------------------------------------------------------
    # Order edges (memory serialization)
    # ------------------------------------------------------------------
    def add_order_edge(self, src: int, dst: int) -> None:
        """Require ``src`` to complete before ``dst`` starts."""
        self.node(src)
        self.node(dst)
        if dst not in self._oout[src]:
            self._oout[src].add(dst)
            self._oin[dst].add(src)
            self._touch(src, dst)

    def remove_order_edge(self, src: int, dst: int) -> None:
        """Remove an order edge if present."""
        if dst in self._oout.get(src, set()):
            self._oout[src].discard(dst)
            self._oin[dst].discard(src)
            self._touch(src, dst)

    def order_preds(self, nid: int) -> Set[int]:
        """Nodes that must complete before ``nid``."""
        return set(self._oin[nid])

    def order_succs(self, nid: int) -> Set[int]:
        """Nodes that must wait for ``nid``."""
        return set(self._oout[nid])

    # ------------------------------------------------------------------
    # Combined views
    # ------------------------------------------------------------------
    def preds(self, nid: int) -> Set[int]:
        """All predecessors of ``nid`` across the three edge kinds."""
        out = set(self._din[nid].values())
        out.update(src for src, _pol in self._cin[nid])
        out.update(self._oin[nid])
        return out

    def succs(self, nid: int) -> Set[int]:
        """All successors of ``nid`` across the three edge kinds."""
        out = {dst for dst, _port in self._dout[nid]}
        out.update(dst for dst, _pol in self._cout[nid])
        out.update(self._oout[nid])
        return out

    def topo_order(self, subset: Optional[Iterable[int]] = None) -> List[int]:
        """Topological order of ``subset`` (default: all nodes).

        Edges leaving/entering the subset are ignored; ties are broken
        by node id for determinism.

        Raises:
            CdfgError: if the induced subgraph is cyclic.
        """
        ids = set(subset) if subset is not None else set(self.nodes)
        indeg = {n: 0 for n in ids}
        for n in ids:
            for p in self.preds(n):
                if p in ids:
                    indeg[n] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: List[int] = []
        import heapq
        heapq.heapify(ready)
        while ready:
            n = heapq.heappop(ready)
            order.append(n)
            for s in self.succs(n):
                if s in ids:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        heapq.heappush(ready, s)
        if len(order) != len(ids):
            cyclic = sorted(n for n in ids if indeg[n] > 0)
            raise CdfgError(f"cycle among nodes {cyclic[:8]}")
        return order

    def copy(self) -> "Graph":
        """Deep copy preserving node ids."""
        g = Graph(self.name)
        g._next_id = self._next_id
        for nid, n in self.nodes.items():
            g.nodes[nid] = Node(n.id, n.kind, name=n.name, value=n.value,
                                var=n.var, array=n.array)
        g._din = {k: dict(v) for k, v in self._din.items()}
        g._dout = {k: set(v) for k, v in self._dout.items()}
        g._cin = {k: list(v) for k, v in self._cin.items()}
        g._cout = {k: list(v) for k, v in self._cout.items()}
        g._oin = {k: set(v) for k, v in self._oin.items()}
        g._oout = {k: set(v) for k, v in self._oout.items()}
        return g

    # ------------------------------------------------------------------
    # Canonical hashing (node-id independent)
    # ------------------------------------------------------------------
    def canonical_node_keys(self, rounds: Optional[int] = None
                            ) -> Dict[int, bytes]:
        """A stable signature per node, independent of node numbering.

        Signatures are refined Weisfeiler-Lehman style: each round folds
        the signatures of a node's data/control/order neighborhoods
        (with ports and polarities) into its own.  Refinement stops as
        soon as the signature partition stabilizes (or after ``rounds``
        rounds), which is isomorphism-invariant.  Two nodes in
        isomorphic positions of renumbered copies of the same graph get
        the same signature; nodes whose neighborhoods differ get
        different ones.

        Semantic attributes (kind, constant value, interface variable,
        array) seed the signature; the cosmetic ``name`` label does not,
        since rewrites derive it from node ids and it would defeat
        cross-lineage matching.  Returns 16-byte digests (hot path of
        the evaluation cache — bytes avoid hex-conversion overhead).
        """
        sig: Dict[int, bytes] = {}
        for nid, n in self.nodes.items():
            sig[nid] = _digest(
                f"{n.kind.value}|{n.value!r}|{n.var!r}|{n.array!r}"
                .encode()).digest()
        cap = rounds if rounds is not None else 8
        n_classes = len(set(sig.values()))
        for _ in range(cap):
            nxt: Dict[int, bytes] = {}
            for nid in self.nodes:
                h = _digest(sig[nid])
                for p, s in sorted((p, sig[s]) for p, s
                                   in self._din[nid].items()):
                    h.update(b"\x01" + p.to_bytes(2, "big") + s)
                for p, s in sorted((p, sig[d]) for d, p
                                   in self._dout[nid]):
                    h.update(b"\x02" + p.to_bytes(2, "big") + s)
                for pol, s in sorted((pol, sig[s]) for s, pol
                                     in self._cin[nid]):
                    h.update(b"\x03" + bytes([pol]) + s)
                for pol, s in sorted((pol, sig[d]) for d, pol
                                     in self._cout[nid]):
                    h.update(b"\x04" + bytes([pol]) + s)
                for s in sorted(sig[s] for s in self._oin[nid]):
                    h.update(b"\x05" + s)
                for s in sorted(sig[d] for d in self._oout[nid]):
                    h.update(b"\x06" + s)
                nxt[nid] = h.digest()
            sig = nxt
            classes = len(set(sig.values()))
            if classes == n_classes:
                break  # partition stable: further rounds cannot refine
            n_classes = classes
        return sig

    def canonical_hash(self,
                       node_keys: Optional[Dict[int, bytes]] = None
                       ) -> str:
        """A content hash invariant under node renumbering.

        Renumbered copies of the same graph hash identically (this is
        what lets the evaluation cache merge identical candidates from
        different transformation lineages); structurally or semantically
        different graphs hash apart.
        """
        sig = node_keys if node_keys is not None \
            else self.canonical_node_keys()
        edges: List[bytes] = []
        for nid in self.nodes:
            me = sig[nid]
            for p, s in self._din[nid].items():
                edges.append(b"d" + p.to_bytes(2, "big") + sig[s] + me)
            for s, pol in self._cin[nid]:
                edges.append(b"c" + bytes([pol]) + sig[s] + me)
            for s in self._oin[nid]:
                edges.append(b"o" + sig[s] + me)
        h = _digest(b"")
        for s in sorted(sig.values()):
            h.update(s)
        for e in sorted(edges):
            h.update(e)
        return h.hexdigest()

    def __iter__(self) -> Iterator[Node]:
        for nid in self.node_ids():
            yield self.nodes[nid]

    def stats(self) -> Dict[str, int]:
        """Basic size statistics, keyed by op kind plus totals."""
        out: Dict[str, int] = {}
        for n in self.nodes.values():
            out[n.kind.value] = out.get(n.kind.value, 0) + 1
        out["nodes"] = len(self.nodes)
        out["data_edges"] = sum(len(v) for v in self._din.values())
        out["control_edges"] = sum(len(v) for v in self._cin.values())
        return out

"""Control-data flow graph (CDFG) infrastructure.

The CDFG is the behavioral IR of the whole library: a token-passing
operation graph (:mod:`repro.cdfg.ir`) with an explicit region tree
(:mod:`repro.cdfg.regions`), an imperative builder
(:mod:`repro.cdfg.builder`), executable semantics
(:mod:`repro.cdfg.interp`), guard / mutual-exclusion analysis
(:mod:`repro.cdfg.analysis`), and DOT export (:mod:`repro.cdfg.dot`).
"""

from .analysis import Guard, GuardAnalysis, conflicts, direct_guard, implies
from .builder import BehaviorBuilder
from .dot import behavior_to_dot, graph_to_dot
from .interp import ExecResult, Interpreter, execute
from .ir import Graph, Node
from .ops import (COMPARISONS, DEFAULT_WIDTH, FREE_KINDS, OpKind, evaluate,
                  info, is_associative, is_commutative, wrap)
from .regions import (ArrayDecl, Behavior, BlockRegion, LoopRegion, LoopVar,
                      Region, SeqRegion)
from .validate import validate_behavior

__all__ = [
    "ArrayDecl", "Behavior", "BehaviorBuilder", "BlockRegion", "COMPARISONS",
    "DEFAULT_WIDTH", "ExecResult", "FREE_KINDS", "Graph", "Guard",
    "GuardAnalysis", "Interpreter", "LoopRegion", "LoopVar", "Node",
    "OpKind", "Region", "SeqRegion", "behavior_to_dot", "conflicts",
    "direct_guard", "evaluate", "execute", "graph_to_dot", "implies",
    "info", "is_associative", "is_commutative", "validate_behavior", "wrap",
]

"""Executable semantics for CDFGs.

The interpreter walks a :class:`~repro.cdfg.regions.Behavior` and executes
it over concrete integer inputs, following the token-passing rules of the
paper's CDFG model:

* an operation executes only when its guards (control edges) are
  satisfied by the values of their source condition nodes;
* a ``JOIN`` assumes the value of whichever of its inputs actually
  executed (exactly one may execute per evaluation);
* a ``SELECT`` picks its left (port 0) or right (port 1) input depending
  on its select input (port 2);
* loop-carried variables flow through header joins: port 0 seeds the
  first iteration, port 1 latches the value from the previous iteration.

The interpreter is the ground truth used by the profiler (branch
probabilities, Section 4.1) and by the test suite to check that every
transformation preserves functionality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..errors import InterpError, InterpLimitError
from .ir import Graph
from .ops import OpKind, evaluate, wrap
from .regions import Behavior, BlockRegion, LoopRegion, Region, SeqRegion


@dataclass
class ExecResult:
    """Outcome of one behavioral execution.

    Attributes:
        outputs: final value of each scalar output.
        arrays: final contents of every array.
        cond_counts: per condition node id, ``[false_count, true_count]``
            over every evaluation of that node.
        loop_iterations: per loop name, total body executions.
        node_counts: number of times each node executed.
        steps: total operation executions (interpreter work).
    """

    outputs: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, List[int]] = field(default_factory=dict)
    cond_counts: Dict[int, List[int]] = field(default_factory=dict)
    loop_iterations: Dict[str, int] = field(default_factory=dict)
    node_counts: Dict[int, int] = field(default_factory=dict)
    steps: int = 0


class Interpreter:
    """Executes a :class:`Behavior` over concrete inputs.

    Args:
        behavior: the behavior to execute.
        max_steps: upper bound on total operation executions; exceeding
            it raises :class:`~repro.errors.InterpLimitError` (guards
            against non-terminating transformed behaviors).
    """

    def __init__(self, behavior: Behavior, max_steps: int = 2_000_000) -> None:
        self.behavior = behavior
        self.graph: Graph = behavior.graph
        self.max_steps = max_steps
        self._cond_ids = self._find_condition_nodes()

    def _find_condition_nodes(self) -> Set[int]:
        """Nodes whose boolean value steers control flow."""
        g = self.graph
        conds: Set[int] = set()
        for nid in g.nodes:
            if g.control_users(nid):
                conds.add(nid)
            if g.nodes[nid].kind is OpKind.SELECT:
                conds.add(g.data_input(nid, 2))
        for lp in self.behavior.loops():
            if lp.cond >= 0:
                conds.add(lp.cond)
        return conds

    # ------------------------------------------------------------------
    def run(self, inputs: Optional[Dict[str, int]] = None,
            arrays: Optional[Dict[str, Sequence[int]]] = None) -> ExecResult:
        """Execute the behavior once.

        Args:
            inputs: values for scalar input variables (missing names
                default to 0).
            arrays: initial contents for declared arrays (missing arrays
                are zero-filled; short lists are zero-padded).

        Returns:
            An :class:`ExecResult` with outputs, memory, and profile data.
        """
        inputs = dict(inputs or {})
        self._values: Dict[int, int] = {}
        self._result = ExecResult()
        self._memory: Dict[str, List[int]] = {}
        for decl in self.behavior.arrays.values():
            init = list(arrays.get(decl.name, [])) if arrays else []
            if len(init) > decl.size:
                raise InterpError(
                    f"initializer for array {decl.name} longer than its "
                    f"declared size {decl.size}")
            self._memory[decl.name] = (
                [wrap(v) for v in init] + [0] * (decl.size - len(init)))

        # Seed free nodes: inputs and constants.
        for nid in self.graph.node_ids():
            node = self.graph.nodes[nid]
            if node.kind is OpKind.INPUT:
                self._values[nid] = wrap(inputs.get(node.var or "", 0))
            elif node.kind is OpKind.CONST:
                if node.value is None:
                    raise InterpError(f"CONST node {nid} has no value")
                self._values[nid] = wrap(node.value)

        self._eval_region(self.behavior.region)

        for nid in self.graph.node_ids():
            node = self.graph.nodes[nid]
            if node.kind is OpKind.OUTPUT:
                src = self.graph.data_input(nid, 0)
                if src not in self._values:
                    raise InterpError(
                        f"output {node.var!r} was never assigned")
                self._result.outputs[node.var or node.name] = self._values[src]
        self._result.arrays = {k: list(v) for k, v in self._memory.items()}
        return self._result

    # ------------------------------------------------------------------
    def _eval_region(self, region: Region) -> None:
        if isinstance(region, SeqRegion):
            for child in region.children:
                self._eval_region(child)
        elif isinstance(region, BlockRegion):
            self._eval_nodes(region.nodes)
        elif isinstance(region, LoopRegion):
            self._eval_loop(region)
        else:
            raise InterpError(f"unknown region {type(region).__name__}")

    def _eval_loop(self, loop: LoopRegion) -> None:
        g = self.graph
        for lv in loop.loop_vars:
            init = g.data_input(lv.join, 0)
            if init not in self._values:
                raise InterpError(
                    f"loop {loop.name}: initial value of {lv.name!r} "
                    f"not available")
            self._values[lv.join] = self._values[init]
        iters = 0
        while True:
            self._eval_nodes(loop.cond_nodes)
            if loop.cond not in self._values:
                raise InterpError(f"loop {loop.name}: condition did not "
                                  f"execute")
            if not self._values[loop.cond]:
                break
            iters += 1
            self._eval_region(loop.body)
            latched = []
            for lv in loop.loop_vars:
                upd = g.data_input(lv.join, 1)
                if upd not in self._values:
                    raise InterpError(
                        f"loop {loop.name}: update of {lv.name!r} did not "
                        f"execute this iteration")
                latched.append(self._values[upd])
            for lv, val in zip(loop.loop_vars, latched):
                self._values[lv.join] = val
        self._result.loop_iterations[loop.name] = (
            self._result.loop_iterations.get(loop.name, 0) + iters)

    def _eval_nodes(self, nodes: Iterable[int]) -> None:
        """Evaluate an acyclic guarded node set in topological order."""
        g = self.graph
        order = g.topo_order(nodes)
        for nid in order:
            self._values.pop(nid, None)
        for nid in order:
            if not self._guard_ok(nid):
                continue
            value = self._eval_node(nid)
            if value is not None:
                self._values[nid] = value
            self._bump(nid)
            if nid in self._cond_ids and value is not None:
                counts = self._result.cond_counts.setdefault(nid, [0, 0])
                counts[1 if value else 0] += 1

    def _guard_ok(self, nid: int) -> bool:
        for src, pol in self.graph.control_inputs(nid):
            if src not in self._values:
                return False
            if bool(self._values[src]) != pol:
                return False
        return True

    def _operand(self, nid: int, port: int) -> int:
        src = self.graph.data_input(nid, port)
        if src not in self._values:
            raise InterpError(
                f"node {nid} ({self.graph.nodes[nid].label()}) reads "
                f"unexecuted node {src} "
                f"({self.graph.nodes[src].label()}) on port {port}")
        return self._values[src]

    def _eval_node(self, nid: int) -> Optional[int]:
        node = self.graph.nodes[nid]
        kind = node.kind
        if kind is OpKind.CONST:
            return wrap(node.value or 0)
        if kind is OpKind.INPUT:
            return self._values.get(nid, 0)
        if kind is OpKind.OUTPUT:
            return None
        if kind is OpKind.COPY:
            return self._operand(nid, 0)
        if kind is OpKind.JOIN:
            fired = []
            for port, src in sorted(self.graph.input_ports(nid).items()):
                if src in self._values:
                    fired.append((port, src))
            if not fired:
                return None  # join itself stays unexecuted
            if len(fired) > 1:
                vals = {self._values[src] for _p, src in fired}
                if len(vals) > 1:
                    raise InterpError(
                        f"JOIN {nid} received tokens on multiple inputs "
                        f"with differing values: {sorted(fired)}")
            return self._values[fired[0][1]]
        if kind is OpKind.SELECT:
            sel = self._operand(nid, 2)
            return self._operand(nid, 0 if sel else 1)
        if kind is OpKind.LOAD:
            return self._mem_access(nid, store=False)
        if kind is OpKind.STORE:
            self._mem_access(nid, store=True)
            return None
        operands = [self._operand(nid, p)
                    for p in range(len(self.graph.data_inputs(nid)))]
        try:
            return evaluate(kind, *operands)
        except ZeroDivisionError as exc:
            raise InterpError(f"node {nid}: {exc}") from None

    def _mem_access(self, nid: int, store: bool) -> Optional[int]:
        node = self.graph.nodes[nid]
        name = node.array or ""
        if name not in self._memory:
            raise InterpError(f"access to undeclared array {name!r}")
        mem = self._memory[name]
        index = self._operand(nid, 0)
        if not 0 <= index < len(mem):
            raise InterpError(
                f"array {name}[{index}] out of bounds (size {len(mem)})")
        if store:
            mem[index] = wrap(self._operand(nid, 1))
            return None
        return mem[index]

    def _bump(self, nid: int) -> None:
        self._result.node_counts[nid] = (
            self._result.node_counts.get(nid, 0) + 1)
        self._result.steps += 1
        if self._result.steps > self.max_steps:
            raise InterpLimitError(
                f"exceeded {self.max_steps} operation executions; "
                f"behavior may not terminate")


def execute(behavior: Behavior, inputs: Optional[Dict[str, int]] = None,
            arrays: Optional[Dict[str, Sequence[int]]] = None,
            max_steps: int = 2_000_000) -> ExecResult:
    """Convenience wrapper: run ``behavior`` once and return the result."""
    return Interpreter(behavior, max_steps=max_steps).run(inputs, arrays)

"""Structured construction of CDFGs.

:class:`BehaviorBuilder` offers a small imperative API for building a
:class:`~repro.cdfg.regions.Behavior` the way a frontend lowers an AST:

* expression helpers (``add``, ``sub``, ``mul``, comparisons, ``load``,
  ``store``, ...) create operation nodes, automatically guarded by the
  enclosing conditional context;
* ``if_`` performs **if-conversion**: operations in both branches are
  emitted into the same block with complementary guards, and variables
  assigned in either branch are merged through ``JOIN`` nodes whose
  inputs are guarded producers (the paper's Figure 4 structure);
* ``loop`` creates a :class:`~repro.cdfg.regions.LoopRegion` with header
  joins for the loop-carried variables.

The BDL frontend (:mod:`repro.lang.lower`) and the benchmark circuits
(:mod:`repro.bench`) are both thin layers over this builder.

Example::

    b = BehaviorBuilder("countdown")
    n = b.input("n")
    b.assign("i", n)
    with b.loop("L0", carried=["i"]):
        b.loop_cond(b.gt(b.var("i"), b.const(0)))
        b.assign("i", b.dec(b.var("i")))
    b.output("i")
    behavior = b.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CdfgError
from .ir import Graph
from .ops import OpKind, info
from .regions import (ArrayDecl, Behavior, BlockRegion, LoopRegion, LoopVar,
                      Region, SeqRegion)


class _LoopCtx:
    """Internal bookkeeping for a loop under construction."""

    def __init__(self, region: LoopRegion, saved_env: Dict[str, int]) -> None:
        self.region = region
        self.saved_env = saved_env
        self.in_cond = True


class BehaviorBuilder:
    """Imperative builder producing a validated :class:`Behavior`."""

    def __init__(self, name: str) -> None:
        self.behavior = Behavior(name)
        self.graph: Graph = self.behavior.graph
        self._env: Dict[str, int] = {}
        self._guards: List[Tuple[int, bool]] = []
        # region construction stack: list of (SeqRegion, current block)
        self._seq_stack: List[SeqRegion] = [self.behavior.region]  # type: ignore[list-item]
        self._block_stack: List[Optional[BlockRegion]] = [None]
        self._loop_stack: List[_LoopCtx] = []
        # memory ordering: per array, last store node and loads since
        self._last_store: Dict[str, Optional[int]] = {}
        self._loads_since: Dict[str, List[int]] = {}
        self._const_cache: Dict[int, int] = {}
        self._if_frames: List["_IfFrame"] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Interface declarations
    # ------------------------------------------------------------------
    def input(self, name: str) -> int:
        """Declare a scalar input and bind ``name`` to it."""
        nid = self.graph.add_node(OpKind.INPUT, var=name, name=name)
        self.behavior.inputs.append(name)
        self._env[name] = nid
        return nid

    def output(self, name: str, src: Optional[int] = None) -> int:
        """Declare a scalar output reading ``src`` (default: var ``name``)."""
        nid = self.graph.add_node(OpKind.OUTPUT, var=name, name=name)
        self.behavior.outputs.append(name)
        self.graph.set_data_edge(src if src is not None else self.var(name),
                                 nid, 0)
        return nid

    def array(self, name: str, size: int, ports: int = 1) -> None:
        """Declare an array mapped to its own memory."""
        if name in self.behavior.arrays:
            raise CdfgError(f"array {name!r} declared twice")
        self.behavior.arrays[name] = ArrayDecl(name, size, ports)
        self._last_store[name] = None
        self._loads_since[name] = []

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def var(self, name: str) -> int:
        """Node currently producing the value of variable ``name``."""
        try:
            return self._env[name]
        except KeyError:
            raise CdfgError(f"variable {name!r} read before assignment") \
                from None

    def has_var(self, name: str) -> bool:
        """True if ``name`` has been assigned."""
        return name in self._env

    def assign(self, name: str, src: int) -> None:
        """Bind variable ``name`` to the value produced by node ``src``."""
        if src not in self.graph:
            raise CdfgError(f"assign of unknown node {src}")
        self._env[name] = src

    # ------------------------------------------------------------------
    # Expression helpers
    # ------------------------------------------------------------------
    def const(self, value: int) -> int:
        """A constant node (cached per value)."""
        if value not in self._const_cache:
            self._const_cache[value] = self.graph.add_node(
                OpKind.CONST, value=value)
        return self._const_cache[value]

    def op(self, kind: OpKind, *operands: int, name: str = "") -> int:
        """Emit an operation node, guarded by the current context."""
        expected = info(kind).arity
        if expected is not None and len(operands) != expected:
            raise CdfgError(
                f"{kind.value} expects {expected} operands, got "
                f"{len(operands)}")
        nid = self.graph.add_node(kind, name=name)
        for port, src in enumerate(operands):
            self.graph.set_data_edge(src, nid, port)
        self._apply_guards(nid)
        self._place(nid)
        return nid

    def add(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.ADD, a, b, name=name)

    def sub(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.SUB, a, b, name=name)

    def mul(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.MUL, a, b, name=name)

    def div(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.DIV, a, b, name=name)

    def mod(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.MOD, a, b, name=name)

    def neg(self, a: int, name: str = "") -> int:
        return self.op(OpKind.NEG, a, name=name)

    def inc(self, a: int, name: str = "") -> int:
        return self.op(OpKind.INC, a, name=name)

    def dec(self, a: int, name: str = "") -> int:
        return self.op(OpKind.DEC, a, name=name)

    def shl(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.SHL, a, b, name=name)

    def shr(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.SHR, a, b, name=name)

    def bnot(self, a: int, name: str = "") -> int:
        return self.op(OpKind.BNOT, a, name=name)

    def lt(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.LT, a, b, name=name)

    def gt(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.GT, a, b, name=name)

    def le(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.LE, a, b, name=name)

    def ge(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.GE, a, b, name=name)

    def eq(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.EQ, a, b, name=name)

    def ne(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.NE, a, b, name=name)

    def land(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.LAND, a, b, name=name)

    def lor(self, a: int, b: int, name: str = "") -> int:
        return self.op(OpKind.LOR, a, b, name=name)

    def lnot(self, a: int, name: str = "") -> int:
        return self.op(OpKind.LNOT, a, name=name)

    def load(self, array: str, index: int, name: str = "") -> int:
        """Emit a memory read ``array[index]``."""
        self._check_array(array)
        nid = self.graph.add_node(OpKind.LOAD, array=array, name=name)
        self.graph.set_data_edge(index, nid, 0)
        self._apply_guards(nid)
        self._place(nid)
        last = self._last_store.get(array)
        if last is not None:
            self.graph.add_order_edge(last, nid)
        self._loads_since[array].append(nid)
        return nid

    def store(self, array: str, index: int, value: int,
              name: str = "") -> int:
        """Emit a memory write ``array[index] = value``."""
        self._check_array(array)
        nid = self.graph.add_node(OpKind.STORE, array=array, name=name)
        self.graph.set_data_edge(index, nid, 0)
        self.graph.set_data_edge(value, nid, 1)
        self._apply_guards(nid)
        self._place(nid)
        last = self._last_store.get(array)
        if last is not None:
            self.graph.add_order_edge(last, nid)
        for load in self._loads_since[array]:
            self.graph.add_order_edge(load, nid)
        self._last_store[array] = nid
        self._loads_since[array] = []
        return nid

    def _check_array(self, array: str) -> None:
        if array not in self.behavior.arrays:
            raise CdfgError(f"array {array!r} not declared")

    # ------------------------------------------------------------------
    # Control structure
    # ------------------------------------------------------------------
    @contextmanager
    def if_(self, cond: int) -> Iterator[None]:
        """If-converted conditional; use :meth:`otherwise` for the else.

        Example::

            with b.if_(c):
                b.assign("a", b.add(b.var("a"), b.const(1)))
                b.otherwise()
                b.assign("a", b.sub(b.var("a"), b.const(1)))
        """
        saved_env = dict(self._env)
        self._guards.append((cond, True))
        self._if_frames.append(_IfFrame(cond, saved_env))
        try:
            yield
        finally:
            frame = self._if_frames.pop()
            self._guards.pop()
            if not frame.else_taken:
                frame.then_env = dict(self._env)
                self._env = dict(frame.saved_env)
            self._merge_if(frame)

    def otherwise(self) -> None:
        """Switch the innermost :meth:`if_` to its else branch."""
        if not self._if_frames:
            raise CdfgError("otherwise() outside of if_()")
        frame = self._if_frames[-1]
        if frame.else_taken:
            raise CdfgError("otherwise() called twice")
        frame.else_taken = True
        frame.then_env = dict(self._env)
        self._env = dict(frame.saved_env)
        cond, _pol = self._guards.pop()
        self._guards.append((cond, False))

    def _merge_if(self, frame: "_IfFrame") -> None:
        """Create JOIN merges for variables assigned in either branch."""
        then_env = frame.then_env
        else_env = dict(self._env)
        changed = sorted(
            name for name in set(then_env) | set(else_env)
            if then_env.get(name) != frame.saved_env.get(name)
            or else_env.get(name) != frame.saved_env.get(name))
        for name in changed:
            then_src = then_env.get(name)
            else_src = else_env.get(name)
            if then_src is None or else_src is None:
                # Assigned on one path, undefined on the other: the value
                # is only meaningful under that path; keep the guarded def.
                self._env[name] = then_src if then_src is not None \
                    else else_src  # type: ignore[assignment]
                continue
            t = self._guarded_value(then_src, frame.cond, True)
            e = self._guarded_value(else_src, frame.cond, False)
            join = self.graph.add_node(OpKind.JOIN, name=name)
            self.graph.set_data_edge(t, join, 0)
            self.graph.set_data_edge(e, join, 1)
            self._place(join)
            self._env[name] = join

    def _guarded_value(self, src: int, cond: int, polarity: bool) -> int:
        """Ensure ``src`` executes only under ``(cond, polarity)``.

        If the producer already carries that guard it is used directly;
        otherwise a guarded COPY is inserted so the JOIN can tell which
        side fired.
        """
        if (cond, polarity) in self.graph.control_inputs(src):
            return src
        cp = self.graph.add_node(OpKind.COPY)
        self.graph.set_data_edge(src, cp, 0)
        self._apply_guards(cp)
        self.graph.add_control_edge(cond, cp, polarity)
        self._place(cp)
        return cp

    @contextmanager
    def loop(self, name: str, carried: Sequence[str],
             trip_count: Optional[int] = None) -> Iterator[LoopRegion]:
        """Build a pre-tested loop.

        Statements emitted before :meth:`loop_cond` form the condition
        section (re-evaluated each iteration); statements after it form
        the body.

        Args:
            name: loop label ("L1", ...).
            carried: variables whose values cross iteration boundaries
                (assigned inside and live across iterations or after the
                loop).  Each must already be assigned.
            trip_count: statically-known iteration count, if any.
        """
        if self._guards:
            raise CdfgError("loops inside if-branches are not supported; "
                            "restructure the behavior")
        region = LoopRegion(name=name, trip_count=trip_count)
        for var in carried:
            join = self.graph.add_node(OpKind.JOIN, name=var)
            self.graph.set_data_edge(self.var(var), join, 0)
            region.loop_vars.append(LoopVar(var, join))
            self._env[var] = join
        self._append_region(region)
        ctx = _LoopCtx(region, dict(self._env))
        self._loop_stack.append(ctx)
        # Condition nodes collect into region.cond_nodes via _place();
        # after loop_cond() the body SeqRegion takes over.
        body = SeqRegion()
        region.body = body
        self._seq_stack.append(body)
        self._block_stack.append(None)
        saved_stores = dict(self._last_store)
        saved_loads = {k: list(v) for k, v in self._loads_since.items()}
        try:
            yield region
        finally:
            if ctx.in_cond:
                raise CdfgError(f"loop {name}: loop_cond() never called")
            # Latch loop-carried updates into header joins.
            for lv in region.loop_vars:
                self.graph.set_data_edge(self._env[lv.name], lv.join, 1)
                self._env[lv.name] = lv.join
            self._seq_stack.pop()
            self._block_stack.pop()
            self._loop_stack.pop()
            # Memory state after a loop is unknown relative to inside:
            # reset tracking so later accesses serialize against nothing
            # stale (inter-region ordering is sequential by construction).
            self._last_store = saved_stores
            self._loads_since = saved_loads

    def loop_cond(self, cond: int) -> None:
        """Mark ``cond`` as the continuation condition of the open loop."""
        if not self._loop_stack:
            raise CdfgError("loop_cond() outside of loop()")
        ctx = self._loop_stack[-1]
        if not ctx.in_cond:
            raise CdfgError(f"loop {ctx.region.name}: loop_cond() called "
                            f"twice")
        ctx.region.cond = cond
        ctx.in_cond = False

    # ------------------------------------------------------------------
    # Region plumbing
    # ------------------------------------------------------------------
    def _place(self, nid: int) -> None:
        """Attach a freshly-created op node to the right region."""
        if self._loop_stack and self._loop_stack[-1].in_cond:
            self._loop_stack[-1].region.cond_nodes.append(nid)
            return
        block = self._block_stack[-1]
        if block is None:
            block = BlockRegion()
            self._seq_stack[-1].children.append(block)
            self._block_stack[-1] = block
        block.add(nid)

    def _append_region(self, region: Region) -> None:
        self._seq_stack[-1].children.append(region)
        self._block_stack[-1] = None  # force a fresh block afterwards

    def _apply_guards(self, nid: int) -> None:
        for cond, pol in self._guards:
            self.graph.add_control_edge(cond, nid, pol)

    # ------------------------------------------------------------------
    def finish(self, validate: bool = True) -> Behavior:
        """Finalize and (by default) validate the behavior."""
        if self._finished:
            raise CdfgError("finish() called twice")
        if self._loop_stack:
            raise CdfgError("finish() inside an open loop")
        if self._if_frames:
            raise CdfgError("finish() inside an open if")
        self._finished = True
        if validate:
            from .validate import validate_behavior
            validate_behavior(self.behavior)
        return self.behavior


class _IfFrame:
    """State of an open ``if_`` context."""

    def __init__(self, cond: int, saved_env: Dict[str, int]) -> None:
        self.cond = cond
        self.saved_env = saved_env
        self.then_env: Dict[str, int] = {}
        self.else_taken = False

"""Region tree: the structured view of a CDFG.

The token-passing graph in :mod:`repro.cdfg.ir` is deliberately flat; the
region tree records the control structure the frontend knew when it built
the graph, so the scheduler and the transformations never have to
re-discover loops.

* :class:`BlockRegion` — an *acyclic* set of operations.  Conditionals
  inside a block are fully if-converted: operations carry guards
  (control edges) and merge through ``JOIN`` / ``SELECT`` nodes, exactly
  like the paper's Figure 4.  This is the unit over which cross-basic-
  block transformations operate.
* :class:`LoopRegion` — a (possibly data-dependent) loop.  Loop-carried
  variables merge through header ``JOIN`` nodes (port 0 = initial value,
  port 1 = value from the previous iteration).  The loop condition is an
  acyclic sub-block re-evaluated every iteration.
* :class:`SeqRegion` — sequential composition of sub-regions.

A :class:`Behavior` bundles a graph, its top-level region, and the
interface (scalar inputs/outputs and arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..errors import CdfgError
from .ir import Graph
from .ops import OpKind


@dataclass
class LoopVar:
    """A loop-carried variable.

    Attributes:
        name: source-level variable name (for diagnostics).
        join: id of the header ``JOIN`` node.  Port 0 carries the initial
            value, port 1 the value produced by the previous iteration.
    """

    name: str
    join: int


class Region:
    """Abstract base of the region tree."""

    def node_ids(self) -> Set[int]:
        """All graph node ids owned by this region (recursively)."""
        raise NotImplementedError

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of the region tree."""
        yield self

    def loops(self) -> List["LoopRegion"]:
        """All loop regions in the subtree, in pre-order."""
        return [r for r in self.walk() if isinstance(r, LoopRegion)]


@dataclass
class BlockRegion(Region):
    """An acyclic, possibly guarded, set of data-flow operations."""

    nodes: List[int] = field(default_factory=list)

    def node_ids(self) -> Set[int]:
        return set(self.nodes)

    def add(self, nid: int) -> None:
        """Add a node to the block (idempotent)."""
        if nid not in self.nodes:
            self.nodes.append(nid)

    def discard(self, nid: int) -> None:
        """Remove a node from the block if present."""
        if nid in self.nodes:
            self.nodes.remove(nid)


@dataclass
class SeqRegion(Region):
    """Sequential composition of regions."""

    children: List[Region] = field(default_factory=list)

    def node_ids(self) -> Set[int]:
        out: Set[int] = set()
        for child in self.children:
            out |= child.node_ids()
        return out

    def walk(self) -> Iterator[Region]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class LoopRegion(Region):
    """A single-entry loop with a pre-tested condition (``while`` form).

    Attributes:
        name: label for diagnostics ("L1", "L2", ...).
        loop_vars: loop-carried variables (header joins).
        cond_nodes: ids of nodes re-evaluated each iteration to produce
            the continuation condition (excluding the header joins).
        cond: id of the boolean node; the loop body runs while it is
            true.
        body: region executed each iteration.
        trip_count: statically-known iteration count, if the frontend
            could prove one (``for i in 0..N``); ``None`` otherwise.
    """

    name: str
    loop_vars: List[LoopVar] = field(default_factory=list)
    cond_nodes: List[int] = field(default_factory=list)
    cond: int = -1
    body: Region = field(default_factory=BlockRegion)
    trip_count: Optional[int] = None

    def node_ids(self) -> Set[int]:
        out = {lv.join for lv in self.loop_vars}
        out.update(self.cond_nodes)
        out |= self.body.node_ids()
        return out

    def walk(self) -> Iterator[Region]:
        yield self
        yield from self.body.walk()

    def join_of(self, name: str) -> int:
        """Header join node id for loop variable ``name``."""
        for lv in self.loop_vars:
            if lv.name == name:
                return lv.join
        raise CdfgError(f"loop {self.name} has no loop variable {name!r}")


@dataclass
class ArrayDecl:
    """An array mapped to its own memory (paper Section 3, Example 2)."""

    name: str
    size: int
    #: number of simultaneous accesses the memory supports per cycle
    ports: int = 1


class Behavior:
    """A complete behavioral description: graph + structure + interface.

    Attributes:
        name: behavior name (from the BDL ``proc`` declaration).
        graph: the flat CDFG.
        region: top-level region (usually a :class:`SeqRegion`).
        inputs: ordered scalar input variable names.
        outputs: ordered scalar output variable names.
        arrays: array declarations by name.
    """

    def __init__(self, name: str, graph: Optional[Graph] = None) -> None:
        self.name = name
        self.graph = graph if graph is not None else Graph(name)
        self.region: Region = SeqRegion()
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.arrays: Dict[str, ArrayDecl] = {}
        #: Estimation bookkeeping for transformed loops.  A condition
        #: with weight ``w`` advances ``w`` original iterations per
        #: evaluation (speculative unrolling), so its profiled
        #: per-iteration probability ``p`` becomes ``p/(w-(w-1)p)``.
        self.cond_weights: Dict[int, int] = {}
        #: A cloned condition whose probability equals another node's
        #: (speculative unrolling clones the loop condition; the
        #: process is memoryless, so the clone inherits the profile).
        self.cond_aliases: Dict[int, int] = {}

    def copy(self) -> "Behavior":
        """Deep copy (graph and region tree); interface lists are copied."""
        b = Behavior(self.name, self.graph.copy())
        b.region = _copy_region(self.region)
        b.inputs = list(self.inputs)
        b.outputs = list(self.outputs)
        b.arrays = {k: ArrayDecl(v.name, v.size, v.ports)
                    for k, v in self.arrays.items()}
        b.cond_weights = dict(self.cond_weights)
        b.cond_aliases = dict(self.cond_aliases)
        return b

    def loops(self) -> List[LoopRegion]:
        """All loops, in pre-order."""
        return self.region.loops()

    def loop(self, name: str) -> LoopRegion:
        """Find a loop region by name."""
        for lp in self.loops():
            if lp.name == name:
                return lp
        raise CdfgError(f"behavior {self.name} has no loop {name!r}")

    def owner_block(self, nid: int) -> Optional[BlockRegion]:
        """The block region containing node ``nid``, if any."""
        for r in self.region.walk():
            if isinstance(r, BlockRegion) and nid in r.nodes:
                return r
        return None

    def region_node_ids(self) -> Set[int]:
        """All node ids claimed by the region tree."""
        return self.region.node_ids()

    def free_node_ids(self) -> Set[int]:
        """Nodes not owned by any region (constants, inputs, outputs)."""
        return set(self.graph.nodes) - self.region_node_ids()


def _copy_region(region: Region) -> Region:
    if isinstance(region, BlockRegion):
        return BlockRegion(list(region.nodes))
    if isinstance(region, SeqRegion):
        return SeqRegion([_copy_region(c) for c in region.children])
    if isinstance(region, LoopRegion):
        return LoopRegion(
            name=region.name,
            loop_vars=[LoopVar(lv.name, lv.join) for lv in region.loop_vars],
            cond_nodes=list(region.cond_nodes),
            cond=region.cond,
            body=_copy_region(region.body),
            trip_count=region.trip_count,
        )
    raise CdfgError(f"unknown region type {type(region).__name__}")

"""Graphviz (DOT) export for CDFGs and behaviors.

Data dependencies are drawn as solid arcs and control dependencies as
dashed arcs annotated ``+`` / ``-``, matching the paper's Figure 1(b)
conventions.  Order (memory serialization) edges are dotted.
"""

from __future__ import annotations

from typing import Optional

from .ir import Graph
from .ops import OpKind
from .regions import Behavior, BlockRegion, LoopRegion, SeqRegion

_SHAPES = {
    OpKind.CONST: "plaintext",
    OpKind.INPUT: "invhouse",
    OpKind.OUTPUT: "house",
    OpKind.JOIN: "trapezium",
    OpKind.SELECT: "invtrapezium",
    OpKind.LOAD: "box3d",
    OpKind.STORE: "box3d",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r'\"') + '"'


def graph_to_dot(graph: Graph, name: Optional[str] = None) -> str:
    """Render ``graph`` as a DOT digraph string."""
    lines = [f"digraph {_quote(name or graph.name)} {{",
             "  node [fontsize=10];"]
    for nid in graph.node_ids():
        node = graph.nodes[nid]
        shape = _SHAPES.get(node.kind, "ellipse")
        lines.append(
            f"  n{nid} [label={_quote(f'{nid}: {node.label()}')} "
            f"shape={shape}];")
    for nid in graph.node_ids():
        for port, src in sorted(graph.input_ports(nid).items()):
            lines.append(f"  n{src} -> n{nid} [label=\"{port}\"];")
        for src, pol in graph.control_inputs(nid):
            mark = "+" if pol else "-"
            lines.append(
                f"  n{src} -> n{nid} [style=dashed label=\"{mark}\"];")
        for src in sorted(graph.order_preds(nid)):
            lines.append(f"  n{src} -> n{nid} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)


def behavior_to_dot(behavior: Behavior) -> str:
    """Render a behavior with region clusters as a DOT digraph string."""
    graph = behavior.graph
    lines = [f"digraph {_quote(behavior.name)} {{",
             "  compound=true; node [fontsize=10];"]
    counter = [0]

    def emit_region(region, indent: str) -> None:
        if isinstance(region, SeqRegion):
            for child in region.children:
                emit_region(child, indent)
            return
        counter[0] += 1
        cid = counter[0]
        if isinstance(region, BlockRegion):
            lines.append(f"{indent}subgraph cluster_{cid} {{")
            lines.append(f"{indent}  label=\"block\"; style=dashed;")
            for nid in sorted(region.nodes):
                _emit_node(nid, indent + "  ")
            lines.append(f"{indent}}}")
        elif isinstance(region, LoopRegion):
            lines.append(f"{indent}subgraph cluster_{cid} {{")
            lines.append(
                f"{indent}  label={_quote('loop ' + region.name)};")
            for lv in region.loop_vars:
                _emit_node(lv.join, indent + "  ")
            for nid in region.cond_nodes:
                _emit_node(nid, indent + "  ")
            emit_region(region.body, indent + "  ")
            lines.append(f"{indent}}}")

    def _emit_node(nid: int, indent: str) -> None:
        node = graph.nodes[nid]
        shape = _SHAPES.get(node.kind, "ellipse")
        lines.append(
            f"{indent}n{nid} [label={_quote(f'{nid}: {node.label()}')} "
            f"shape={shape}];")

    emit_region(behavior.region, "  ")
    for nid in sorted(behavior.free_node_ids()):
        _emit_node(nid, "  ")
    for nid in graph.node_ids():
        for port, src in sorted(graph.input_ports(nid).items()):
            lines.append(f"  n{src} -> n{nid} [label=\"{port}\"];")
        for src, pol in graph.control_inputs(nid):
            mark = "+" if pol else "-"
            lines.append(
                f"  n{src} -> n{nid} [style=dashed label=\"{mark}\"];")
        for src in sorted(graph.order_preds(nid)):
            lines.append(f"  n{src} -> n{nid} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)

"""Structural well-formedness checks for behaviors.

``validate_behavior`` raises :class:`~repro.errors.CdfgValidationError`
on the first problem found.  It is called by
:meth:`BehaviorBuilder.finish` and re-run by the test suite after every
transformation, so transformations cannot silently corrupt the IR.
"""

from __future__ import annotations

from typing import Set

from ..errors import CdfgValidationError
from .ir import Graph
from .ops import OpKind, info
from .regions import Behavior, BlockRegion, LoopRegion, Region, SeqRegion

#: Kinds allowed to live outside the region tree.
_FREE_OK = {OpKind.CONST, OpKind.INPUT, OpKind.OUTPUT}


def validate_behavior(behavior: Behavior) -> None:
    """Check structural invariants of ``behavior``.

    Raises:
        CdfgValidationError: describing the first violation found.
    """
    g = behavior.graph
    _check_arities(g)
    _check_region_partition(behavior)
    _check_regions(behavior, behavior.region)
    _check_interface(behavior)


def _check_arities(g: Graph) -> None:
    for nid in g.node_ids():
        node = g.nodes[nid]
        op = info(node.kind)
        try:
            inputs = g.data_inputs(nid)
        except Exception as exc:  # non-contiguous ports
            raise CdfgValidationError(str(exc)) from None
        if op.arity is not None and len(inputs) != op.arity:
            raise CdfgValidationError(
                f"node {nid} ({node.label()}): expected {op.arity} data "
                f"inputs, has {len(inputs)}")
        if node.kind is OpKind.JOIN and len(inputs) < 2:
            raise CdfgValidationError(
                f"JOIN node {nid} must have at least 2 inputs, has "
                f"{len(inputs)}")
        if node.kind is OpKind.CONST and node.value is None:
            raise CdfgValidationError(f"CONST node {nid} has no value")
        if node.kind in (OpKind.INPUT, OpKind.OUTPUT) and not node.var:
            raise CdfgValidationError(
                f"{node.kind.value} node {nid} has no variable name")
        if node.kind in (OpKind.LOAD, OpKind.STORE) and not node.array:
            raise CdfgValidationError(
                f"{node.kind.value} node {nid} has no array name")
        for src, _pol in g.control_inputs(nid):
            if src not in g:
                raise CdfgValidationError(
                    f"node {nid} guarded by unknown node {src}")


def _check_region_partition(behavior: Behavior) -> None:
    g = behavior.graph
    seen: Set[int] = set()
    for region in behavior.region.walk():
        owned: Set[int]
        if isinstance(region, BlockRegion):
            owned = set(region.nodes)
        elif isinstance(region, LoopRegion):
            owned = {lv.join for lv in region.loop_vars}
            owned.update(region.cond_nodes)
        else:
            continue
        dup = owned & seen
        if dup:
            raise CdfgValidationError(
                f"nodes {sorted(dup)[:5]} owned by more than one region")
        missing = owned - set(g.nodes)
        if missing:
            raise CdfgValidationError(
                f"region references unknown nodes {sorted(missing)[:5]}")
        seen |= owned
    for nid in set(g.nodes) - seen:
        if g.nodes[nid].kind not in _FREE_OK:
            raise CdfgValidationError(
                f"node {nid} ({g.nodes[nid].label()}) is not owned by any "
                f"region and is not a free kind")


def _check_regions(behavior: Behavior, region: Region) -> None:
    g = behavior.graph
    if isinstance(region, SeqRegion):
        for child in region.children:
            _check_regions(behavior, child)
    elif isinstance(region, BlockRegion):
        try:
            g.topo_order(region.nodes)
        except Exception as exc:
            raise CdfgValidationError(
                f"block region is cyclic: {exc}") from None
    elif isinstance(region, LoopRegion):
        if region.cond < 0:
            raise CdfgValidationError(
                f"loop {region.name}: no condition node")
        joins = {lv.join for lv in region.loop_vars}
        if region.cond not in region.cond_nodes and region.cond not in joins:
            raise CdfgValidationError(
                f"loop {region.name}: condition node {region.cond} is not "
                f"in the loop's condition section")
        for lv in region.loop_vars:
            node = g.nodes.get(lv.join)
            if node is None or node.kind is not OpKind.JOIN:
                raise CdfgValidationError(
                    f"loop {region.name}: loop variable {lv.name!r} header "
                    f"{lv.join} is not a JOIN node")
            ports = g.input_ports(lv.join)
            if 0 not in ports or 1 not in ports:
                raise CdfgValidationError(
                    f"loop {region.name}: header join of {lv.name!r} needs "
                    f"both an initial (port 0) and an update (port 1) input")
        try:
            g.topo_order(region.cond_nodes)
        except Exception as exc:
            raise CdfgValidationError(
                f"loop {region.name}: condition section cyclic: "
                f"{exc}") from None
        _check_regions(behavior, region.body)
    else:
        raise CdfgValidationError(
            f"unknown region type {type(region).__name__}")


def _check_interface(behavior: Behavior) -> None:
    g = behavior.graph
    declared_in = set(behavior.inputs)
    declared_out = set(behavior.outputs)
    seen_in: Set[str] = set()
    seen_out: Set[str] = set()
    for node in g:
        if node.kind is OpKind.INPUT:
            seen_in.add(node.var or "")
        elif node.kind is OpKind.OUTPUT:
            seen_out.add(node.var or "")
    if seen_in - declared_in or declared_in - seen_in:
        raise CdfgValidationError(
            f"input declarations {sorted(declared_in)} do not match input "
            f"nodes {sorted(seen_in)}")
    if seen_out - declared_out or declared_out - seen_out:
        raise CdfgValidationError(
            f"output declarations {sorted(declared_out)} do not match "
            f"output nodes {sorted(seen_out)}")

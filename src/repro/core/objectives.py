"""Objective functions: throughput or power (paper Section 2.2).

Scores are *costs* — lower is better — so the search minimizes
uniformly:

* **throughput** — the expected schedule length in cycles (its inverse
  is the paper's throughput metric);
* **power** — the Section 2.2 estimate with supply-voltage scaling:
  a candidate faster than the untransformed baseline is slowed back to
  the baseline's schedule length by lowering Vdd, converting the
  speedup into quadratic energy savings.  Candidates slower than the
  baseline violate the iso-throughput constraint and are penalized
  proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SearchError
from ..power.model import estimate_power
from ..power.vdd import scaled_vdd_for_schedule
from ..sched.driver import ScheduleResult

THROUGHPUT = "throughput"
POWER = "power"


@dataclass
class Objective:
    """A minimization objective over scheduled behaviors.

    Attributes:
        kind: ``"throughput"`` or ``"power"``.
        baseline_length: for power mode, the untransformed design's
            average schedule length (the Vdd-scaling reference).
        vdd: nominal supply voltage.
        vt: threshold voltage.
        cycle_time: clock period for absolute power numbers.
    """

    kind: str = THROUGHPUT
    baseline_length: Optional[float] = None
    vdd: float = 5.0
    vt: float = 1.0
    cycle_time: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (THROUGHPUT, POWER):
            raise SearchError(f"unknown objective {self.kind!r}")

    def evaluate(self, result: ScheduleResult) -> float:
        """Cost of a scheduled behavior (lower is better)."""
        length = result.average_length()
        if self.kind == THROUGHPUT:
            return length
        est = estimate_power(result.stg, result.behavior.graph,
                             result.library, vdd=self.vdd,
                             cycle_time=self.cycle_time,
                             visits=result.expected_visits())
        baseline = self.baseline_length
        if baseline is None:
            # No reference: plain power at the nominal supply.
            return est.power
        if length <= baseline:
            vdd = scaled_vdd_for_schedule(length, baseline,
                                          vdd_initial=self.vdd,
                                          vt=self.vt)
            return (est.total_energy * vdd ** 2
                    / (baseline * self.cycle_time))
        # Slower than the iso-throughput constraint allows: penalize.
        return est.power * (length / baseline)

    def describe(self, result: ScheduleResult) -> str:
        """Human-readable metric line for reports."""
        length = result.average_length()
        if self.kind == THROUGHPUT:
            return (f"avg schedule length {length:.2f} cycles, "
                    f"throughput x1000 = {1000.0 / length:.1f}")
        cost = self.evaluate(result)
        return f"power {cost:.2f} (len {length:.2f})"

"""Search telemetry: what the evaluation engine did, per generation.

The FACT search spends essentially all of its time rescheduling
candidates, so this is the layer that makes its cost observable: every
generation records wall time, how many candidates were scored, how many
of those were served from the memoization cache, and the best score so
far.  A :class:`SearchTelemetry` rides along on
:class:`~repro.core.search.SearchResult` (and therefore
:class:`~repro.core.fact.FactResult`) and is rendered by
``python -m repro optimize --stats`` and the scaling benchmark.

:class:`ExploreTelemetry` is the multi-objective sibling, recorded by
the Pareto exploration runner (:mod:`repro.explore.runner`): per
generation it tracks the candidate count, how many evaluations the
persistent run store served, the archive (front) size, and a
hypervolume proxy, and it aggregates the run store's hit statistics
next to the engine cache's.

Both telemetry classes export a
:class:`~repro.obs.metrics.MetricsRegistry` view (:meth:`SearchTelemetry
.metrics` / :meth:`ExploreTelemetry.metrics`): the unified sink the
``--stats`` totals and ``repro trace summarize`` read from.  The
registry is built from the *aggregated* :class:`EvalStats` (per-
candidate deltas shipped home from pool workers), never from any single
process-local cache object, so parallel runs report their workers'
activity in full (work totals match the serial run exactly; hit/reuse
splits may differ because each worker owns a private region cache) —
see ``docs/observability.md``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from ..rewrite.driver import RewriteStats
from ..stream import StreamStats
from .evalcache import CacheStats


@dataclass
class EvalStats:
    """Incremental-evaluation counters, aggregated over candidates.

    Fills the observability gap left by :class:`CacheStats` (which only
    sees whole-candidate memoization): how much *scheduling* work each
    candidate actually caused once region-level reuse is accounted for.

    Attributes:
        scheduled: candidates that went through the scheduler (i.e. were
            not served by the behavior-level evaluation cache).
        region_requests / region_hits / region_evictions: region-
            schedule-cache lookups, hits and LRU evictions across those
            candidates.
        states_built / states_reused: STG states emitted by fresh
            scheduling vs. spliced from cached fragments.
        markov_local / markov_reused / markov_full: localized fragment
            Markov solves, memoized reuses, and full-chain fallback
            solves.
        sched_time / solver_time: seconds spent scheduling (total) and
            inside Markov solves (a subset, when solves happen during
            scheduling).
        numeric_flushes / numeric_batched: batched-backend flushes and
            the systems they carried (both 0 under the scalar backend).
        numeric_seconds: seconds inside the solves themselves (matrix
            assembly from transitions, LAPACK, validity checks) —
            accrued by both backends at the same boundary, so scalar
            vs. batched ratios compare the numeric core, not the
            Python STG walk around it.
    """

    scheduled: int = 0
    region_requests: int = 0
    region_hits: int = 0
    region_evictions: int = 0
    states_built: int = 0
    states_reused: int = 0
    markov_local: int = 0
    markov_reused: int = 0
    markov_full: int = 0
    sched_time: float = 0.0
    solver_time: float = 0.0
    numeric_flushes: int = 0
    numeric_batched: int = 0
    numeric_seconds: float = 0.0

    @property
    def region_hit_rate(self) -> float:
        if self.region_requests <= 0:
            return 0.0
        return self.region_hits / self.region_requests

    @property
    def reschedule_fraction(self) -> float:
        """Fraction of emitted STG states that were freshly scheduled
        (1.0 = everything rescheduled, i.e. no reuse)."""
        total = self.states_built + self.states_reused
        if total <= 0:
            return 1.0
        return self.states_built / total

    def add(self, other: "EvalStats") -> None:
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def minus(self, other: "EvalStats") -> "EvalStats":
        """Field-wise difference (for since-snapshot deltas)."""
        return EvalStats(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)})

    def as_dict(self) -> Dict[str, float]:
        d: Dict[str, float] = asdict(self)
        d["region_hit_rate"] = self.region_hit_rate
        d["reschedule_fraction"] = self.reschedule_fraction
        return d


@dataclass
class GenerationRecord:
    """One generation (``Behavior_set``) proposed by the search
    strategy."""

    index: int
    outer_iter: int
    wall_time: float
    evaluations: int
    cache_hits: int
    best_score: float
    scheduled: int = 0
    reschedule_fraction: float = 1.0
    solver_time: float = 0.0
    #: portfolio member that proposed this generation (None outside
    #: portfolio runs)
    member: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        if self.evaluations <= 0:
            return 0.0
        return self.cache_hits / self.evaluations


@dataclass
class SearchTelemetry:
    """Aggregate record of one ``Apply_transforms`` run."""

    backend: str = "serial"
    workers: int = 1
    generations: List[GenerationRecord] = field(default_factory=list)
    total_wall_time: float = 0.0
    evaluations: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    eval: EvalStats = field(default_factory=EvalStats)
    rewrite: RewriteStats = field(default_factory=RewriteStats)
    #: streaming-pipeline counters; None for barrier runs
    stream: Optional[StreamStats] = None
    #: search strategy that drove this run (docs/search.md)
    strategy: str = "greedy"
    #: per-member scoreboard of a portfolio run (label -> counters);
    #: None for single-strategy runs
    members: Optional[Dict[str, Dict[str, float]]] = None

    # -- recording ------------------------------------------------------
    def start(self) -> None:
        self._t0 = time.perf_counter()

    def finish(self) -> None:
        self.total_wall_time = time.perf_counter() - self._t0

    def record_generation(self, outer_iter: int, wall_time: float,
                          evaluations: int, cache_hits: int,
                          best_score: float, scheduled: int = 0,
                          reschedule_fraction: float = 1.0,
                          solver_time: float = 0.0,
                          member: Optional[str] = None) -> None:
        self.generations.append(GenerationRecord(
            index=len(self.generations), outer_iter=outer_iter,
            wall_time=wall_time, evaluations=evaluations,
            cache_hits=cache_hits, best_score=best_score,
            scheduled=scheduled,
            reschedule_fraction=reschedule_fraction,
            solver_time=solver_time, member=member))
        self.evaluations += evaluations

    # -- views ----------------------------------------------------------
    @property
    def best_trajectory(self) -> List[float]:
        """Best score after each generation (monotone non-increasing)."""
        return [g.best_score for g in self.generations]

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    def metrics(self) -> "MetricsRegistry":
        """Unified-registry view of this run's counters.

        Built from the engine-level :class:`CacheStats` (recorded in the
        parent process) and the aggregated :class:`EvalStats` (shipped
        per-candidate deltas), so every worker's activity is counted
        whichever backend ran the evaluations.
        """
        from ..obs.metrics import MetricsRegistry
        reg = MetricsRegistry()
        reg.set("engine.workers", self.workers)
        reg.inc("engine.evaluations", self.evaluations)
        reg.inc("search.generations", len(self.generations))
        reg.inc("search.wall_seconds", self.total_wall_time)
        reg.absorb_cache_stats("engine.cache", self.cache)
        reg.absorb_eval_stats(self.eval)
        if self.stream is not None:
            reg.absorb_stream_stats(self.stream)
        for name, value in self.rewrite.as_dict().items():
            reg.inc(f"rewrite.{name}", value)
        for g in self.generations:
            reg.observe("search.generation.seconds", g.wall_time)
        if self.members:
            for label, counters in self.members.items():
                for name, value in counters.items():
                    if value != float("inf"):
                        reg.set(f"search.member.{label}.{name}", value)
        return reg

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by benchmarks and tests)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "strategy": self.strategy,
            "total_wall_time": self.total_wall_time,
            "evaluations": self.evaluations,
            "generations": [asdict(g) for g in self.generations],
            "cache": self.cache.as_dict(),
            "eval": self.eval.as_dict(),
            "rewrite": self.rewrite.as_dict(),
            "stream": self.stream.as_dict()
            if self.stream is not None else None,
            "members": self.members,
            "best_trajectory": self.best_trajectory,
            "metrics": self.metrics().as_dict(),
        }

    def summary(self) -> str:
        """Multi-line human-readable report for ``--stats``."""
        lines = [
            f"search stats: backend={self.backend} workers={self.workers}",
            f"  wall time: {self.total_wall_time:.3f}s over "
            f"{len(self.generations)} generations",
            f"  evaluations: {self.evaluations} "
            f"(cache: {self.cache.hits} hits / {self.cache.misses} misses"
            f" / {self.cache.evictions} evictions, "
            f"hit rate {100 * self.cache.hit_rate:.1f}%)",
            f"  incremental: {self.eval.scheduled} scheduled, "
            f"region hit rate {100 * self.eval.region_hit_rate:.1f}%, "
            f"reschedule fraction "
            f"{100 * self.eval.reschedule_fraction:.1f}%, "
            f"solver {self.eval.solver_time * 1000:.1f} ms "
            f"({self.eval.markov_local} local / "
            f"{self.eval.markov_reused} reused / "
            f"{self.eval.markov_full} full)",
            f"  enumeration: {self.rewrite.requests} requests "
            f"({self.rewrite.memo_hits} memoized, "
            f"{self.rewrite.incremental_scans} incremental / "
            f"{self.rewrite.full_scans} full scans; "
            f"{self.rewrite.carried_matches} matches carried, "
            f"{self.rewrite.rescanned_matches} rescanned), "
            f"{self.rewrite.enum_seconds * 1000:.1f} ms",
        ]
        if self.stream is not None:
            lines.append("  " + self.stream.summary())
        if self.strategy != "greedy":
            # Extra lines only for non-default strategies: the greedy
            # report stays byte-identical to the pre-strategy output.
            lines.append(f"  strategy: {self.strategy}")
            for label, c in (self.members or {}).items():
                lines.append(
                    f"    member {label}: {int(c['spent'])} scheduled "
                    f"over {int(c['generations'])} generations "
                    f"({int(c['outer_iters'])} outer), "
                    f"best {c['best_score']:.4f}")
        reg = self.metrics()
        lines.append(
            "  totals (aggregated across workers): region cache "
            f"{int(reg.value('region_cache.requests'))} requests / "
            f"{int(reg.value('region_cache.hits'))} hits / "
            f"{int(reg.value('region_cache.evictions'))} evictions; "
            f"states {int(reg.value('stg.states_built'))} built / "
            f"{int(reg.value('stg.states_reused'))} reused")
        for g in self.generations:
            member = f" [{g.member}]" if g.member else ""
            lines.append(
                f"  gen {g.index:2d} (outer {g.outer_iter}): "
                f"{g.evaluations:4d} evals, {g.cache_hits:4d} cached, "
                f"{g.scheduled:4d} scheduled "
                f"(resched {100 * g.reschedule_fraction:5.1f}%), "
                f"{g.wall_time * 1000:8.1f} ms, best {g.best_score:.4f}"
                f"{member}")
        return "\n".join(lines)


@dataclass
class ExploreGenerationRecord:
    """One generation of the Pareto exploration loop."""

    index: int
    wall_time: float
    candidates: int
    scheduled: int
    store_hits: int
    front_size: int
    hypervolume: float
    reschedule_fraction: float = 1.0
    solver_time: float = 0.0

    @property
    def store_hit_rate(self) -> float:
        if self.candidates <= 0:
            return 0.0
        return self.store_hits / self.candidates


@dataclass
class ExploreTelemetry:
    """Aggregate record of one Pareto exploration run.

    ``store`` and ``cache`` are the run store's and the evaluation
    engine's :class:`CacheStats`.  A resumed run carries forward the
    per-generation records of the interrupted one; wall times are the
    only fields that can differ between an interrupted-and-resumed run
    and an uninterrupted one — exported fronts contain no telemetry for
    exactly that reason.
    """

    backend: str = "serial"
    workers: int = 1
    generations: List[ExploreGenerationRecord] = field(
        default_factory=list)
    total_wall_time: float = 0.0
    store: CacheStats = field(default_factory=CacheStats)
    cache: CacheStats = field(default_factory=CacheStats)
    eval: EvalStats = field(default_factory=EvalStats)
    rewrite: RewriteStats = field(default_factory=RewriteStats)
    #: streaming-pipeline counters; None for barrier runs.  Attached at
    #: run end (not per generation), so it is never pickled into
    #: checkpoints — only ``generations`` is carried across resumes.
    stream: Optional[StreamStats] = None

    # -- recording ------------------------------------------------------
    def start(self) -> None:
        self._t0 = time.perf_counter()

    def finish(self) -> None:
        self.total_wall_time += time.perf_counter() - self._t0

    def record_generation(self, wall_time: float, candidates: int,
                          scheduled: int, store_hits: int,
                          front_size: int, hypervolume: float,
                          reschedule_fraction: float = 1.0,
                          solver_time: float = 0.0) -> None:
        self.generations.append(ExploreGenerationRecord(
            index=len(self.generations), wall_time=wall_time,
            candidates=candidates, scheduled=scheduled,
            store_hits=store_hits, front_size=front_size,
            hypervolume=hypervolume,
            reschedule_fraction=reschedule_fraction,
            solver_time=solver_time))

    # -- views ----------------------------------------------------------
    @property
    def evaluations(self) -> int:
        """Candidate evaluations requested across all generations."""
        return sum(g.candidates for g in self.generations)

    @property
    def front_trajectory(self) -> List[int]:
        """Archive size after each generation."""
        return [g.front_size for g in self.generations]

    def metrics(self) -> "MetricsRegistry":
        """Unified-registry view (see :meth:`SearchTelemetry.metrics`);
        adds the persistent run store's counters under ``store.*``."""
        from ..obs.metrics import MetricsRegistry
        reg = MetricsRegistry()
        reg.set("engine.workers", self.workers)
        reg.inc("engine.evaluations", self.evaluations)
        reg.inc("explore.generations", len(self.generations))
        reg.inc("explore.wall_seconds", self.total_wall_time)
        reg.absorb_cache_stats("store", self.store)
        reg.absorb_cache_stats("engine.cache", self.cache)
        reg.absorb_eval_stats(self.eval)
        if self.stream is not None:
            reg.absorb_stream_stats(self.stream)
        for name, value in self.rewrite.as_dict().items():
            reg.inc(f"rewrite.{name}", value)
        for g in self.generations:
            reg.observe("explore.generation.seconds", g.wall_time)
        if self.generations:
            reg.set("explore.front_size", self.generations[-1].front_size)
            reg.set("explore.hypervolume",
                    self.generations[-1].hypervolume)
        return reg

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "total_wall_time": self.total_wall_time,
            "evaluations": self.evaluations,
            "generations": [asdict(g) for g in self.generations],
            "store": self.store.as_dict(),
            "cache": self.cache.as_dict(),
            "eval": self.eval.as_dict(),
            "rewrite": self.rewrite.as_dict(),
            "stream": self.stream.as_dict()
            if self.stream is not None else None,
            "front_trajectory": self.front_trajectory,
            "metrics": self.metrics().as_dict(),
        }

    def summary(self) -> str:
        """Multi-line human-readable report for ``--stats``."""
        lines = [
            f"explore stats: backend={self.backend} "
            f"workers={self.workers}",
            f"  wall time: {self.total_wall_time:.3f}s over "
            f"{len(self.generations)} generations",
            f"  store: {self.store.hits} hits / {self.store.misses} "
            f"misses (hit rate {100 * self.store.hit_rate:.1f}%); "
            f"engine cache hit rate {100 * self.cache.hit_rate:.1f}%",
            f"  incremental: region hit rate "
            f"{100 * self.eval.region_hit_rate:.1f}%, reschedule "
            f"fraction {100 * self.eval.reschedule_fraction:.1f}%, "
            f"solver {self.eval.solver_time * 1000:.1f} ms",
            f"  enumeration: {self.rewrite.requests} requests "
            f"({self.rewrite.memo_hits} memoized, "
            f"{self.rewrite.incremental_scans} incremental / "
            f"{self.rewrite.full_scans} full scans), "
            f"{self.rewrite.enum_seconds * 1000:.1f} ms",
        ]
        if self.stream is not None:
            lines.append("  " + self.stream.summary())
        reg = self.metrics()
        lines.append(
            "  totals (aggregated across workers): region cache "
            f"{int(reg.value('region_cache.requests'))} requests / "
            f"{int(reg.value('region_cache.hits'))} hits / "
            f"{int(reg.value('region_cache.evictions'))} evictions; "
            f"states {int(reg.value('stg.states_built'))} built / "
            f"{int(reg.value('stg.states_reused'))} reused")
        for g in self.generations:
            lines.append(
                f"  gen {g.index:2d}: {g.candidates:4d} candidates, "
                f"{g.store_hits:4d} store hits, {g.scheduled:4d} "
                f"scheduled, front {g.front_size:3d}, "
                f"hv {g.hypervolume:8.4f}, "
                f"{g.wall_time * 1000:8.1f} ms")
        return "\n".join(lines)

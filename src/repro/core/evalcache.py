"""Memoization cache for candidate evaluation.

The FACT search (paper Figure 6) reschedules every member of every
generation's ``Behavior_set``.  Commutativity/associativity moves from
different lineages very often reproduce *identical* behaviors (modulo
node numbering), so scheduling them again is pure waste.  This module
provides:

* :func:`behavior_fingerprint` — a content hash over a behavior that is
  invariant under node-id renumbering (built on
  :meth:`repro.cdfg.ir.Graph.canonical_hash` plus a canonical
  serialization of the region tree and interface), but sensitive to
  everything with semantic weight: operation kinds, constants, edge
  structure, interface variable and array names, loop structure and
  trip counts, and the condition weight/alias bookkeeping;
* :class:`EvalCache` — a bounded LRU mapping fingerprints to evaluation
  outcomes, with hit/miss/eviction statistics.

Two behaviors whose interfaces are renamed (``in a`` vs ``in x``) are
*different* designs and must not collide; two behaviors that differ only
in node numbering are the same design and must.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..cdfg.ir import _digest
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import CdfgError


def _region_repr(region: Region, sig: Dict[int, bytes]) -> str:
    """Canonical serialization of a region tree via node signatures.

    ``SeqRegion`` children keep their order (sequencing is semantic);
    ``BlockRegion`` members are sorted (the block scheduler treats them
    as a set).
    """
    if isinstance(region, BlockRegion):
        return f"B({sorted(sig[n] for n in region.nodes)})"
    if isinstance(region, SeqRegion):
        return "S(" + ",".join(_region_repr(c, sig)
                               for c in region.children) + ")"
    if isinstance(region, LoopRegion):
        lvs = sorted((lv.name, sig[lv.join]) for lv in region.loop_vars)
        conds = sorted(sig[n] for n in region.cond_nodes)
        cond = sig[region.cond] if region.cond in sig else repr(region.cond)
        return (f"L(vars={lvs},cond_nodes={conds},cond={cond},"
                f"trip={region.trip_count},"
                f"body={_region_repr(region.body, sig)})")
    raise CdfgError(f"unknown region type {type(region).__name__}")


def behavior_fingerprint(behavior: Behavior) -> str:
    """Content hash of a behavior, invariant under node renumbering."""
    sig = behavior.graph.canonical_node_keys()
    parts = [
        behavior.graph.canonical_hash(node_keys=sig),
        _region_repr(behavior.region, sig),
        repr(behavior.inputs),
        repr(behavior.outputs),
        repr(sorted((a.name, a.size, a.ports)
                    for a in behavior.arrays.values())),
        repr(sorted((sig.get(n, str(n).encode()), w)
                    for n, w in behavior.cond_weights.items())),
        repr(sorted((sig.get(a, str(a).encode()),
                     sig.get(b, str(b).encode()))
                    for a, b in behavior.cond_aliases.items())),
    ]
    return _digest("|".join(parts).encode()).hexdigest()


def _region_raw_repr(region: Region) -> str:
    """Like :func:`_region_repr` but over raw node ids (no WL hashing)."""
    if isinstance(region, BlockRegion):
        return f"B({sorted(region.nodes)})"
    if isinstance(region, SeqRegion):
        return "S(" + ",".join(_region_raw_repr(c)
                               for c in region.children) + ")"
    if isinstance(region, LoopRegion):
        lvs = sorted((lv.name, lv.join) for lv in region.loop_vars)
        return (f"L(vars={lvs},cond_nodes={sorted(region.cond_nodes)},"
                f"cond={region.cond},trip={region.trip_count},"
                f"body={_region_raw_repr(region.body)})")
    raise CdfgError(f"unknown region type {type(region).__name__}")


def behavior_raw_fingerprint(behavior: Behavior) -> str:
    """Content hash of a behavior, *sensitive* to node numbering.

    The rewrite driver's match cache and the engine's (parent × match)
    memoization key on this: a :class:`~repro.rewrite.pattern.Match`
    names concrete node ids, so it may only be reused on a behavior that
    is byte-identical *including* numbering — the canonical fingerprint
    would wrongly merge renumbered twins whose ids mean different
    things.  A single pass (no WL refinement), so it is roughly an
    order of magnitude cheaper than :func:`behavior_fingerprint`.
    """
    g = behavior.graph
    h = _digest()
    for nid in sorted(g.nodes):
        n = g.nodes[nid]
        h.update(f"n{nid}|{n.kind.value}|{n.value!r}|{n.var!r}|"
                 f"{n.array!r};".encode())
        h.update(f"d{sorted(g.input_ports(nid).items())!r};"
                 f"c{sorted(g.control_inputs(nid))!r};"
                 f"o{sorted(g.order_preds(nid))!r};".encode())
    h.update("|".join([
        _region_raw_repr(behavior.region),
        repr(behavior.inputs),
        repr(behavior.outputs),
        repr(sorted((a.name, a.size, a.ports)
                    for a in behavior.arrays.values())),
        repr(sorted(behavior.cond_weights.items())),
        repr(sorted(behavior.cond_aliases.items())),
    ]).encode())
    return h.hexdigest()


def cached_fingerprint(behavior: Behavior) -> str:
    """:func:`behavior_fingerprint`, memoized on the behavior object.

    Keyed on ``graph.version`` (the mutation journal), so the cached
    value survives exactly as long as the graph is untouched.  Callers
    rely on the search-pipeline contract that behaviors are immutable
    once their producing rewrite (including hygiene) has run; rewrites
    that only reorganize the region tree must :meth:`~repro.cdfg.ir
    .Graph.touch` the nodes they move so the version advances.
    """
    version = behavior.graph.version
    cached = getattr(behavior, "_fp_canonical", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    fp = behavior_fingerprint(behavior)
    behavior._fp_canonical = (version, fp)  # type: ignore[attr-defined]
    return fp


def cached_raw_fingerprint(behavior: Behavior) -> str:
    """:func:`behavior_raw_fingerprint`, memoized like
    :func:`cached_fingerprint`."""
    version = behavior.graph.version
    cached = getattr(behavior, "_fp_raw", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    fp = behavior_raw_fingerprint(behavior)
    behavior._fp_raw = (version, fp)  # type: ignore[attr-defined]
    return fp


@dataclass
class CacheStats:
    """Counters exposed by :class:`EvalCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class EvalCache:
    """A bounded LRU cache from content keys to evaluation outcomes.

    Keys are opaque strings (fingerprints); values are whatever the
    evaluation engine stores — the cache never inspects them.  A
    ``max_entries`` of 0 disables storage (every lookup misses), which
    keeps the call sites branch-free.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """Look up ``key``, counting a hit or miss; None on miss."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> Optional[Any]:
        """Look up ``key`` without touching the statistics or LRU order."""
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        if self.max_entries <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

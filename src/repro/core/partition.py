"""STG partitioning (paper Section 4.1).

Transitions are ranked by *relative frequency* — the probability of
being in the source state times the probability of taking the edge —
and those above a threshold seed "STG blocks": connected groups of
states grown by the union procedure the paper describes (augment a
block when one endpoint is already inside, fuse two blocks when an edge
spans them).

The resulting blocks are the hot regions the transformation search
focuses on; each block also exposes the set of CDFG operations its
states execute (the paper's step 3: "identify the portion of the CDFG
which corresponds to the STG block").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..stg.markov import state_probabilities
from ..stg.model import Stg, Transition


@dataclass
class StgBlock:
    """A connected group of frequently-visited states."""

    states: Set[int] = field(default_factory=set)
    #: total relative frequency of the transitions that formed the block
    weight: float = 0.0

    def cdfg_nodes(self, stg: Stg) -> Set[int]:
        """CDFG operations executed inside this block."""
        out: Set[int] = set()
        for sid in self.states:
            for op in stg.states[sid].ops:
                out.add(op.node)
        return out


def relative_frequencies(stg: Stg,
                         visits: Optional[Dict[int, float]] = None
                         ) -> List[Tuple[Transition, float]]:
    """``(transition, P(source) × P(edge | source))`` pairs, descending.

    ``visits`` optionally supplies precomputed expected visits (a
    schedule result's memoized totals) so the chain isn't solved a
    second time just to rank transitions.
    """
    probs = state_probabilities(stg, visits=visits)
    ranked = [(t, probs.get(t.src, 0.0) * t.prob)
              for t in stg.transitions]
    ranked.sort(key=lambda pair: (-pair[1], pair[0].src, pair[0].dst))
    return ranked


def partition_stg(stg: Stg, threshold: float = 0.1,
                  visits: Optional[Dict[int, float]] = None
                  ) -> List[StgBlock]:
    """Partition the STG into disjoint hot blocks.

    Args:
        stg: the scheduled behavior.
        threshold: keep transitions whose relative frequency is at least
            ``threshold × max_frequency``.
        visits: precomputed expected visits (else solved here).

    Returns:
        Disjoint blocks, most frequent first.  States whose traffic is
        entirely below threshold belong to no block (they are the cold
        remainder the algorithm leaves untouched).
    """
    ranked = relative_frequencies(stg, visits=visits)
    if not ranked:
        return []
    cutoff = ranked[0][1] * threshold
    chosen = [(t, f) for t, f in ranked if f >= cutoff and f > 0]

    block_of: Dict[int, StgBlock] = {}
    blocks: List[StgBlock] = []
    for t, freq in chosen:
        src_blk = block_of.get(t.src)
        dst_blk = block_of.get(t.dst)
        if src_blk is None and dst_blk is None:
            blk = StgBlock({t.src, t.dst}, freq)
            blocks.append(blk)
            block_of[t.src] = blk
            block_of[t.dst] = blk
        elif src_blk is not None and dst_blk is None:
            src_blk.states.add(t.dst)
            src_blk.weight += freq
            block_of[t.dst] = src_blk
        elif src_blk is None and dst_blk is not None:
            dst_blk.states.add(t.src)
            dst_blk.weight += freq
            block_of[t.src] = dst_blk
        elif src_blk is not dst_blk:
            # Fuse the two blocks.
            assert src_blk is not None and dst_blk is not None
            src_blk.states |= dst_blk.states
            src_blk.weight += dst_blk.weight + freq
            for sid in dst_blk.states:
                block_of[sid] = src_blk
            blocks.remove(dst_blk)
        else:
            src_blk.weight += freq
    blocks.sort(key=lambda b: -b.weight)
    return blocks


def hot_cdfg_nodes(stg: Stg, threshold: float = 0.1,
                   max_blocks: Optional[int] = None,
                   visits: Optional[Dict[int, float]] = None) -> Set[int]:
    """CDFG nodes inside the hottest blocks (search focus set)."""
    blocks = partition_stg(stg, threshold, visits=visits)
    if max_blocks is not None:
        blocks = blocks[:max_blocks]
    out: Set[int] = set()
    for blk in blocks:
        out |= blk.cdfg_nodes(stg)
    return out

"""The FACT driver (paper Figure 5).

End-to-end flow:

1. **Schedule** the input behavior with the CFI scheduler (step 1).
2. **Profile** the CDFG against typical input traces to obtain branch
   probabilities (reused for every rescheduling).
3. **Partition** the STG into hot blocks by relative transition
   frequency (step 2) and collect the CDFG operations they execute
   (step 3) — the search focuses its candidates there.
4. Run **Apply_transforms** (steps 4–7): candidate transformations are
   applied, the results rescheduled, and throughput or power estimated
   on the schedule; a rank-Boltzmann subset seeds the next generation.

For the power objective, the untransformed design's schedule length is
the Vdd-scaling baseline (Example 1's iso-throughput rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Set

from ..cdfg.regions import Behavior
from ..errors import SearchError
from ..hw import Allocation, Library, dac98_library
from ..numeric import set_backend
from ..obs.trace import NULL_TRACER, AnyTracer
from ..power.model import PowerEstimate, estimate_power
from ..power.vdd import scaled_vdd_for_schedule
from ..profiling.profiler import Profile, profile
from ..profiling.traces import TraceSet
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.regioncache import RegionScheduleCache
from ..sched.types import BranchProbs, SchedConfig
from ..transforms import TransformLibrary, default_library
from .engine import context_fingerprint
from .objectives import POWER, THROUGHPUT, Objective
from .partition import hot_cdfg_nodes
from .search import Evaluated, SearchConfig, SearchResult, TransformSearch


@dataclass
class FactConfig:
    """Configuration of the whole FACT flow."""

    sched: SchedConfig = field(default_factory=SchedConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    partition_threshold: float = 0.1
    focus_on_hot_blocks: bool = True
    vdd: float = 5.0
    vt: float = 1.0


@dataclass
class FactResult:
    """Everything produced by one optimization run."""

    objective: str
    initial: Evaluated
    best: Evaluated
    search: SearchResult
    profile: Optional[Profile] = None
    hot_nodes: Optional[Set[int]] = None

    @property
    def telemetry(self):
        """Per-generation engine telemetry of the underlying search."""
        return self.search.telemetry

    @property
    def cache_stats(self):
        """Evaluation-cache counters (hits / misses / evictions /
        ``hit_rate``) of the run, or None if telemetry was disabled.

        The convenience accessor for what used to require reaching
        into engine internals; the same
        :class:`~repro.core.evalcache.CacheStats` type reports the
        explorer's on-disk run store.
        """
        if self.search.telemetry is None:
            return None
        return self.search.telemetry.cache

    # -- throughput metrics --------------------------------------------
    @property
    def initial_length(self) -> float:
        assert self.initial.result is not None
        return self.initial.result.average_length()

    @property
    def best_length(self) -> float:
        assert self.best.result is not None
        return self.best.result.average_length()

    def throughput_x1000(self, of_initial: bool = False) -> float:
        """The paper's Table-2 metric: cycles⁻¹ × 1000."""
        length = self.initial_length if of_initial else self.best_length
        return 1000.0 / length

    @property
    def speedup(self) -> float:
        return self.initial_length / self.best_length

    # -- power metrics ---------------------------------------------------
    def power_report(self, library: Library,
                     cycle_time: float = 1.0) -> Dict[str, float]:
        """Initial vs optimized power, with Vdd scaling for the latter."""
        assert self.initial.result is not None
        assert self.best.result is not None
        base_len = self.initial_length
        init_est = estimate_power(self.initial.result.stg,
                                  self.initial.result.behavior.graph,
                                  library, vdd=5.0,
                                  cycle_time=cycle_time)
        best_est = estimate_power(self.best.result.stg,
                                  self.best.result.behavior.graph,
                                  library, vdd=5.0, cycle_time=cycle_time)
        vdd = scaled_vdd_for_schedule(min(self.best_length, base_len),
                                      base_len)
        best_power = (best_est.total_energy * vdd ** 2
                      / (max(base_len, self.best_length) * cycle_time))
        return {
            "initial_power": init_est.power,
            "optimized_power": best_power,
            "scaled_vdd": vdd,
            "reduction": 1.0 - best_power / init_est.power
            if init_est.power > 0 else 0.0,
        }


class Fact:
    """The FACT optimizer: transformations guided by scheduling."""

    def __init__(self, library: Optional[Library] = None,
                 transforms: Optional[TransformLibrary] = None,
                 config: Optional[FactConfig] = None,
                 region_caches: Optional[
                     Dict[str, RegionScheduleCache]] = None,
                 trace: Optional[AnyTracer] = None,
                 numeric_backend: Optional[str] = None) -> None:
        self.library = library or dac98_library()
        self.transforms = transforms or default_library()
        self.config = config or FactConfig()
        if numeric_backend is not None:
            # Convenience override: ``Fact(numeric_backend="batched")``
            # without building a full config tree.
            self.config = replace(
                self.config,
                search=replace(self.config.search,
                               numeric_backend=numeric_backend))
        #: tracer threaded through every run of this instance (see
        #: docs/observability.md); None/NULL_TRACER disables tracing.
        self.tracer: AnyTracer = trace if trace is not None \
            else NULL_TRACER
        # Region-schedule caches keyed by evaluation context, shared by
        # every run of this Fact instance: objectives are not part of
        # the region-cache namespace, so e.g. a Table-2 throughput run
        # warms the cache for the matching power run.  A caller owning a
        # wider scope (the Pareto explorer) can pass its own registry so
        # warm-start searches and the main exploration share schedules.
        self._region_caches: Dict[str, RegionScheduleCache] = \
            region_caches if region_caches is not None else {}

    def _region_cache_for(self, allocation: Allocation,
                          branch_probs: Optional[BranchProbs]
                          ) -> Optional[RegionScheduleCache]:
        """The shared per-context cache (None when non-incremental)."""
        if not self.config.search.incremental:
            return None
        fp = context_fingerprint(self.library, allocation,
                                 self.config.sched, branch_probs)
        cache = self._region_caches.get(fp)
        if cache is None:
            cache = RegionScheduleCache(
                max_entries=self.config.search.region_cache_size,
                context_fp=fp)
            self._region_caches[fp] = cache
        return cache

    def optimize(self, behavior: Behavior, allocation: Allocation,
                 traces: Optional[TraceSet] = None,
                 objective: str = THROUGHPUT,
                 branch_probs: Optional[BranchProbs] = None
                 ) -> FactResult:
        """Run the full FACT flow on ``behavior``.

        Args:
            behavior: the input CDFG + regions.
            allocation: functional-unit allocation constraints.
            traces: typical input traces for profiling (optional if
                ``branch_probs`` is supplied or defaults suffice).
            objective: ``"throughput"`` or ``"power"``.
            branch_probs: precomputed branch probabilities (skip
                profiling).
        """
        tracer = self.tracer
        # Install the configured numeric backend in this process; the
        # evaluation engine re-installs it in every pool worker.
        set_backend(self.config.search.numeric_backend)
        with tracer.span("optimize", behavior=behavior.name,
                         objective=objective) as span:
            prof: Optional[Profile] = None
            if branch_probs is None and traces is not None:
                with tracer.span("profile"):
                    prof = profile(behavior, traces)
                    branch_probs = dict(prof.branch_probs)

            region_cache = self._region_cache_for(allocation,
                                                  branch_probs)

            # Step 1: schedule the untransformed behavior (through the
            # shared region cache, so the search's evaluation of the
            # same behavior reuses every unit).
            initial_result = Scheduler(
                behavior, self.library, allocation, self.config.sched,
                branch_probs, region_cache=region_cache,
                tracer=tracer).schedule()

            if objective == POWER:
                obj = Objective(POWER,
                                baseline_length=initial_result
                                .average_length(),
                                vdd=self.config.vdd, vt=self.config.vt)
            elif objective == THROUGHPUT:
                obj = Objective(THROUGHPUT)
            else:
                raise SearchError(f"unknown objective {objective!r}")

            # Step 2/3: partition into hot blocks; focus the search
            # there.
            hot: Optional[Set[int]] = None
            if self.config.focus_on_hot_blocks:
                with tracer.span("partition") as part_span:
                    hot = hot_cdfg_nodes(
                        initial_result.stg,
                        self.config.partition_threshold,
                        visits=initial_result.expected_visits())
                    part_span.set(hot_nodes=len(hot))
                    if not hot:
                        hot = None

            with tracer.span("search") as search_span:
                search = TransformSearch(
                    self.transforms, self.library, allocation, obj,
                    sched_config=self.config.sched,
                    branch_probs=branch_probs,
                    config=self.config.search, hot_nodes=hot,
                    region_cache=region_cache, tracer=tracer)
                result = search.run(behavior)
                search_span.set(generations=result.generations,
                                best_score=result.best.score,
                                initial_score=result.initial.score)
            span.set(improvement=round(result.improvement, 6)
                     if result.improvement != float("inf") else None)
            return FactResult(objective=objective,
                              initial=result.initial,
                              best=result.best, search=result,
                              profile=prof, hot_nodes=hot)

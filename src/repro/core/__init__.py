"""FACT's core: partitioning, the transformation search, the driver."""

from .fact import Fact, FactConfig, FactResult
from .objectives import POWER, THROUGHPUT, Objective
from .partition import (StgBlock, hot_cdfg_nodes, partition_stg,
                        relative_frequencies)
from .search import (Evaluated, SearchConfig, SearchResult,
                     TransformSearch)

__all__ = [
    "Evaluated", "Fact", "FactConfig", "FactResult", "Objective", "POWER",
    "SearchConfig", "SearchResult", "StgBlock", "THROUGHPUT",
    "TransformSearch", "hot_cdfg_nodes", "partition_stg",
    "relative_frequencies",
]

"""FACT's core: partitioning, the transformation search, the driver."""

from .engine import Evaluated, EvaluationEngine, resolve_workers
from .evalcache import CacheStats, EvalCache, behavior_fingerprint
from .fact import Fact, FactConfig, FactResult
from .objectives import POWER, THROUGHPUT, Objective
from .partition import (StgBlock, hot_cdfg_nodes, partition_stg,
                        relative_frequencies)
from .search import SearchConfig, SearchResult, TransformSearch
from .telemetry import EvalStats, GenerationRecord, SearchTelemetry

__all__ = [
    "CacheStats", "EvalCache", "EvalStats", "Evaluated",
    "EvaluationEngine", "Fact", "FactConfig", "FactResult",
    "GenerationRecord", "Objective", "POWER", "SearchConfig",
    "SearchResult", "SearchTelemetry", "StgBlock", "THROUGHPUT",
    "TransformSearch", "behavior_fingerprint", "hot_cdfg_nodes",
    "partition_stg", "relative_frequencies", "resolve_workers",
]

"""The candidate-evaluation engine behind ``Apply_transforms``.

The Figure-6 search spends virtually all of its time rescheduling and
scoring candidate behaviors.  :class:`EvaluationEngine` centralizes that
work behind one interface so the search loop never schedules inline:

* **memoization** — every behavior is fingerprinted
  (:func:`repro.core.evalcache.behavior_fingerprint`, invariant under
  node renumbering) and scored at most once per run; identical
  candidates produced by different lineages — extremely common with
  commutativity/associativity moves — are served from the
  :class:`~repro.core.evalcache.EvalCache`;
* **parallelism** — with ``workers >= 2`` (constructor argument, or the
  ``REPRO_WORKERS`` environment variable, or ``--workers`` on the CLI)
  each generation's ``Behavior_set`` fans out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Results are assembled in
  submission order and the scheduler itself is deterministic, so seeded
  runs are reproducible bit-for-bit regardless of backend;
* **graceful fallback** — ``workers`` of 0/1, or an environment where
  worker processes cannot be spawned, degrades to the serial in-process
  backend with identical results.

Scoring adds the same tiny datapath-cost tie-break the search has
always used, so among schedule-equivalent candidates the one that sheds
operations ranks first (multi-step improvements survive selection even
when their first step alone does not shorten the schedule).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import astuple, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cdfg.ir import _digest
from ..cdfg.regions import Behavior
from ..errors import ReproError, SearchError
from ..hw import Allocation, Library
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.types import BranchProbs, ResourceModel, SchedConfig
from .evalcache import CacheStats, EvalCache, behavior_fingerprint
from .objectives import Objective

#: Weight of the datapath-size tie-break added to every score.
TIEBREAK = 1e-7

#: Environment knob consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class Evaluated:
    """A behavior with its schedule and score."""

    behavior: Behavior
    result: Optional[ScheduleResult]
    score: float
    lineage: Tuple[str, ...] = ()


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else 0.

    0 and 1 both mean the serial backend; ``n >= 2`` means a process
    pool of ``n`` workers.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 0
        try:
            workers = int(env)
        except ValueError:
            raise SearchError(
                f"{WORKERS_ENV} must be an integer, got {env!r}") from None
    if workers < 0:
        raise SearchError(f"worker count must be >= 0, got {workers}")
    return workers


# ---------------------------------------------------------------------------
# Scoring (runs in the main process or in pool workers)
# ---------------------------------------------------------------------------

@dataclass
class _EvalContext:
    """Everything fixed across one run, shipped once per worker."""

    library: Library
    allocation: Allocation
    sched_config: SchedConfig
    branch_probs: Optional[BranchProbs]
    objective: Objective


def context_fingerprint(library: Library, allocation: Allocation,
                        sched_config: SchedConfig,
                        branch_probs: Optional[BranchProbs] = None,
                        objective: Optional[Objective] = None) -> str:
    """Digest of everything fixed across one evaluation context.

    Two contexts with the same fingerprint schedule any given behavior
    identically; the engine's memoization keys and the exploration
    subsystem's on-disk run store both namespace behavior fingerprints
    with this.  ``objective`` is optional because the disk store keeps
    objective-independent raw metrics (schedule length, energy, area).
    """
    parts = [
        library.name,
        repr(sorted((k, v.delay, v.energy, v.area)
                    for k, v in library.fu_types.items())),
        repr(sorted((k.value, v) for k, v in library.selection.items())),
        repr((library.register.delay, library.register.energy,
              library.memory.delay, library.memory.energy,
              library.overhead_factor)),
        repr(sorted(allocation.counts.items())),
        repr(astuple(sched_config)),
        repr(sorted(branch_probs.items()) if branch_probs else None),
    ]
    if objective is not None:
        parts.append(repr((objective.kind, objective.baseline_length,
                           objective.vdd, objective.vt,
                           objective.cycle_time)))
    return _digest("|".join(parts).encode()).hexdigest()


def _datapath_cost(behavior: Behavior, library: Library,
                   allocation: Allocation) -> float:
    """Σ of FU delays over the graph — a static size proxy."""
    rm = ResourceModel(behavior.graph, library, allocation)
    return sum(rm.delay_of(nid) for nid in behavior.graph.node_ids())


def _score_one(ctx: _EvalContext, behavior: Behavior
               ) -> Tuple[Optional[ScheduleResult], float]:
    """Schedule and score one behavior ((None, inf) if unschedulable)."""
    try:
        result = Scheduler(behavior, ctx.library, ctx.allocation,
                           ctx.sched_config, ctx.branch_probs).schedule()
        score = ctx.objective.evaluate(result)
        score += TIEBREAK * _datapath_cost(behavior, ctx.library,
                                           ctx.allocation)
    except ReproError:
        return None, float("inf")
    return result, score


_WORKER_CTX: Optional[_EvalContext] = None


def _init_worker(ctx: _EvalContext) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _eval_worker(behavior: Behavior
                 ) -> Tuple[Optional[ScheduleResult], float]:
    assert _WORKER_CTX is not None, "worker used before initialization"
    return _score_one(_WORKER_CTX, behavior)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class EvaluationEngine:
    """Memoized, optionally parallel scheduling + scoring of behaviors.

    One engine serves one search run: the library, allocation, scheduler
    configuration, branch probabilities and objective are fixed at
    construction (they namespace the cache keys), and only behaviors
    vary per call.  Use as a context manager, or call :meth:`close`, to
    release pool workers.
    """

    def __init__(self, library: Library, allocation: Allocation,
                 objective: Objective,
                 sched_config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None, *,
                 workers: Optional[int] = None,
                 cache_size: int = 4096) -> None:
        self._ctx = _EvalContext(library, allocation,
                                 sched_config or SchedConfig(),
                                 branch_probs, objective)
        self.workers = resolve_workers(workers)
        self.cache = EvalCache(max_entries=cache_size)
        #: total evaluation requests (cache hits included)
        self.requests = 0
        self._pool: Optional[Executor] = None
        self._pool_broken = False
        self._context_fp = self._fingerprint_context()

    # -- cache keys -----------------------------------------------------
    def _fingerprint_context(self) -> str:
        ctx = self._ctx
        return context_fingerprint(ctx.library, ctx.allocation,
                                   ctx.sched_config, ctx.branch_probs,
                                   ctx.objective)

    def key_for(self, behavior: Behavior) -> str:
        """Cache key of ``behavior`` under this engine's fixed context."""
        return _digest((self._context_fp + ":"
                        + behavior_fingerprint(behavior)).encode()
                       ).hexdigest()

    # -- statistics -----------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def backend(self) -> str:
        return "process" if self.workers >= 2 and not self._pool_broken \
            else "serial"

    # -- evaluation -----------------------------------------------------
    def evaluate(self, behavior: Behavior,
                 lineage: Tuple[str, ...] = ()) -> Evaluated:
        """Score one behavior (through the cache, always in-process)."""
        return self.evaluate_batch([(behavior, lineage)])[0]

    def evaluate_batch(self, pairs: Sequence[Tuple[Behavior,
                                                   Tuple[str, ...]]]
                       ) -> List[Evaluated]:
        """Score a generation, preserving input order.

        Cache hits (including duplicates *within* the batch) are served
        without scheduling; the remaining unique behaviors run on the
        serial or process backend.  The returned list lines up with
        ``pairs`` index-for-index, so seeded searches see identical
        generations whichever backend ran.
        """
        self.requests += len(pairs)
        outputs: List[Optional[Evaluated]] = [None] * len(pairs)
        if self.cache.max_entries <= 0:
            # Cache disabled: skip fingerprinting entirely (this is the
            # pre-engine code path, used as the benchmark baseline).
            self.cache.stats.misses += len(pairs)
            scored = self._score_batch([b for b, _ in pairs])
            return [Evaluated(b, result, score, lineage)
                    for (b, lineage), (result, score)
                    in zip(pairs, scored)]
        # key -> indices into `pairs` awaiting that evaluation
        pending: Dict[str, List[int]] = {}
        order: List[str] = []
        for i, (behavior, lineage) in enumerate(pairs):
            key = self.key_for(behavior)
            if key in pending:
                # Duplicate within this batch: merged, counts as a hit.
                self.cache.stats.hits += 1
                pending[key].append(i)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                result, score = cached
                outputs[i] = Evaluated(behavior, result, score, lineage)
            else:
                pending[key] = [i]
                order.append(key)
        if pending:
            firsts = [pairs[pending[key][0]][0] for key in order]
            scored = self._score_batch(firsts)
            for key, (result, score) in zip(order, scored):
                self.cache.put(key, (result, score))
                for i in pending[key]:
                    behavior, lineage = pairs[i]
                    outputs[i] = Evaluated(behavior, result, score,
                                           lineage)
        assert all(e is not None for e in outputs)
        return outputs  # type: ignore[return-value]

    def _score_batch(self, behaviors: List[Behavior]
                     ) -> List[Tuple[Optional[ScheduleResult], float]]:
        if len(behaviors) >= 2 and self.workers >= 2:
            pool = self._ensure_pool()
            if pool is not None:
                chunk = max(1, len(behaviors) // (self.workers * 4))
                return list(pool.map(_eval_worker, behaviors,
                                     chunksize=chunk))
        return [_score_one(self._ctx, b) for b in behaviors]

    def _ensure_pool(self) -> Optional[Executor]:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_init_worker,
                    initargs=(self._ctx,))
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing here: stay serial.
                self._pool_broken = True
        return self._pool

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down pool workers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The candidate-evaluation engine behind ``Apply_transforms``.

The Figure-6 search spends virtually all of its time rescheduling and
scoring candidate behaviors.  :class:`EvaluationEngine` centralizes that
work behind one interface so the search loop never schedules inline:

* **memoization** — every behavior is fingerprinted
  (:func:`repro.core.evalcache.behavior_fingerprint`, invariant under
  node renumbering) and scored at most once per run; identical
  candidates produced by different lineages — extremely common with
  commutativity/associativity moves — are served from the
  :class:`~repro.core.evalcache.EvalCache`;
* **parallelism** — with ``workers >= 2`` (constructor argument, or the
  ``REPRO_WORKERS`` environment variable, or ``--workers`` on the CLI)
  each generation's ``Behavior_set`` fans out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Results are assembled in
  submission order and the scheduler itself is deterministic, so seeded
  runs are reproducible bit-for-bit regardless of backend;
* **graceful fallback** — ``workers`` of 0/1, or an environment where
  worker processes cannot be spawned, degrades to the serial in-process
  backend with identical results.

Scoring adds the same tiny datapath-cost tie-break the search has
always used, so among schedule-equivalent candidates the one that sheds
operations ranks first (multi-step improvements survive selection even
when their first step alone does not shorten the schedule).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (FIRST_COMPLETED, Executor, Future,
                                ProcessPoolExecutor, wait)
from dataclasses import astuple, dataclass
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from ..cdfg.ir import _digest
from ..cdfg.regions import Behavior
from ..errors import ReproError, SearchError
from ..hw import Allocation, Library
from ..numeric import get_backend, set_backend
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, AnyTracer, Tracer
from ..stg import markov as _markov
from ..sched.driver import ScheduleResult, Scheduler, resolve_visits
from ..sched.regioncache import RegionScheduleCache
from ..sched.types import BranchProbs, ResourceModel, SchedConfig
from ..stream import AdmissionPolicy, StreamStats
from .evalcache import CacheStats, EvalCache, cached_fingerprint
from .objectives import Objective
from .telemetry import EvalStats

#: Weight of the datapath-size tie-break added to every score.
TIEBREAK = 1e-7

#: Environment knob consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class Evaluated:
    """A behavior with its schedule and score.

    ``stats`` carries the incremental-evaluation counters of the
    scheduling that produced this result; it is ``None`` for candidates
    served from the behavior-level cache (no scheduling happened).
    """

    behavior: Behavior
    result: Optional[ScheduleResult]
    score: float
    lineage: Tuple[str, ...] = ()
    stats: Optional[EvalStats] = None


class EvalBudget:
    """A cap on *real* evaluation work, metered on one engine.

    The currency is ``EvalStats.scheduled`` — candidates that actually
    went through the scheduler.  Cache hits are free: a budgeted search
    is charged for the work it causes, not the candidates it looks at,
    which is what makes budget comparisons fair between strategies that
    share the memoization cache (a portfolio member rediscovering
    another's candidate pays nothing).  ``limit=None`` never exhausts.

    Budgets snapshot the engine's counter at construction, so stacking
    several sequential searches on one engine each against their own
    budget works.
    """

    def __init__(self, engine: "EvaluationEngine",
                 limit: Optional[int] = None) -> None:
        self.engine = engine
        self.limit = limit
        self._start = engine.eval_stats.scheduled

    @property
    def spent(self) -> int:
        """Scheduled evaluations since this budget was created."""
        return self.engine.eval_stats.scheduled - self._start

    @property
    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit


@dataclass
class _Deferred:
    """A candidate scheduled with its visit resolution still pending.

    Produced by :meth:`EvaluationEngine._defer_one`; consumed (flushed,
    spliced and scored) by :meth:`EvaluationEngine._resolve_deferred`.
    """

    behavior: Behavior
    key: Optional[str]
    span: object
    stats: EvalStats
    pending: Optional[object]
    result: Optional[ScheduleResult]
    error: Optional[ReproError]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else 0.

    0 and 1 both mean the serial backend; ``n >= 2`` means a process
    pool of ``n`` workers.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 0
        try:
            workers = int(env)
        except ValueError:
            raise SearchError(
                f"{WORKERS_ENV} must be an integer, got {env!r}") from None
    if workers < 0:
        raise SearchError(f"worker count must be >= 0, got {workers}")
    return workers


# ---------------------------------------------------------------------------
# Scoring (runs in the main process or in pool workers)
# ---------------------------------------------------------------------------

@dataclass
class _EvalContext:
    """Everything fixed across one run, shipped once per worker.

    ``traced`` is a plain bool, never a tracer object: each worker
    builds its own process-local :class:`~repro.obs.trace.Tracer` and
    ships finished spans home with each result (tracers don't pickle,
    and sharing one across processes would be meaningless anyway).
    """

    library: Library
    allocation: Allocation
    sched_config: SchedConfig
    branch_probs: Optional[BranchProbs]
    objective: Objective
    incremental: bool = True
    region_cache_size: int = 4096
    traced: bool = False
    #: numeric backend name; installed per process (see _init_worker).
    numeric_backend: str = "scalar"

    def make_region_cache(self) -> Optional[RegionScheduleCache]:
        """A region-schedule cache bound to this context.

        ``incremental=False`` returns None: the scheduler then takes the
        plain in-place walk with one full Markov solve per candidate —
        the full-evaluation baseline this feature is measured against.
        (A ``max_entries=0`` cache, which runs the build-and-splice path
        without storing anything, is still available for equivalence
        testing via :class:`~repro.sched.Scheduler` directly.)
        """
        if not self.incremental:
            return None
        return RegionScheduleCache(
            max_entries=self.region_cache_size,
            context_fp=context_fingerprint(
                self.library, self.allocation, self.sched_config,
                self.branch_probs))


def context_fingerprint(library: Library, allocation: Allocation,
                        sched_config: SchedConfig,
                        branch_probs: Optional[BranchProbs] = None,
                        objective: Optional[Objective] = None) -> str:
    """Digest of everything fixed across one evaluation context.

    Two contexts with the same fingerprint schedule any given behavior
    identically; the engine's memoization keys and the exploration
    subsystem's on-disk run store both namespace behavior fingerprints
    with this.  ``objective`` is optional because the disk store keeps
    objective-independent raw metrics (schedule length, energy, area).
    """
    parts = [
        library.name,
        repr(sorted((k, v.delay, v.energy, v.area)
                    for k, v in library.fu_types.items())),
        repr(sorted((k.value, v) for k, v in library.selection.items())),
        repr((library.register.delay, library.register.energy,
              library.memory.delay, library.memory.energy,
              library.overhead_factor)),
        repr(sorted(allocation.counts.items())),
        repr(astuple(sched_config)),
        repr(sorted(branch_probs.items()) if branch_probs else None),
    ]
    if objective is not None:
        parts.append(repr((objective.kind, objective.baseline_length,
                           objective.vdd, objective.vt,
                           objective.cycle_time)))
    return _digest("|".join(parts).encode()).hexdigest()


def _datapath_cost(behavior: Behavior, library: Library,
                   allocation: Allocation) -> float:
    """Σ of FU delays over the graph — a static size proxy."""
    rm = ResourceModel(behavior.graph, library, allocation)
    return sum(rm.delay_of(nid) for nid in behavior.graph.node_ids())


def _counters_before(region_cache: Optional[RegionScheduleCache],
                     numeric) -> Tuple:
    """Snapshot of every per-candidate counter source."""
    return (region_cache.snapshot() if region_cache is not None else None,
            numeric.snapshot(), numeric.solve_seconds)


def _accrue_counters(stats: EvalStats, before: Tuple,
                     region_cache: Optional[RegionScheduleCache],
                     numeric) -> None:
    """Add the counter deltas since ``before`` onto ``stats``."""
    cache_before, nb_before, seconds_before = before
    nb_after = numeric.snapshot()
    stats.numeric_flushes += nb_after[0] - nb_before[0]
    stats.numeric_batched += nb_after[1] - nb_before[1]
    stats.numeric_seconds += numeric.solve_seconds - seconds_before
    if region_cache is None or cache_before is None:
        return
    after = region_cache.snapshot()
    stats.region_hits += after[0] - cache_before[0]
    stats.region_requests += ((after[0] - cache_before[0])
                              + (after[1] - cache_before[1]))
    stats.markov_local += after[2] - cache_before[2]
    stats.markov_reused += after[3] - cache_before[3]
    stats.markov_full += after[4] - cache_before[4]
    stats.solver_time += after[5] - cache_before[5]
    stats.states_built += after[6] - cache_before[6]
    stats.states_reused += after[7] - cache_before[7]
    stats.region_evictions += after[8] - cache_before[8]


def _set_result_attrs(span, score: float, stats: EvalStats) -> None:
    # inf is not valid JSON; unschedulable candidates carry the
    # `unschedulable` attribute instead of a score.
    span.set(score=score if score != float("inf") else None,
             region_hits=stats.region_hits,
             states_built=stats.states_built,
             states_reused=stats.states_reused,
             reschedule_fraction=round(stats.reschedule_fraction, 4))


def _score_one(ctx: _EvalContext, behavior: Behavior,
               region_cache: Optional[RegionScheduleCache],
               tracer: AnyTracer = NULL_TRACER,
               key: Optional[str] = None
               ) -> Tuple[Optional[ScheduleResult], float, EvalStats]:
    """Schedule and score one behavior ((None, inf, ...) if
    unschedulable).  The returned :class:`EvalStats` is the per-candidate
    delta of the region cache's counters (picklable, so pool workers can
    ship it home); with no cache (the full-evaluation baseline) it
    records the candidate's full state count as built-from-scratch."""
    with tracer.span("evaluate", cache="miss") as span:
        if key is not None:
            span.set(candidate=key[:16])
        numeric = get_backend()
        before = _counters_before(region_cache, numeric)
        stats = EvalStats(scheduled=1)
        t0 = time.perf_counter()
        try:
            result = Scheduler(behavior, ctx.library, ctx.allocation,
                               ctx.sched_config, ctx.branch_probs,
                               region_cache=region_cache,
                               tracer=tracer).schedule()
            score = ctx.objective.evaluate(result)
            score += TIEBREAK * _datapath_cost(behavior, ctx.library,
                                               ctx.allocation)
        except ReproError as err:
            result, score = None, float("inf")
            span.set(unschedulable=type(err).__name__)
        stats.sched_time = time.perf_counter() - t0
        _accrue_counters(stats, before, region_cache, numeric)
        if region_cache is None and result is not None:
            stats.states_built = len(result.stg.states)
        _set_result_attrs(span, score, stats)
        return result, score, stats


_WORKER_CTX: Optional[_EvalContext] = None
_WORKER_REGION_CACHE: Optional[RegionScheduleCache] = None
_WORKER_TRACER: AnyTracer = NULL_TRACER


def _init_worker(ctx: _EvalContext) -> None:
    global _WORKER_CTX, _WORKER_REGION_CACHE, _WORKER_TRACER
    _WORKER_CTX = ctx
    # Each worker keeps its own region cache for the whole run; it stays
    # warm across generations (units are keyed by content, not lineage).
    _WORKER_REGION_CACHE = ctx.make_region_cache()
    # Each traced worker records into its own tracer and ships the
    # finished spans home with every result (see _eval_worker); the
    # parent re-parents them under its open span via Tracer.adopt.
    _WORKER_TRACER = Tracer() if ctx.traced else NULL_TRACER
    _markov.set_tracer(_WORKER_TRACER)
    # Like the tracer, the numeric backend is process-local state: each
    # worker installs its own instance (the counters it accumulates are
    # shipped home per candidate via EvalStats).
    set_backend(ctx.numeric_backend)


def _eval_worker(behavior: Behavior
                 ) -> Tuple[Tuple[Optional[ScheduleResult], float,
                                  EvalStats],
                            Tuple[Dict[str, object], ...]]:
    assert _WORKER_CTX is not None, "worker used before initialization"
    scored = _score_one(_WORKER_CTX, behavior, _WORKER_REGION_CACHE,
                        _WORKER_TRACER)
    return scored, _WORKER_TRACER.drain_payload()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class EvaluationEngine:
    """Memoized, optionally parallel scheduling + scoring of behaviors.

    One engine serves one search run: the library, allocation, scheduler
    configuration, branch probabilities and objective are fixed at
    construction (they namespace the cache keys), and only behaviors
    vary per call.  Use as a context manager, or call :meth:`close`, to
    release pool workers.
    """

    def __init__(self, library: Library, allocation: Allocation,
                 objective: Objective,
                 sched_config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None, *,
                 workers: Optional[int] = None,
                 cache_size: int = 4096,
                 incremental: bool = True,
                 region_cache_size: int = 4096,
                 region_cache: Optional[RegionScheduleCache] = None,
                 numeric_backend: str = "scalar",
                 tracer: Optional[AnyTracer] = None
                 ) -> None:
        self.tracer: AnyTracer = tracer if tracer is not None \
            else NULL_TRACER
        self._ctx = _EvalContext(library, allocation,
                                 sched_config or SchedConfig(),
                                 branch_probs, objective,
                                 incremental=incremental,
                                 region_cache_size=region_cache_size,
                                 traced=bool(self.tracer.enabled),
                                 numeric_backend=numeric_backend)
        # Installed for this process too (the serial backend and batch
        # leftovers evaluate inline); resolve_backend falls back to
        # scalar when batching prerequisites are missing.
        set_backend(numeric_backend)
        self.workers = resolve_workers(workers)
        self.cache = EvalCache(max_entries=cache_size)
        #: (parent raw fingerprint × match fingerprint) -> behavior
        #: cache key.  Applying one match to one parent is
        #: deterministic, so the pair resolves a child's key without
        #: re-fingerprinting its graph (see _key_with_provenance).
        self._pair_keys = EvalCache(max_entries=cache_size)
        if region_cache is not None and incremental:
            # Externally shared cache (e.g. the Fact driver's per-context
            # registry): unit schedules survive across engines — and
            # across whole searches — as long as the evaluation context
            # matches.  Objectives are deliberately absent from the
            # region-cache namespace, so a throughput run warms the
            # cache for a subsequent power run.
            expected = context_fingerprint(library, allocation,
                                           sched_config or SchedConfig(),
                                           branch_probs)
            if region_cache.context_fp != expected:
                raise SearchError(
                    "region_cache was built for a different evaluation "
                    "context (library/allocation/schedule-config/"
                    "branch-probs mismatch)")
            self._region_cache: Optional[RegionScheduleCache] = \
                region_cache
        else:
            self._region_cache = self._ctx.make_region_cache()
        #: aggregated incremental-evaluation counters (all backends)
        self.eval_stats = EvalStats()
        #: streaming-pipeline counters (populated by evaluate_stream)
        self.stream_stats = StreamStats()
        #: total evaluation requests (cache hits included)
        self.requests = 0
        self._pool: Optional[Executor] = None
        self._pool_broken = False
        #: detached speculative futures left running across stream
        #: boundaries, keyed like the evaluation cache (see
        #: :meth:`evaluate_stream` on the detach protocol)
        self._carried: Dict[str, Future] = {}
        self._context_fp = self._fingerprint_context()
        if self.tracer.enabled:
            # markov.solve spans come from deep inside the scheduler;
            # the hook is per process (workers install their own).
            _markov.set_tracer(self.tracer)

    # -- cache keys -----------------------------------------------------
    def _fingerprint_context(self) -> str:
        ctx = self._ctx
        return context_fingerprint(ctx.library, ctx.allocation,
                                   ctx.sched_config, ctx.branch_probs,
                                   ctx.objective)

    def key_for(self, behavior: Behavior) -> str:
        """Cache key of ``behavior`` under this engine's fixed context."""
        return _digest((self._context_fp + ":"
                        + cached_fingerprint(behavior)).encode()
                       ).hexdigest()

    def _key_with_provenance(self, behavior: Behavior) -> str:
        """Behavior cache key, through the rewrite pair index if it
        applies.

        Children produced by :meth:`repro.rewrite.driver.RewriteDriver
        .apply` carry ``_rw_pair`` — the parent's raw fingerprint and
        the applied match's fingerprint.  The same match applied to the
        same parent always yields the same child, so a remembered pair
        resolves the key without hashing the child's whole graph (the
        dominant fingerprinting cost once seeds persist across
        generations).
        """
        pair = getattr(behavior, "_rw_pair", None)
        if pair is None:
            return self.key_for(behavior)
        pkey = pair[0] + ":" + pair[1]
        known = self._pair_keys.get(pkey)
        if known is not None:
            return known
        key = self.key_for(behavior)
        self._pair_keys.put(pkey, key)
        return key

    # -- statistics -----------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def metrics_registry(self) -> MetricsRegistry:
        """Unified metrics view of everything this engine has done.

        Built from the engine-level cache stats (parent-process state)
        and the *aggregated* :attr:`eval_stats` — the per-candidate
        deltas every backend ships home — so the totals are consistent
        between serial and process-pool runs.  Reading counters off
        ``self._region_cache`` directly would under-report under the
        pool backend (each worker owns a private region cache).
        """
        reg = MetricsRegistry()
        reg.set("engine.workers", self.workers)
        reg.inc("engine.requests", self.requests)
        reg.absorb_cache_stats("engine.cache", self.cache.stats)
        reg.absorb_cache_stats("engine.pair_keys", self._pair_keys.stats)
        reg.absorb_eval_stats(self.eval_stats)
        if self.stream_stats.enqueued:
            reg.absorb_stream_stats(self.stream_stats)
        return reg

    @property
    def backend(self) -> str:
        return "process" if self.workers >= 2 and not self._pool_broken \
            else "serial"

    def budget(self, limit: Optional[int] = None) -> EvalBudget:
        """A fresh :class:`EvalBudget` metering this engine from now."""
        return EvalBudget(self, limit)

    # -- evaluation -----------------------------------------------------
    def evaluate(self, behavior: Behavior,
                 lineage: Tuple[str, ...] = ()) -> Evaluated:
        """Score one behavior (through the cache, always in-process)."""
        return self.evaluate_batch([(behavior, lineage)])[0]

    def evaluate_batch(self, pairs: Sequence[Tuple[Behavior,
                                                   Tuple[str, ...]]]
                       ) -> List[Evaluated]:
        """Score a generation, preserving input order.

        Cache hits (including duplicates *within* the batch) are served
        without scheduling; the remaining unique behaviors run on the
        serial or process backend.  The returned list lines up with
        ``pairs`` index-for-index, so seeded searches see identical
        generations whichever backend ran.
        """
        self.requests += len(pairs)
        with self.tracer.span("evaluate.batch", size=len(pairs)) as span:
            outputs = self._evaluate_batch(pairs, span)
        return outputs

    def evaluate_stream(self, pairs: Iterable[Tuple[Behavior,
                                                    Tuple[str, ...]]],
                        *, policy: Optional[AdmissionPolicy] = None,
                        stats: Optional[StreamStats] = None
                        ) -> Iterator[Tuple[int, Evaluated]]:
        """Score candidates as a stream, yielding in completion order.

        The streaming twin of :meth:`evaluate_batch`: ``pairs`` may be
        any iterable (a lazy generator works — it is consumed only as
        window slots free up, which is what lets a caller append
        speculative work once real work runs out), and results are
        yielded as ``(input_index, Evaluated)`` the moment they finish
        rather than behind a generation barrier.  Per-candidate outputs
        are byte-identical to the barrier path; only the yield order
        differs, and reassembling by index reproduces
        ``evaluate_batch(pairs)`` exactly.

        With the process backend, up to ``policy.effective_window``
        evaluations are in flight at once and the main process overlaps
        downstream work (measuring, store writes, front admission) with
        them.  Serially, the batched numeric backend defers Markov visit
        resolution and flushes dirty fragments opportunistically every
        ``policy.flush_size`` candidates — any flush composition is
        bit-identical (see :meth:`_score_generation`).

        Duplicates and cache hits are handled exactly like
        ``evaluate_batch``: an in-flight duplicate merges onto the first
        submission (a cache hit, stats-wise) and is yielded when its
        evaluation lands.

        Item protocol — ``pairs`` may interleave three item shapes:

        * ``(behavior, lineage)`` — ordinary work, indexed in arrival
          order (indices count work items only);
        * ``(behavior, lineage, True)`` — *detachable* (speculative)
          work: if such an evaluation is still running when every other
          item has finished, its future is stashed on the engine
          instead of being waited for, and a later ``evaluate_stream``
          on this engine adopts it mid-flight (or harvests its result
          into the evaluation cache).  A stream therefore never blocks
          on speculation.  Requires the evaluation cache (pool backend
          only; the flag is ignored serially, where nothing outlives
          the call);
        * ``None`` — "no work available *yet*": the stream stops
          topping up the window and re-pulls the source after the next
          completion.  A lazy source uses this to defer speculative
          decisions until more results have landed.  Yielding ``None``
          with nothing in flight is an error (the stream could never
          wake up again).
        """
        policy = policy if policy is not None else AdmissionPolicy()
        stats = stats if stats is not None else self.stream_stats
        source = iter(pairs)
        with self.tracer.span("evaluate.stream") as span:
            if self.workers >= 2:
                pool = self._ensure_pool()
                if pool is not None:
                    yield from self._stream_pool(source, pool, policy,
                                                 stats, span)
                    return
            yield from self._stream_serial(source, policy, stats, span)

    def _harvest_carried(self, stats: StreamStats) -> None:
        """Absorb finished carried-over (detached) evaluations.

        Called on stream entry: detached futures that completed between
        streams land in the evaluation cache, so this stream's
        duplicates hit instead of resubmitting.  Unfinished ones stay
        carried, available for mid-flight adoption.
        """
        for key, fut in list(self._carried.items()):
            if not fut.done():
                continue
            del self._carried[key]
            try:
                (result, score, st), payload = fut.result()
            except Exception:
                continue  # worker died mid-flight: just resubmit later
            self.eval_stats.add(st)
            if payload:
                self.tracer.adopt(payload,
                                  root_attrs={"candidate": key[:16]})
            self.cache.put(key, (result, score))
            stats.completed += 1

    def _stream_pool(self, source, pool: Executor,
                     policy: AdmissionPolicy, stats: StreamStats,
                     span) -> Iterator[Tuple[int, Evaluated]]:
        window = policy.effective_window(self.workers)
        use_cache = self.cache.max_entries > 0
        traced = self.tracer.enabled
        # future -> [key, [(input index, behavior, lineage), ...],
        #            detachable]
        inflight: Dict[Future, List] = {}
        by_key: Dict[str, Future] = {}
        n_items = n_hits = n_scheduled = 0
        next_i = 0
        exhausted = False
        self._harvest_carried(stats)
        while not exhausted or inflight:
            stalled = False
            while not exhausted and not stalled \
                    and len(inflight) < window:
                try:
                    item = next(source)
                except StopIteration:
                    exhausted = True
                    break
                if item is None:
                    # "No work yet": re-pull after the next completion.
                    if not inflight:
                        raise RuntimeError(
                            "stream source yielded None with nothing "
                            "in flight; the stream could never wake")
                    stalled = True
                    break
                behavior, lineage = item[0], item[1]
                detach = use_cache and len(item) > 2 and bool(item[2])
                i = next_i
                next_i += 1
                self.requests += 1
                stats.enqueued += 1
                n_items += 1
                key = None
                if use_cache:
                    key = self._key_with_provenance(behavior)
                    fut = by_key.get(key)
                    if fut is not None:
                        # Duplicate of an in-flight key: merged, counts
                        # as a hit (same as the barrier path).
                        self.cache.stats.hits += 1
                        stats.merged += 1
                        n_hits += 1
                        entry = inflight[fut]
                        entry[1].append((i, behavior, lineage))
                        if not detach:
                            # A real waiter pins a speculative future.
                            entry[2] = False
                        continue
                    cached = self.cache.get(key)
                    if cached is not None:
                        result, score = cached
                        stats.cache_hits += 1
                        n_hits += 1
                        if traced:
                            with self.tracer.span("evaluate") as hspan:
                                hspan.set(
                                    candidate=key[:16], cache="hit",
                                    score=score
                                    if score != float("inf") else None)
                        yield i, Evaluated(behavior, result, score,
                                           lineage)
                        continue
                else:
                    self.cache.stats.misses += 1
                fut = self._carried.pop(key, None) \
                    if key is not None else None
                if fut is not None:
                    # Adopt a carried-over speculative evaluation that
                    # is still in flight from an earlier stream.
                    stats.adopted += 1
                else:
                    fut = pool.submit(_eval_worker, behavior)
                    stats.submitted += 1
                inflight[fut] = [key, [(i, behavior, lineage)], detach]
                if key is not None:
                    by_key[key] = fut
                n_scheduled += 1
                if len(inflight) > stats.max_inflight:
                    stats.max_inflight = len(inflight)
            if exhausted and inflight \
                    and all(entry[2] for entry in inflight.values()):
                # Only detached speculative work is left: stash the
                # futures on the engine instead of waiting out the
                # tail.  A later stream adopts or harvests them; the
                # caller sees this stream end the moment its own work
                # is done.
                for fut, (key, _waiters, _d) in inflight.items():
                    self._carried[key] = fut
                    stats.carried += 1
                inflight.clear()
                by_key.clear()
                break
            if not inflight:
                continue
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for fut in done:
                key, waiters, _detach = inflight.pop(fut)
                if key is not None:
                    # Later duplicates now hit the evaluation cache.
                    by_key.pop(key, None)
                (result, score, st), payload = fut.result()
                self.eval_stats.add(st)
                if payload:
                    attrs = {"candidate": key[:16]} \
                        if key is not None else None
                    self.tracer.adopt(payload, root_attrs=attrs)
                if key is not None:
                    self.cache.put(key, (result, score))
                stats.completed += 1
                for j, (i, behavior, lineage) in enumerate(waiters):
                    yield i, Evaluated(behavior, result, score, lineage,
                                       st if j == 0 else None)
        span.set(size=n_items, cache_hits=n_hits, scheduled=n_scheduled)

    def _stream_serial(self, source, policy: AdmissionPolicy,
                       stats: StreamStats,
                       span) -> Iterator[Tuple[int, Evaluated]]:
        use_cache = self.cache.max_entries > 0
        traced = self.tracer.enabled
        numeric = get_backend()
        defer = numeric.batched and self._region_cache is not None
        flush_at = policy.effective_flush()
        buf: List[_Deferred] = []
        # waiters per buffer slot: [(input index, behavior, lineage)]
        metas: List[List] = []
        by_key: Dict[str, int] = {}
        n_items = n_hits = n_scheduled = 0

        def flush() -> List[Tuple[int, Evaluated]]:
            scored = self._resolve_deferred(buf)
            out: List[Tuple[int, Evaluated]] = []
            for entry, waiters, (result, score, st) in zip(buf, metas,
                                                           scored):
                if entry.key is not None:
                    self.cache.put(entry.key, (result, score))
                self.eval_stats.add(st)
                stats.completed += 1
                for j, (i, behavior, lineage) in enumerate(waiters):
                    out.append((i, Evaluated(behavior, result, score,
                                             lineage,
                                             st if j == 0 else None)))
            buf.clear()
            metas.clear()
            by_key.clear()
            stats.flushes += 1
            return out

        next_i = 0
        for item in source:
            if item is None:
                # Serially there is nothing to overlap with: a "not
                # yet" marker is just skipped (the source sees its own
                # state advance only through the results we yield).
                continue
            behavior, lineage = item[0], item[1]
            i = next_i
            next_i += 1
            self.requests += 1
            stats.enqueued += 1
            n_items += 1
            key = None
            if use_cache:
                key = self._key_with_provenance(behavior)
                pos = by_key.get(key)
                if pos is not None:
                    self.cache.stats.hits += 1
                    stats.merged += 1
                    n_hits += 1
                    metas[pos].append((i, behavior, lineage))
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    result, score = cached
                    stats.cache_hits += 1
                    n_hits += 1
                    if traced:
                        with self.tracer.span("evaluate") as hspan:
                            hspan.set(
                                candidate=key[:16], cache="hit",
                                score=score
                                if score != float("inf") else None)
                    yield i, Evaluated(behavior, result, score, lineage)
                    continue
            else:
                self.cache.stats.misses += 1
            stats.submitted += 1
            n_scheduled += 1
            if defer:
                buf.append(self._defer_one(behavior, key))
                metas.append([(i, behavior, lineage)])
                if key is not None:
                    by_key[key] = len(buf) - 1
                if len(buf) > stats.max_inflight:
                    stats.max_inflight = len(buf)
                if len(buf) >= flush_at:
                    yield from flush()
            else:
                result, score, st = _score_one(self._ctx, behavior,
                                               self._region_cache,
                                               self.tracer, key)
                if key is not None:
                    self.cache.put(key, (result, score))
                self.eval_stats.add(st)
                stats.completed += 1
                if stats.max_inflight < 1:
                    stats.max_inflight = 1
                yield i, Evaluated(behavior, result, score, lineage, st)
        if buf:
            yield from flush()
        span.set(size=n_items, cache_hits=n_hits, scheduled=n_scheduled)

    def _evaluate_batch(self, pairs: Sequence[Tuple[Behavior,
                                                    Tuple[str, ...]]],
                        span) -> List[Evaluated]:
        outputs: List[Optional[Evaluated]] = [None] * len(pairs)
        if self.cache.max_entries <= 0:
            # Cache disabled: skip fingerprinting entirely (this is the
            # pre-engine code path, used as the benchmark baseline).
            self.cache.stats.misses += len(pairs)
            scored = self._score_batch([b for b, _ in pairs])
            span.set(cache_hits=0, scheduled=len(pairs))
            return [Evaluated(b, result, score, lineage, st)
                    for (b, lineage), (result, score, st)
                    in zip(pairs, scored)]
        # key -> indices into `pairs` awaiting that evaluation
        pending: Dict[str, List[int]] = {}
        order: List[str] = []
        traced = self.tracer.enabled
        for i, (behavior, lineage) in enumerate(pairs):
            key = self._key_with_provenance(behavior)
            if key in pending:
                # Duplicate within this batch: merged, counts as a hit.
                self.cache.stats.hits += 1
                pending[key].append(i)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                result, score = cached
                outputs[i] = Evaluated(behavior, result, score, lineage)
                if traced:
                    with self.tracer.span("evaluate") as hit_span:
                        hit_span.set(
                            candidate=key[:16], cache="hit",
                            score=score
                            if score != float("inf") else None)
            else:
                pending[key] = [i]
                order.append(key)
        if pending:
            firsts = [pairs[pending[key][0]][0] for key in order]
            scored = self._score_batch(firsts, keys=order)
            for key, (result, score, st) in zip(order, scored):
                self.cache.put(key, (result, score))
                for i in pending[key]:
                    behavior, lineage = pairs[i]
                    outputs[i] = Evaluated(behavior, result, score,
                                           lineage,
                                           st if i == pending[key][0]
                                           else None)
        span.set(cache_hits=len(pairs) - len(pending),
                 scheduled=len(pending))
        assert all(e is not None for e in outputs)
        return outputs  # type: ignore[return-value]

    def _score_batch(self, behaviors: List[Behavior],
                     keys: Optional[List[str]] = None
                     ) -> List[Tuple[Optional[ScheduleResult], float,
                                     EvalStats]]:
        if len(behaviors) >= 2 and self.workers >= 2:
            pool = self._ensure_pool()
            if pool is not None:
                chunk = max(1, len(behaviors) // (self.workers * 4))
                shipped = list(pool.map(_eval_worker, behaviors,
                                        chunksize=chunk))
                scored = []
                for i, (triple, payload) in enumerate(shipped):
                    self.eval_stats.add(triple[2])
                    if payload:
                        attrs = {"candidate": keys[i][:16]} \
                            if keys is not None else None
                        self.tracer.adopt(payload, root_attrs=attrs)
                    scored.append(triple)
                return scored
        numeric = get_backend()
        if (numeric.batched and self._region_cache is not None
                and len(behaviors) >= 2):
            scored = self._score_generation(behaviors, keys)
        else:
            scored = [_score_one(self._ctx, b, self._region_cache,
                                 self.tracer,
                                 keys[i] if keys is not None else None)
                      for i, b in enumerate(behaviors)]
        for _result, _score, st in scored:
            self.eval_stats.add(st)
        return scored

    def _score_generation(self, behaviors: List[Behavior],
                          keys: Optional[List[str]]
                          ) -> List[Tuple[Optional[ScheduleResult], float,
                                          EvalStats]]:
        """Serial scoring with generation-deferred visit solves.

        The cross-candidate batch point of the batched numeric backend
        (`docs/performance.md`): every candidate is scheduled first with
        its final spliced-visit assembly deferred (:meth:`_defer_one`),
        then *all* candidates' dirty fragments are solved in one flush
        and each candidate is spliced and scored
        (:meth:`_resolve_deferred`).  Each sub-chain's solution is
        independent of its flushmates and fragments shared between
        candidates are solved once and memo-reused exactly as the
        sequential walk would have, so scores, STGs and visit totals are
        bit-identical to :func:`_score_one` — for *any* flush
        composition, which is why the streaming path may flush smaller
        opportunistic sub-batches through the very same helpers.
        """
        deferred = [self._defer_one(b, keys[i] if keys is not None
                                    else None)
                    for i, b in enumerate(behaviors)]
        return self._resolve_deferred(deferred)

    def _defer_one(self, behavior: Behavior,
                   key: Optional[str]) -> "_Deferred":
        """Schedule one behavior with its final visit assembly deferred.

        Phase 1 of the deferred-visits protocol: the scheduler runs with
        ``defer_visits=True`` and the resulting :class:`PendingVisits`
        is parked on the returned record until a later
        :meth:`_resolve_deferred` flushes it.
        """
        ctx, cache, tracer = self._ctx, self._region_cache, self.tracer
        numeric = get_backend()
        stats = EvalStats(scheduled=1)
        before = _counters_before(cache, numeric)
        t0 = time.perf_counter()
        pending = result = error = None
        with tracer.span("evaluate", cache="miss") as span:
            if key is not None:
                span.set(candidate=key[:16])
            try:
                scheduler = Scheduler(behavior, ctx.library,
                                      ctx.allocation, ctx.sched_config,
                                      ctx.branch_probs,
                                      region_cache=cache,
                                      tracer=tracer,
                                      defer_visits=True)
                result = scheduler.schedule()
                pending = scheduler.pending
            except ReproError as err:
                error = err
        stats.sched_time = time.perf_counter() - t0
        _accrue_counters(stats, before, cache, numeric)
        return _Deferred(behavior, key, span, stats, pending, result,
                         error)

    def _resolve_deferred(self, deferred: List["_Deferred"]
                          ) -> List[Tuple[Optional[ScheduleResult], float,
                                          EvalStats]]:
        """Flush and score a batch of deferred candidates (phases 2+3).

        One :func:`repro.sched.driver.resolve_visits` call solves every
        candidate's dirty fragments together; the communal flush's
        counters are booked as one extra batch-level record so
        aggregated totals stay exact.  Then each candidate is scored
        exactly as :func:`_score_one` would.
        """
        ctx, cache = self._ctx, self._region_cache
        numeric = get_backend()
        todo = [d for d in deferred
                if d.pending is not None and d.error is None]
        if todo:
            batch = EvalStats()
            before = _counters_before(cache, numeric)
            t0 = time.perf_counter()
            resolved = resolve_visits([d.pending for d in todo], cache)
            batch.sched_time = time.perf_counter() - t0
            _accrue_counters(batch, before, cache, numeric)
            self.eval_stats.add(batch)
            for d, err in zip(todo, resolved):
                if err is not None:
                    d.error = err
        scored: List[Tuple[Optional[ScheduleResult], float,
                           EvalStats]] = []
        for d in deferred:
            stats, span = d.stats, d.span
            before = _counters_before(cache, numeric)
            t0 = time.perf_counter()
            result, score = d.result, float("inf")
            if d.error is None and result is not None:
                try:
                    score = ctx.objective.evaluate(result)
                    score += TIEBREAK * _datapath_cost(
                        d.behavior, ctx.library, ctx.allocation)
                except ReproError as err:
                    d.error = err
            if d.error is not None:
                result, score = None, float("inf")
                span.set(unschedulable=type(d.error).__name__)
            stats.sched_time += time.perf_counter() - t0
            _accrue_counters(stats, before, cache, numeric)
            # The evaluate span closed after scheduling, but its attrs
            # stay writable until the tracer exports (see obs.trace).
            _set_result_attrs(span, score, stats)
            scored.append((result, score, stats))
        return scored

    def _ensure_pool(self) -> Optional[Executor]:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_init_worker,
                    initargs=(self._ctx,))
            except (OSError, ValueError, ImportError):
                # No usable multiprocessing here: stay serial.
                self._pool_broken = True
        return self._pool

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down pool workers (idempotent and exception-safe).

        Safe to call any number of times, including after a failed
        :meth:`_ensure_pool`; a shutdown that itself raises (e.g. a pool
        whose workers already died) is swallowed, leaving the engine in
        the serial-fallback state.
        """
        for fut in self._carried.values():
            fut.cancel()  # best effort; running futures just finish
        self._carried.clear()
        # The markov.solve hook is deliberately NOT reset here: nested
        # engines (a warm-start search inside an exploration run) share
        # one tracer, and the outer engine must keep receiving spans
        # after the inner one closes.  The next traced engine replaces
        # the hook; an untraced engine leaves it alone (spans recorded
        # into an already-exported tracer are simply never exported).
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown()
        except Exception:
            self._pool_broken = True

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The ``Apply_transforms`` search (paper Figure 6).

A population-based hybrid of iterative improvement and simulated
annealing:

* ``In_set`` holds the behaviors seeding the current generation;
* each generation applies every candidate transformation to every seed,
  forming ``Behavior_set``;
* every member is **rescheduled** and scored with the objective — this
  is where scheduling information guides transformation selection;
* members are ranked by score and a fixed-size subset is drawn with
  probability ratio ``e^(−k·rank_i) / e^(−k·rank_j)``; ``k`` grows
  linearly with the outer iteration, so early generations tolerate bad
  moves and later ones favor the best;
* the loop stops when an outer iteration fails to improve the best
  score (or a hard iteration cap is reached).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..cdfg.regions import Behavior
from ..errors import ReproError, ScheduleError, SearchError, TransformError
from ..hw import Allocation, Library
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.types import BranchProbs, SchedConfig
from ..transforms.base import Candidate, TransformLibrary
from .objectives import Objective


@dataclass
class SearchConfig:
    """Tuning knobs for ``Apply_transforms``.

    ``k(outer) = k0 + k_step × outer`` is the paper's monotonically
    increasing selection-pressure parameter.
    """

    max_outer_iters: int = 6
    max_moves: int = 2        # the paper's MAX_MOVES inner loop
    in_set_size: int = 3      # the fixed-size subset kept per move
    k0: float = 0.3
    k_step: float = 0.4
    max_candidates_per_seed: int = 64
    seed: int = 0


@dataclass
class Evaluated:
    """A behavior with its schedule and score."""

    behavior: Behavior
    result: Optional[ScheduleResult]
    score: float
    lineage: Tuple[str, ...] = ()


@dataclass
class SearchResult:
    """Outcome of one ``Apply_transforms`` run."""

    best: Evaluated
    initial: Evaluated
    generations: int = 0
    evaluated_count: int = 0
    history: List[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """initial score / best score (>1 means the search helped)."""
        if self.best.score <= 0:
            return float("inf")
        return self.initial.score / self.best.score


class TransformSearch:
    """Runs the Figure-6 loop over one behavior."""

    def __init__(self, transforms: TransformLibrary, library: Library,
                 allocation: Allocation, objective: Objective,
                 sched_config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None,
                 config: Optional[SearchConfig] = None,
                 hot_nodes: Optional[Set[int]] = None) -> None:
        self.transforms = transforms
        self.library = library
        self.allocation = allocation
        self.objective = objective
        self.sched_config = sched_config or SchedConfig()
        self.branch_probs = branch_probs
        self.config = config or SearchConfig()
        self.hot_nodes = hot_nodes
        self._rng = random.Random(self.config.seed)
        self._evaluations = 0
        self._fresh_from: Optional[int] = None

    # ------------------------------------------------------------------
    def evaluate(self, behavior: Behavior,
                 lineage: Tuple[str, ...] = ()) -> Evaluated:
        """Reschedule a behavior and score it (inf if unschedulable).

        A tiny datapath-cost tie-break is added to the objective so
        that, among schedule-equivalent candidates, the one that sheds
        operations ranks first — multi-step improvements (factor →
        hoist, strength-reduce → re-associate) then survive selection
        even when their first step alone does not shorten the schedule.
        """
        self._evaluations += 1
        try:
            result = Scheduler(behavior, self.library, self.allocation,
                               self.sched_config,
                               self.branch_probs).schedule()
            score = self.objective.evaluate(result)
            score += 1e-7 * self._datapath_cost(behavior)
        except ReproError:
            return Evaluated(behavior, None, float("inf"), lineage)
        return Evaluated(behavior, result, score, lineage)

    def _datapath_cost(self, behavior: Behavior) -> float:
        """Σ of FU delays over the graph — a static size proxy."""
        from ..sched.types import ResourceModel
        rm = ResourceModel(behavior.graph, self.library, self.allocation)
        return sum(rm.delay_of(nid) for nid in behavior.graph.node_ids())

    def run(self, behavior: Behavior) -> SearchResult:
        """Optimize ``behavior``; returns the best design found."""
        initial = self.evaluate(behavior)
        if initial.result is None:
            raise SearchError(
                "the input behavior itself cannot be scheduled under "
                "the given allocation")
        # Nodes created by rewrites get ids above the input's: they are
        # products of hot-region rewriting and stay in focus.
        self._fresh_from = max(behavior.graph.nodes, default=-1) + 1
        best = initial
        in_set: List[Evaluated] = [initial]
        history = [initial.score]
        outer = 0
        cfg = self.config
        while outer < cfg.max_outer_iters:
            improved = False
            for _move in range(cfg.max_moves):
                generation = self._expand(in_set)
                if not generation:
                    break
                generation.sort(key=lambda e: e.score)
                if generation[0].score < best.score - 1e-9:
                    best = generation[0]
                    improved = True
                history.append(best.score)
                k = cfg.k0 + cfg.k_step * outer
                in_set = self._select(generation, k)
            outer += 1
            if not improved:
                break
        return SearchResult(best=best, initial=initial, generations=outer,
                            evaluated_count=self._evaluations,
                            history=history)

    # ------------------------------------------------------------------
    def _expand(self, in_set: Sequence[Evaluated]) -> List[Evaluated]:
        """Apply candidate transformations to every seed behavior."""
        out: List[Evaluated] = []
        for seed in in_set:
            candidates = self.transforms.candidates(seed.behavior)
            if self.hot_nodes is not None:
                fresh = self._fresh_from if self._fresh_from is not None \
                    else 0
                candidates = [
                    c for c in candidates
                    if c.touches(self.hot_nodes)
                    or any(s >= fresh for s in c.sites)]
            if len(candidates) > self.config.max_candidates_per_seed:
                candidates = self._rng.sample(
                    candidates, self.config.max_candidates_per_seed)
            for cand in candidates:
                try:
                    transformed = cand.apply(seed.behavior)
                except ReproError:
                    continue
                out.append(self.evaluate(
                    transformed,
                    seed.lineage + (f"{cand.transform}:"
                                    f"{cand.description}",)))
        return out

    def _select(self, ranked: List[Evaluated], k: float
                ) -> List[Evaluated]:
        """Draw the next In_set with probability ∝ e^(−k·rank)."""
        size = min(self.config.in_set_size, len(ranked))
        pool = list(range(len(ranked)))
        chosen: List[Evaluated] = []
        for _ in range(size):
            weights = [math.exp(-k * rank) for rank in pool]
            total = sum(weights)
            r = self._rng.random() * total
            acc = 0.0
            pick = pool[-1]
            for rank, w in zip(pool, weights):
                acc += w
                if r < acc:
                    pick = rank
                    break
            pool.remove(pick)
            chosen.append(ranked[pick])
        return chosen

"""The ``Apply_transforms`` search (paper Figure 6).

A population-based hybrid of iterative improvement and simulated
annealing:

* ``In_set`` holds the behaviors seeding the current generation;
* each generation applies every candidate transformation to every seed,
  forming ``Behavior_set``;
* every member is **rescheduled** and scored with the objective — this
  is where scheduling information guides transformation selection.
  Scheduling is delegated to an
  :class:`~repro.core.engine.EvaluationEngine`, which memoizes
  identical candidates (common across lineages) and can fan a
  generation out across worker processes;
* members are ranked by score and a fixed-size subset is drawn with
  probability ratio ``e^(−k·rank_i) / e^(−k·rank_j)``; ``k`` grows
  linearly with the outer iteration, so early generations tolerate bad
  moves and later ones favor the best;
* the loop stops when an outer iteration fails to improve the best
  score (or a hard iteration cap is reached).

Each :meth:`TransformSearch.run` draws from a fresh
``random.Random(config.seed)``, so repeated or concurrent runs with the
same seed reproduce the same trajectory regardless of backend.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..cdfg.regions import Behavior
from ..errors import ReproError, SearchError
from ..hw import Allocation, Library
from ..obs.trace import NULL_TRACER, AnyTracer
from ..rewrite.driver import RewriteDriver, RewriteStats
from ..sched.types import BranchProbs, SchedConfig
from ..transforms.base import TransformLibrary
from .engine import Evaluated, EvaluationEngine
from .objectives import Objective
from .telemetry import EvalStats, SearchTelemetry

__all__ = ["Evaluated", "SearchConfig", "SearchResult", "TransformSearch",
           "expand_candidates"]


def expand_candidates(transforms: TransformLibrary,
                      seeds: Sequence[Tuple[Behavior, Tuple[str, ...]]],
                      rng: random.Random, *,
                      max_per_seed: int,
                      hot_nodes: Optional[Set[int]] = None,
                      fresh_from: int = 0,
                      driver: Optional[RewriteDriver] = None,
                      tracer: AnyTracer = NULL_TRACER
                      ) -> List[Tuple[Behavior, Tuple[str, ...]]]:
    """Apply candidate transformations to every seed behavior.

    The shared expansion step of the Figure-6 search and the Pareto
    explorer: enumerate every applicable transformation instance per
    seed (optionally restricted to ``hot_nodes`` plus rewrite products,
    i.e. nodes numbered ``>= fresh_from``), cap each seed's candidate
    list at ``max_per_seed`` with a seeded sample, and return the next
    ``Behavior_set`` as (behavior, lineage) pairs in deterministic
    enumeration order, ready for batch evaluation.

    With a ``driver``, enumeration goes through the memoizing
    :class:`~repro.rewrite.driver.RewriteDriver` (incremental
    re-enumeration for children it applied) and children carry rewrite
    provenance for the engine's pair memoization.  Both paths present
    candidates in the canonical (transform, footprint, fingerprint)
    order, so trajectories are identical driver or not.

    With a ``tracer``, every applied transformation instance is recorded
    as an ``apply`` span (the sampling and filtering decisions are pure
    functions of the seeded RNG, so tracing never changes the output).
    """
    out: List[Tuple[Behavior, Tuple[str, ...]]] = []
    for behavior, lineage in seeds:
        if driver is not None:
            candidates = driver.candidates(behavior)
        else:
            candidates = sorted(transforms.candidates(behavior),
                                key=lambda c: c.sort_key)
        if hot_nodes is not None:
            candidates = [
                c for c in candidates
                if c.touches(hot_nodes)
                or any(s >= fresh_from for s in c.sites)]
        if len(candidates) > max_per_seed:
            candidates = rng.sample(candidates, max_per_seed)
        for cand in candidates:
            with tracer.span("apply", transform=cand.transform) as span:
                try:
                    if driver is not None:
                        transformed = driver.apply(behavior, cand)
                    else:
                        transformed = cand.apply(behavior)
                except ReproError as err:
                    span.set(inapplicable=type(err).__name__)
                    continue
                span.set(description=cand.description)
            out.append((transformed,
                        lineage + (f"{cand.transform}:"
                                   f"{cand.description}",)))
    return out


@dataclass
class SearchConfig:
    """Tuning knobs for ``Apply_transforms``.

    ``k(outer) = k0 + k_step × outer`` is the paper's monotonically
    increasing selection-pressure parameter.  ``workers`` selects the
    evaluation backend (0/1 serial, >= 2 a process pool; ``None`` defers
    to the ``REPRO_WORKERS`` environment variable); ``cache_size``
    bounds the evaluation memoization cache (0 disables it).
    ``incremental`` toggles region-level schedule memoization — both
    modes produce identical results (``--no-incremental`` on the CLI is
    the escape hatch / benchmark baseline); ``region_cache_size``
    bounds the per-process region schedule cache.
    ``incremental_enumeration`` toggles the rewrite driver's
    footprint-based incremental candidate enumeration (again with
    identical results either way — ``--no-incremental-enum`` is the
    benchmark baseline); ``enum_cache_size`` bounds its per-behavior
    enumeration memo.
    ``numeric_backend`` selects the linear-algebra core for candidate
    evaluation: ``"scalar"`` (one solve per chain, the classic path) or
    ``"batched"`` (same-size chains stacked into blocked LAPACK calls,
    vectorized power accumulation) — bit-identical results either way
    (``--numeric-backend`` on the CLI; see docs/performance.md).
    ``streaming`` evaluates each generation through the engine's
    streaming pipeline (:meth:`~repro.core.engine.EvaluationEngine.
    evaluate_stream`) instead of the generation barrier — results are
    byte-identical (``--streaming`` on the CLI; see docs/pipeline.md).
    """

    max_outer_iters: int = 6
    max_moves: int = 2        # the paper's MAX_MOVES inner loop
    in_set_size: int = 3      # the fixed-size subset kept per move
    k0: float = 0.3
    k_step: float = 0.4
    max_candidates_per_seed: int = 64
    seed: int = 0
    workers: Optional[int] = None
    cache_size: int = 4096
    incremental: bool = True
    region_cache_size: int = 4096
    incremental_enumeration: bool = True
    enum_cache_size: int = 512
    numeric_backend: str = "scalar"
    streaming: bool = False


@dataclass
class SearchResult:
    """Outcome of one ``Apply_transforms`` run."""

    best: Evaluated
    initial: Evaluated
    generations: int = 0
    evaluated_count: int = 0
    history: List[float] = field(default_factory=list)
    telemetry: Optional[SearchTelemetry] = None

    @property
    def improvement(self) -> float:
        """initial score / best score (>1 means the search helped)."""
        if self.best.score <= 0:
            return float("inf")
        return self.initial.score / self.best.score


class TransformSearch:
    """Runs the Figure-6 loop over one behavior."""

    def __init__(self, transforms: TransformLibrary, library: Library,
                 allocation: Allocation, objective: Objective,
                 sched_config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None,
                 config: Optional[SearchConfig] = None,
                 hot_nodes: Optional[Set[int]] = None,
                 engine: Optional[EvaluationEngine] = None,
                 region_cache=None,
                 tracer: Optional[AnyTracer] = None) -> None:
        self.transforms = transforms
        self.library = library
        self.allocation = allocation
        self.objective = objective
        self.sched_config = sched_config or SchedConfig()
        self.branch_probs = branch_probs
        self.config = config or SearchConfig()
        self.hot_nodes = hot_nodes
        #: externally supplied engine (caller manages its lifetime);
        #: when None, each run creates and closes its own.
        self.engine = engine
        #: externally shared region-schedule cache (e.g. the Fact
        #: driver's per-context registry), handed to engines this search
        #: creates; must match this search's evaluation context.
        self.region_cache = region_cache
        #: tracer for search.generation / apply spans; engines created
        #: by this search inherit it.  An externally supplied engine
        #: keeps its own tracer (see :meth:`run`).
        self.tracer: AnyTracer = tracer if tracer is not None \
            else NULL_TRACER
        #: rewrite driver owning candidate enumeration: memoized per
        #: behavior (raw fingerprint) and incremental for children it
        #: applied.  Shared across runs of this search.
        self.driver = RewriteDriver(
            transforms,
            incremental=self.config.incremental_enumeration,
            cache_size=self.config.enum_cache_size,
            tracer=self.tracer)
        self._rng = random.Random(self.config.seed)
        self._shared_engine: Optional[EvaluationEngine] = None
        self._fresh_from: Optional[int] = None

    # ------------------------------------------------------------------
    def _make_engine(self) -> EvaluationEngine:
        return EvaluationEngine(
            self.library, self.allocation, self.objective,
            sched_config=self.sched_config,
            branch_probs=self.branch_probs,
            workers=self.config.workers,
            cache_size=self.config.cache_size,
            incremental=self.config.incremental,
            region_cache_size=self.config.region_cache_size,
            region_cache=self.region_cache,
            numeric_backend=self.config.numeric_backend,
            tracer=self.tracer)

    def evaluate(self, behavior: Behavior,
                 lineage: Tuple[str, ...] = ()) -> Evaluated:
        """Reschedule a behavior and score it (inf if unschedulable)."""
        if self.engine is not None:
            return self.engine.evaluate(behavior, lineage)
        if self._shared_engine is None:
            self._shared_engine = self._make_engine()
        return self._shared_engine.evaluate(behavior, lineage)

    def run(self, behavior: Behavior) -> SearchResult:
        """Optimize ``behavior``; returns the best design found."""
        cfg = self.config
        # Fresh RNG per run: repeated runs on one TransformSearch (and
        # concurrent searches sharing a seed) see the same sequence.
        self._rng = random.Random(cfg.seed)
        engine = self.engine if self.engine is not None \
            else self._make_engine()
        owns_engine = engine is not self.engine
        # An externally supplied engine keeps its own tracer so its
        # evaluate spans and ours land in one tree.
        tracer = self.tracer if self.tracer.enabled else engine.tracer
        telemetry = SearchTelemetry(backend=engine.backend,
                                    workers=max(engine.workers, 1))
        telemetry.start()
        run_start_stats = engine.eval_stats.minus(EvalStats())
        run_start_rewrite = self.driver.stats.copy()
        try:
            initial = engine.evaluate(behavior)
            if initial.result is None:
                raise SearchError(
                    "the input behavior itself cannot be scheduled under "
                    "the given allocation")
            # Nodes created by rewrites get ids above the input's: they
            # are products of hot-region rewriting and stay in focus.
            self._fresh_from = max(behavior.graph.nodes, default=-1) + 1
            best = initial
            in_set: List[Evaluated] = [initial]
            history = [initial.score]
            outer = 0
            while outer < cfg.max_outer_iters:
                improved = False
                for _move in range(cfg.max_moves):
                    with tracer.span("search.generation",
                                     outer=outer) as gen_span:
                        pairs = self._expand(in_set, tracer)
                        if not pairs:
                            break
                        hits_before = engine.stats.hits
                        stats_before = engine.eval_stats.minus(
                            EvalStats())
                        gen_start = time.perf_counter()
                        if cfg.streaming:
                            generation = self._evaluate_streaming(
                                engine, pairs)
                        else:
                            generation = engine.evaluate_batch(pairs)
                        gen_time = time.perf_counter() - gen_start
                        gen_stats = engine.eval_stats.minus(stats_before)
                        generation.sort(key=lambda e: e.score)
                        best_before = best.score
                        if generation[0].score < best.score - 1e-9:
                            best = generation[0]
                            improved = True
                        history.append(best.score)
                        gen_span.set(
                            candidates=len(pairs),
                            cache_hits=engine.stats.hits - hits_before,
                            scheduled=gen_stats.scheduled,
                            best_score=best.score,
                            objective_delta=best_before - best.score,
                            reschedule_fraction=round(
                                gen_stats.reschedule_fraction, 4))
                        telemetry.record_generation(
                            outer_iter=outer, wall_time=gen_time,
                            evaluations=len(pairs),
                            cache_hits=engine.stats.hits - hits_before,
                            best_score=best.score,
                            scheduled=gen_stats.scheduled,
                            reschedule_fraction=(
                                gen_stats.reschedule_fraction),
                            solver_time=gen_stats.solver_time)
                        k = cfg.k0 + cfg.k_step * outer
                        in_set = self._select(generation, k)
                outer += 1
                if not improved:
                    break
        finally:
            telemetry.finish()
            telemetry.cache = engine.stats
            telemetry.eval = engine.eval_stats.minus(run_start_stats)
            telemetry.rewrite = self.driver.stats.minus(
                run_start_rewrite)
            telemetry.backend = engine.backend
            if cfg.streaming:
                telemetry.stream = engine.stream_stats
            if owns_engine:
                engine.close()
        return SearchResult(best=best, initial=initial, generations=outer,
                            evaluated_count=engine.requests,
                            history=history, telemetry=telemetry)

    # ------------------------------------------------------------------
    @staticmethod
    def _evaluate_streaming(engine: EvaluationEngine,
                            pairs: List[Tuple[Behavior,
                                              Tuple[str, ...]]]
                            ) -> List[Evaluated]:
        """One generation through the streaming pipeline.

        Ranking and selection need the whole generation (they are
        cross-candidate), so the stream's completion-order results are
        reassembled by input index — per-candidate outputs are
        byte-identical to the barrier path, which makes the resulting
        trajectory identical too.  The win is upstream: the engine
        overlaps evaluations inside its in-flight window instead of
        idling behind chunked-map stragglers.
        """
        outputs: List[Optional[Evaluated]] = [None] * len(pairs)
        for i, ev in engine.evaluate_stream(pairs):
            outputs[i] = ev
        assert all(e is not None for e in outputs)
        return outputs  # type: ignore[return-value]

    def _expand(self, in_set: Sequence[Evaluated],
                tracer: AnyTracer = NULL_TRACER
                ) -> List[Tuple[Behavior, Tuple[str, ...]]]:
        """Apply candidate transformations to every seed behavior.

        Returns the next ``Behavior_set`` as (behavior, lineage) pairs,
        in deterministic enumeration order, ready for batch evaluation.
        """
        return expand_candidates(
            self.transforms,
            [(seed.behavior, seed.lineage) for seed in in_set],
            self._rng,
            max_per_seed=self.config.max_candidates_per_seed,
            hot_nodes=self.hot_nodes,
            fresh_from=self._fresh_from
            if self._fresh_from is not None else 0,
            driver=self.driver,
            tracer=tracer)

    def _select(self, ranked: List[Evaluated], k: float
                ) -> List[Evaluated]:
        """Draw the next In_set with probability ∝ e^(−k·rank)."""
        size = min(self.config.in_set_size, len(ranked))
        pool = list(range(len(ranked)))
        chosen: List[Evaluated] = []
        for _ in range(size):
            weights = [math.exp(-k * rank) for rank in pool]
            total = sum(weights)
            r = self._rng.random() * total
            acc = 0.0
            pick = pool[-1]
            for rank, w in zip(pool, weights):
                acc += w
                if r < acc:
                    pick = rank
                    break
            pool.remove(pick)
            chosen.append(ranked[pick])
        return chosen

"""The ``Apply_transforms`` search harness.

:class:`TransformSearch` drives a pluggable
:class:`~repro.search.strategy.SearchStrategy` (``docs/search.md``)
over one behavior.  The harness owns everything strategies share — the
:class:`~repro.core.engine.EvaluationEngine` with its memoization
cache, region-schedule cache, streaming pipeline, evaluation budget
and telemetry — while the strategy decides what to evaluate and what
to keep:

* ``greedy`` (the default) is the paper's Figure-6 loop, a
  population-based hybrid of iterative improvement and simulated
  annealing: ``In_set`` seeds each generation, every candidate
  transformation applied to every seed forms ``Behavior_set``, every
  member is **rescheduled** and scored (this is where scheduling
  information guides transformation selection), and a fixed-size
  subset survives with probability ratio
  ``e^(−k·rank_i) / e^(−k·rank_j)`` where ``k`` grows with the outer
  iteration; the loop stops when an outer iteration fails to improve
  the best score (or a hard iteration cap is reached);
* ``macro`` runs the same loop over a neighborhood extended with
  dependent rewrite *chains* (:mod:`repro.search.macro`);
* ``portfolio`` races several configurations under the one shared
  engine with budget-based arbitration
  (:mod:`repro.search.portfolio`).

Each :meth:`TransformSearch.run` draws from a fresh
``random.Random(config.seed)``, so repeated or concurrent runs with the
same seed reproduce the same trajectory regardless of backend — and the
greedy strategy reproduces the pre-strategy-layer monolithic loop byte
for byte (:mod:`repro.search.reference` is the frozen oracle).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..cdfg.regions import Behavior
from ..errors import ReproError, SearchError
from ..hw import Allocation, Library
from ..obs.trace import NULL_TRACER, AnyTracer
from ..rewrite.driver import RewriteDriver, RewriteStats
from ..sched.types import BranchProbs, SchedConfig
from ..transforms.base import TransformLibrary
from .engine import Evaluated, EvaluationEngine
from .objectives import Objective
from .telemetry import EvalStats, SearchTelemetry

__all__ = ["Evaluated", "SearchConfig", "SearchResult", "TransformSearch",
           "expand_candidates"]


def expand_candidates(transforms: TransformLibrary,
                      seeds: Sequence[Tuple[Behavior, Tuple[str, ...]]],
                      rng: random.Random, *,
                      max_per_seed: int,
                      hot_nodes: Optional[Set[int]] = None,
                      fresh_from: int = 0,
                      driver: Optional[RewriteDriver] = None,
                      tracer: AnyTracer = NULL_TRACER
                      ) -> List[Tuple[Behavior, Tuple[str, ...]]]:
    """Apply candidate transformations to every seed behavior.

    The shared expansion step of the Figure-6 search and the Pareto
    explorer: enumerate every applicable transformation instance per
    seed (optionally restricted to ``hot_nodes`` plus rewrite products,
    i.e. nodes numbered ``>= fresh_from``), cap each seed's candidate
    list at ``max_per_seed`` with a seeded sample, and return the next
    ``Behavior_set`` as (behavior, lineage) pairs in deterministic
    enumeration order, ready for batch evaluation.

    With a ``driver``, enumeration goes through the memoizing
    :class:`~repro.rewrite.driver.RewriteDriver` (incremental
    re-enumeration for children it applied) and children carry rewrite
    provenance for the engine's pair memoization.  Both paths present
    candidates in the canonical (transform, footprint, fingerprint)
    order, so trajectories are identical driver or not.

    With a ``tracer``, every applied transformation instance is recorded
    as an ``apply`` span (the sampling and filtering decisions are pure
    functions of the seeded RNG, so tracing never changes the output).
    """
    out: List[Tuple[Behavior, Tuple[str, ...]]] = []
    for behavior, lineage in seeds:
        if driver is not None:
            candidates = driver.candidates(behavior)
        else:
            candidates = sorted(transforms.candidates(behavior),
                                key=lambda c: c.sort_key)
        if hot_nodes is not None:
            candidates = [
                c for c in candidates
                if c.touches(hot_nodes)
                or any(s >= fresh_from for s in c.sites)]
        if len(candidates) > max_per_seed:
            candidates = rng.sample(candidates, max_per_seed)
        for cand in candidates:
            with tracer.span("apply", transform=cand.transform) as span:
                try:
                    if driver is not None:
                        transformed = driver.apply(behavior, cand)
                    else:
                        transformed = cand.apply(behavior)
                except ReproError as err:
                    span.set(inapplicable=type(err).__name__)
                    continue
                span.set(description=cand.description)
            out.append((transformed,
                        lineage + (f"{cand.transform}:"
                                   f"{cand.description}",)))
    return out


@dataclass
class SearchConfig:
    """Tuning knobs for ``Apply_transforms``.

    ``k(outer) = k0 + k_step × outer`` is the paper's monotonically
    increasing selection-pressure parameter.  ``workers`` selects the
    evaluation backend (0/1 serial, >= 2 a process pool; ``None`` defers
    to the ``REPRO_WORKERS`` environment variable); ``cache_size``
    bounds the evaluation memoization cache (0 disables it).
    ``incremental`` toggles region-level schedule memoization — both
    modes produce identical results (``--no-incremental`` on the CLI is
    the escape hatch / benchmark baseline); ``region_cache_size``
    bounds the per-process region schedule cache.
    ``incremental_enumeration`` toggles the rewrite driver's
    footprint-based incremental candidate enumeration (again with
    identical results either way — ``--no-incremental-enum`` is the
    benchmark baseline); ``enum_cache_size`` bounds its per-behavior
    enumeration memo.
    ``numeric_backend`` selects the linear-algebra core for candidate
    evaluation: ``"scalar"`` (one solve per chain, the classic path) or
    ``"batched"`` (same-size chains stacked into blocked LAPACK calls,
    vectorized power accumulation) — bit-identical results either way
    (``--numeric-backend`` on the CLI; see docs/performance.md).
    ``streaming`` evaluates each generation through the engine's
    streaming pipeline (:meth:`~repro.core.engine.EvaluationEngine.
    evaluate_stream`) instead of the generation barrier — results are
    byte-identical (``--streaming`` on the CLI; see docs/pipeline.md).

    ``strategy`` selects the search strategy (``"greedy"``, ``"macro"``
    or ``"portfolio"`` — ``--strategy`` on the CLI; docs/search.md).
    ``macro_depth`` / ``macro_limit`` bound macro-move chains (longest
    dependent chain, chains per seed per generation);
    ``portfolio_size`` is the number of racing portfolio members; and
    ``max_evaluations`` caps the run's *scheduled* evaluations (cache
    hits are free; ``None`` is unbounded) — the budget that makes
    cross-strategy quality comparisons fair.
    """

    max_outer_iters: int = 6
    max_moves: int = 2        # the paper's MAX_MOVES inner loop
    in_set_size: int = 3      # the fixed-size subset kept per move
    k0: float = 0.3
    k_step: float = 0.4
    max_candidates_per_seed: int = 64
    seed: int = 0
    workers: Optional[int] = None
    cache_size: int = 4096
    incremental: bool = True
    region_cache_size: int = 4096
    incremental_enumeration: bool = True
    enum_cache_size: int = 512
    numeric_backend: str = "scalar"
    streaming: bool = False
    strategy: str = "greedy"
    macro_depth: int = 2
    macro_limit: int = 8
    portfolio_size: int = 3
    max_evaluations: Optional[int] = None


@dataclass
class SearchResult:
    """Outcome of one ``Apply_transforms`` run.

    ``generations`` is strategy-defined: outer iterations for greedy
    and macro runs, total observed generations for a portfolio.
    """

    best: Evaluated
    initial: Evaluated
    generations: int = 0
    evaluated_count: int = 0
    history: List[float] = field(default_factory=list)
    telemetry: Optional[SearchTelemetry] = None
    #: name of the strategy that produced this result (docs/search.md)
    strategy: str = "greedy"

    @property
    def improvement(self) -> float:
        """initial score / best score (>1 means the search helped).

        A no-op search on a zero-score input (both scores 0, e.g. a
        zero-weight objective) reports 1.0 — "nothing to improve", not
        an infinite win; only a genuine drop to a non-positive best
        from a positive initial reports ``inf``.
        """
        if self.best.score <= 0:
            return 1.0 if self.initial.score <= 0 else float("inf")
        return self.initial.score / self.best.score


class TransformSearch:
    """The strategy-agnostic search harness over one behavior.

    Owns the evaluation engine, the caches, the evaluation budget and
    telemetry; the strategy named by ``SearchConfig.strategy`` decides
    what to evaluate (docs/search.md).  The default ``greedy`` strategy
    reproduces the paper's Figure-6 loop byte for byte.
    """

    def __init__(self, transforms: TransformLibrary, library: Library,
                 allocation: Allocation, objective: Objective,
                 sched_config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None,
                 config: Optional[SearchConfig] = None,
                 hot_nodes: Optional[Set[int]] = None,
                 engine: Optional[EvaluationEngine] = None,
                 region_cache=None,
                 tracer: Optional[AnyTracer] = None) -> None:
        self.transforms = transforms
        self.library = library
        self.allocation = allocation
        self.objective = objective
        self.sched_config = sched_config or SchedConfig()
        self.branch_probs = branch_probs
        self.config = config or SearchConfig()
        self.hot_nodes = hot_nodes
        #: externally supplied engine (caller manages its lifetime);
        #: when None, each run creates and closes its own.
        self.engine = engine
        #: externally shared region-schedule cache (e.g. the Fact
        #: driver's per-context registry), handed to engines this search
        #: creates; must match this search's evaluation context.
        self.region_cache = region_cache
        #: tracer for search.generation / apply spans; engines created
        #: by this search inherit it.  An externally supplied engine
        #: keeps its own tracer (see :meth:`run`).
        self.tracer: AnyTracer = tracer if tracer is not None \
            else NULL_TRACER
        #: rewrite driver owning candidate enumeration: memoized per
        #: behavior (raw fingerprint) and incremental for children it
        #: applied.  Shared across runs of this search.
        self.driver = RewriteDriver(
            transforms,
            incremental=self.config.incremental_enumeration,
            cache_size=self.config.enum_cache_size,
            tracer=self.tracer)
        self._rng = random.Random(self.config.seed)
        self._shared_engine: Optional[EvaluationEngine] = None
        self._fresh_from: Optional[int] = None

    # ------------------------------------------------------------------
    def _make_engine(self) -> EvaluationEngine:
        return EvaluationEngine(
            self.library, self.allocation, self.objective,
            sched_config=self.sched_config,
            branch_probs=self.branch_probs,
            workers=self.config.workers,
            cache_size=self.config.cache_size,
            incremental=self.config.incremental,
            region_cache_size=self.config.region_cache_size,
            region_cache=self.region_cache,
            numeric_backend=self.config.numeric_backend,
            tracer=self.tracer)

    def evaluate(self, behavior: Behavior,
                 lineage: Tuple[str, ...] = ()) -> Evaluated:
        """Reschedule a behavior and score it (inf if unschedulable)."""
        if self.engine is not None:
            return self.engine.evaluate(behavior, lineage)
        if self._shared_engine is None:
            self._shared_engine = self._make_engine()
        return self._shared_engine.evaluate(behavior, lineage)

    def run(self, behavior: Behavior) -> SearchResult:
        """Optimize ``behavior``; returns the best design found."""
        # Runtime import: repro.search sits above repro.core in the
        # layer diagram (strategies import the engine's types).
        from ..search import make_strategy
        cfg = self.config
        # Fresh RNG per run: repeated runs on one TransformSearch (and
        # concurrent searches sharing a seed) see the same sequence.
        self._rng = random.Random(cfg.seed)
        engine = self.engine if self.engine is not None \
            else self._make_engine()
        owns_engine = engine is not self.engine
        # An externally supplied engine keeps its own tracer so its
        # evaluate spans and ours land in one tree.
        tracer = self.tracer if self.tracer.enabled else engine.tracer
        telemetry = SearchTelemetry(backend=engine.backend,
                                    workers=max(engine.workers, 1))
        telemetry.start()
        run_start_stats = engine.eval_stats.minus(EvalStats())
        run_start_rewrite = self.driver.stats.copy()
        strategy = make_strategy(cfg, self._expander_factory(tracer))
        telemetry.strategy = strategy.name
        try:
            initial = engine.evaluate(behavior)
            if initial.result is None:
                raise SearchError(
                    "the input behavior itself cannot be scheduled under "
                    "the given allocation")
            # Nodes created by rewrites get ids above the input's: they
            # are products of hot-region rewriting and stay in focus.
            self._fresh_from = max(behavior.graph.nodes, default=-1) + 1
            strategy.start(initial)
            budget = engine.budget(cfg.max_evaluations)
            while not budget.exhausted:
                proposal = strategy.propose(tracer)
                if proposal is None:
                    break
                try:
                    pairs = proposal.pairs
                    hits_before = engine.stats.hits
                    stats_before = engine.eval_stats.minus(EvalStats())
                    gen_start = time.perf_counter()
                    if cfg.streaming:
                        generation = self._evaluate_streaming(
                            engine, pairs)
                    else:
                        generation = engine.evaluate_batch(pairs)
                    gen_time = time.perf_counter() - gen_start
                    gen_stats = engine.eval_stats.minus(stats_before)
                    generation.sort(key=lambda e: e.score)
                    best_before = strategy.best.score
                    proposal.cost = gen_stats.scheduled
                    strategy.observe(proposal, generation)
                    best_score = strategy.best.score
                    proposal.span.set(
                        candidates=len(pairs),
                        cache_hits=engine.stats.hits - hits_before,
                        scheduled=gen_stats.scheduled,
                        best_score=best_score,
                        objective_delta=best_before - best_score,
                        reschedule_fraction=round(
                            gen_stats.reschedule_fraction, 4))
                    telemetry.record_generation(
                        outer_iter=proposal.outer, wall_time=gen_time,
                        evaluations=len(pairs),
                        cache_hits=engine.stats.hits - hits_before,
                        best_score=best_score,
                        scheduled=gen_stats.scheduled,
                        reschedule_fraction=(
                            gen_stats.reschedule_fraction),
                        solver_time=gen_stats.solver_time,
                        member=proposal.member)
                finally:
                    proposal.close()
        finally:
            telemetry.finish()
            telemetry.cache = engine.stats
            telemetry.eval = engine.eval_stats.minus(run_start_stats)
            telemetry.rewrite = self.driver.stats.minus(
                run_start_rewrite)
            telemetry.backend = engine.backend
            if cfg.streaming:
                telemetry.stream = engine.stream_stats
            member_stats = getattr(strategy, "member_stats", None)
            if member_stats is not None:
                telemetry.members = member_stats()
            if owns_engine:
                engine.close()
        return SearchResult(best=strategy.best, initial=initial,
                            generations=strategy.generations,
                            evaluated_count=engine.requests,
                            history=strategy.history,
                            telemetry=telemetry,
                            strategy=strategy.name)

    # ------------------------------------------------------------------
    @staticmethod
    def _evaluate_streaming(engine: EvaluationEngine,
                            pairs: List[Tuple[Behavior,
                                              Tuple[str, ...]]]
                            ) -> List[Evaluated]:
        """One generation through the streaming pipeline.

        Ranking and selection need the whole generation (they are
        cross-candidate), so the stream's completion-order results are
        reassembled by input index — per-candidate outputs are
        byte-identical to the barrier path, which makes the resulting
        trajectory identical too.  The win is upstream: the engine
        overlaps evaluations inside its in-flight window instead of
        idling behind chunked-map stragglers.
        """
        outputs: List[Optional[Evaluated]] = [None] * len(pairs)
        for i, ev in engine.evaluate_stream(pairs):
            outputs[i] = ev
        assert all(e is not None for e in outputs)
        return outputs  # type: ignore[return-value]

    def _expander_factory(self, tracer: AnyTracer):
        """Expansion hook handed to strategies (docs/search.md).

        ``factory(depth)`` returns an expander closing over this
        search's transform library, rewrite driver, hot-node focus and
        tracer.  Depth 1 is plain one-step expansion (the strategy's
        RNG is consumed exactly as the monolithic loop consumed the run
        RNG); depth >= 2 appends dependent macro chains, which consume
        no RNG, so a macro trajectory shares greedy's RNG stream.
        """
        def factory(depth: int):
            def expander(seeds, rng):
                pairs = expand_candidates(
                    self.transforms, seeds, rng,
                    max_per_seed=self.config.max_candidates_per_seed,
                    hot_nodes=self.hot_nodes,
                    fresh_from=self._fresh_from
                    if self._fresh_from is not None else 0,
                    driver=self.driver, tracer=tracer)
                if depth >= 2:
                    from ..search.macro import expand_macro_chains
                    pairs.extend(expand_macro_chains(
                        self.driver, seeds, depth=depth,
                        limit=self.config.macro_limit,
                        hot_nodes=self.hot_nodes,
                        fresh_from=self._fresh_from
                        if self._fresh_from is not None else 0,
                        tracer=tracer))
                return pairs
            return expander
        return factory

    def _expand(self, in_set: Sequence[Evaluated],
                tracer: AnyTracer = NULL_TRACER
                ) -> List[Tuple[Behavior, Tuple[str, ...]]]:
        """Apply candidate transformations to every seed behavior.

        Returns the next ``Behavior_set`` as (behavior, lineage) pairs,
        in deterministic enumeration order, ready for batch evaluation.
        """
        return expand_candidates(
            self.transforms,
            [(seed.behavior, seed.lineage) for seed in in_set],
            self._rng,
            max_per_seed=self.config.max_candidates_per_seed,
            hot_nodes=self.hot_nodes,
            fresh_from=self._fresh_from
            if self._fresh_from is not None else 0,
            driver=self.driver,
            tracer=tracer)

    def _select(self, ranked: List[Evaluated], k: float
                ) -> List[Evaluated]:
        """Draw the next In_set with probability ∝ e^(−k·rank)."""
        size = min(self.config.in_set_size, len(ranked))
        pool = list(range(len(ranked)))
        chosen: List[Evaluated] = []
        for _ in range(size):
            weights = [math.exp(-k * rank) for rank in pool]
            total = sum(weights)
            r = self._rng.random() * total
            acc = 0.0
            pick = pool[-1]
            for rank, w in zip(pool, weights):
                acc += w
                if r < acc:
                    pick = rank
                    break
            pool.remove(pick)
            chosen.append(ranked[pick])
        return chosen

"""TEST1 — the paper's running example (Figure 1, Example 1).

Provides the behavior (from the BDL source of Figure 1(a)), the branch
probabilities quoted in Example 1, and a faithful reconstruction of the
Figure 1(c) STG used to validate the power model against the paper's
published numbers (state probabilities, 119.11-cycle average schedule
length, per-FU energies, 665.58 Vdd² total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior
from ..errors import BenchError
from ..lang import compile_source
from ..stg.model import ScheduledOp, Stg

TEST1_SOURCE = """
proc test1(in c1, in c2, array x[256], out a) {
    var i = 0;
    var acc = 0;
    while (c2 > i) {          // >1
        if (i < c1) {         // <1
            var t1 = acc + 7; // +1
            acc = 13 * t1;    // *1
        } else {
            acc = acc + 17;   // +2
        }
        i = i + 1;            // ++1
        x[i] = acc;           // S
    }
    a = acc;
}
"""

#: Example 1's measured branch behavior.
P_LOOP_CLOSE = 0.98
P_IF_TAKEN = 0.37


def test1_behavior() -> Behavior:
    """The TEST1 behavior, compiled from BDL."""
    return compile_source(TEST1_SOURCE)


@dataclass
class Test1Nodes:
    """The Figure-1 operation ids within the compiled graph."""

    gt: int      # >1 : c2 > i
    lt: int      # <1 : i < c1
    add7: int    # +1 : acc + 7
    mul: int     # *1 : 13 * t1
    add17: int   # +2 : acc + 17
    inc: int     # ++1 : i + 1
    store: int   # S   : x[i] = acc


def test1_nodes(behavior: Behavior) -> Test1Nodes:
    """Locate the seven annotated operations of Figure 1(b)."""
    by_kind: Dict[OpKind, list] = {}
    for node in behavior.graph:
        by_kind.setdefault(node.kind, []).append(node.id)
    try:
        adds = by_kind[OpKind.ADD]
        mul = by_kind[OpKind.MUL][0]
    except (KeyError, IndexError):
        raise BenchError("TEST1 graph missing expected operations")
    # +1 is the add feeding the multiply.
    mul_srcs = set(behavior.graph.data_inputs(mul))
    add7 = next(a for a in adds if a in mul_srcs)
    add17 = next(a for a in adds if a != add7)
    return Test1Nodes(
        gt=by_kind[OpKind.GT][0],
        lt=by_kind[OpKind.LT][0],
        add7=add7,
        mul=mul,
        add17=add17,
        inc=by_kind[OpKind.INC][0],
        store=by_kind[OpKind.STORE][0],
    )


def test1_branch_probs(behavior: Behavior) -> Dict[int, float]:
    """Example 1's profiled probabilities keyed by condition node id."""
    nodes = test1_nodes(behavior)
    return {nodes.gt: P_LOOP_CLOSE, nodes.lt: P_IF_TAKEN}


def test1_fig1c_stg(behavior: Behavior) -> Stg:
    """Reconstruct the Figure 1(c) schedule as an STG.

    The schedule overlaps iterations: state S5 executes the store of
    iteration *i* together with the increment and comparisons of
    iteration *i+1* (the paper's ``S.0`` / ``++1_1`` / ``<1_1``
    annotations); the 23ns multiply spans states S2 and S4.
    """
    n = test1_nodes(behavior)
    stg = Stg("test1_fig1c")
    s = {}
    s[0] = stg.add_state(label="S0")  # init (constants: cost-free)
    s[1] = stg.add_state([ScheduledOp(n.inc), ScheduledOp(n.gt),
                          ScheduledOp(n.lt)], label="S1")
    s[2] = stg.add_state([ScheduledOp(n.add7), ScheduledOp(n.mul)],
                         label="S2")
    s[3] = stg.add_state([ScheduledOp(n.add17)], label="S3")
    s[4] = stg.add_state(label="S4")  # multiply completes
    s[5] = stg.add_state([ScheduledOp(n.store), ScheduledOp(n.inc, 1),
                          ScheduledOp(n.gt, 1), ScheduledOp(n.lt, 1)],
                         label="S5")
    s[6] = stg.add_state(label="S6")
    s[7] = stg.add_state(label="S7")
    s[8] = stg.add_state(label="S8")
    p, q = P_LOOP_CLOSE, P_IF_TAKEN
    stg.add_transition(s[0], s[1], 1.0)
    stg.add_transition(s[1], s[2], p * q, "<1")
    stg.add_transition(s[1], s[3], p * (1 - q), "!<1")
    stg.add_transition(s[1], s[7], 1 - p, "!>1")
    stg.add_transition(s[2], s[4], 1.0)
    stg.add_transition(s[4], s[5], 1.0)
    stg.add_transition(s[3], s[5], 1.0)
    stg.add_transition(s[5], s[2], p * q, "<1_1")
    stg.add_transition(s[5], s[3], p * (1 - q), "!<1_1")
    stg.add_transition(s[5], s[6], 1 - p, "!>1_1")
    stg.add_transition(s[6], s[7], 1.0)
    stg.add_transition(s[7], s[8], 1.0)
    stg.entry, stg.exit = s[0], s[8]
    stg.validate()
    return stg

"""ASCII reconstructions of the paper's schedule figures.

:func:`phase_diagram` renders a scheduled behavior the way Figure 2
draws Test2: one node per schedule phase (concurrent-loop kernels,
solo kernels, prologues, sequential sections), annotated with the loops
it executes and its expected duration.  :func:`kernel_table` prints a
Figure-3-style per-cycle resource view of a loop kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cdfg.ir import Graph
from ..hw import Library
from ..sched.driver import ScheduleResult
from ..sched.types import ResourceModel
from ..stg.markov import expected_visits


def _phase_of(label: str) -> str:
    """Collapse a state label to its phase name."""
    if not label:
        return "(anon)"
    for suffix in (".k", ".pro", ".drain", ".c", ".check"):
        if suffix in label:
            return label.split(suffix)[0] or label
    return label.rstrip("0123456789") or label


def phase_diagram(result: ScheduleResult) -> str:
    """Render the schedule's phase structure (paper Figure 2 style).

    Consecutive states sharing a phase name merge into one node; each
    node shows its expected cycles (from the Markov analysis) and the
    loop kernels it runs.
    """
    stg = result.stg
    visits = expected_visits(stg)
    # Walk states in a breadth-ish order from the entry, grouping by
    # phase label.
    order: List[int] = []
    seen = set()
    stack = [stg.entry]
    while stack:
        sid = stack.pop(0)
        if sid in seen:
            continue
        seen.add(sid)
        order.append(sid)
        for t in sorted(stg.out_edges(sid), key=lambda t: -t.prob):
            stack.append(t.dst)
    phases: List[Tuple[str, float, int]] = []  # (name, cycles, states)
    for sid in order:
        name = _phase_of(stg.states[sid].label)
        cycles = visits.get(sid, 0.0)
        if phases and phases[-1][0] == name:
            prev = phases[-1]
            phases[-1] = (name, prev[1] + cycles, prev[2] + 1)
        else:
            phases.append((name, cycles, 1))
    total = sum(c for _n, c, _s in phases)
    lines = [f"schedule of {result.behavior.name}: "
             f"{total:.1f} expected cycles"]
    for i, (name, cycles, states) in enumerate(phases):
        bar = "#" * max(1, round(40 * cycles / max(total, 1e-9)))
        lines.append(f"  n{i}: {name:<14} {cycles:7.1f} cy "
                     f"({states:3d} states) {bar}")
        if i + 1 < len(phases):
            lines.append("   |")
    return "\n".join(lines)


def kernel_table(result: ScheduleResult, phase: str,
                 library: Optional[Library] = None) -> str:
    """Per-cycle FU usage of one phase's states (Figure 3 style)."""
    rm = ResourceModel(
        result.behavior.graph, library or result.library,
        result.allocation,
        array_ports={n: d.ports
                     for n, d in result.behavior.arrays.items()})
    graph: Graph = result.behavior.graph
    rows = []
    for sid in result.stg.state_ids():
        state = result.stg.states[sid]
        if _phase_of(state.label) != phase:
            continue
        usage: Dict[str, List[str]] = {}
        for op in state.ops:
            resource = rm.resource_of(op.node)
            if resource is None:
                continue
            tag = graph.nodes[op.node].label()
            if op.iteration:
                tag += f"@{op.iteration}"
            usage.setdefault(resource, []).append(tag)
        cells = "  ".join(f"{res}:[{', '.join(tags)}]"
                          for res, tags in sorted(usage.items()))
        rows.append(f"  {state.label:<14} {cells or '(idle)'}")
    if not rows:
        return f"(no states in phase {phase!r})"
    return "\n".join([f"kernel {phase!r}:"] + rows)

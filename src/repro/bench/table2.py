"""The Table-2 experiment harness.

Runs each benchmark circuit through the three methods the paper
compares — **M1** (scheduling only), **Flamel** (transform-first, static
heuristics) and **FACT** (schedule-guided search) — and reports the
paper's metrics:

* throughput mode: cycles⁻¹ × 1000 per CDFG iteration;
* power mode: estimated power of the M1 design at the nominal supply
  vs. the FACT power-optimized design at the Vdd that restores the M1
  schedule length (iso-throughput).

Absolute power is reported in the model's normalized units (the paper
measured mW from layout; ratios are the comparable quantity).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..baselines.flamel import run_flamel
from ..baselines.m1 import run_m1
from ..cdfg.regions import Behavior
from ..core.fact import Fact, FactConfig
from ..core.objectives import POWER, THROUGHPUT
from ..core.search import SearchConfig
from ..hw import Library, dac98_library
from ..power.model import estimate_power
from ..power.vdd import scaled_vdd_for_schedule
from ..profiling.profiler import profile
from ..sched.driver import ScheduleResult
from .circuits import CIRCUITS, Circuit, circuit


def default_search_config(seed: int = 2) -> SearchConfig:
    """The search budget used for the Table-2 runs."""
    return SearchConfig(max_outer_iters=8, max_moves=2, in_set_size=3,
                        seed=seed, max_candidates_per_seed=48)


def _resolve_search(search: Optional[SearchConfig],
                    workers: Optional[int]) -> SearchConfig:
    cfg = search or default_search_config()
    if workers is not None:
        cfg = replace(cfg, workers=workers)
    return cfg


@dataclass
class MethodRun:
    """One method's outcome on one circuit."""

    method: str
    behavior: Behavior
    result: ScheduleResult
    length: float
    lineage: Tuple[str, ...] = ()

    def throughput_x1000(self, iterations_per_run: float) -> float:
        return 1000.0 * iterations_per_run / self.length


@dataclass
class ThroughputRow:
    """One Table-2 throughput row (ours next to the paper's)."""

    circuit: Circuit
    m1: MethodRun
    flamel: MethodRun
    fact: MethodRun

    def ours(self) -> Tuple[float, float, float]:
        k = self.circuit.iterations_per_run
        return (self.m1.throughput_x1000(k),
                self.flamel.throughput_x1000(k),
                self.fact.throughput_x1000(k))

    @property
    def fact_over_m1(self) -> float:
        return self.m1.length / self.fact.length

    @property
    def fact_over_flamel(self) -> float:
        return self.flamel.length / self.fact.length


@dataclass
class PowerRow:
    """One Table-2 power row: M1 at 5 V vs FACT power-optimized."""

    circuit: Circuit
    m1_power: float
    fact_power: float
    scaled_vdd: float
    m1_length: float
    fact_length: float

    @property
    def reduction(self) -> float:
        if self.m1_power <= 0:
            return 0.0
        return 1.0 - self.fact_power / self.m1_power


def run_throughput_row(name: str, library: Optional[Library] = None,
                       search: Optional[SearchConfig] = None,
                       workers: Optional[int] = None) -> ThroughputRow:
    """Run M1 / Flamel / FACT on a circuit in throughput mode."""
    c = circuit(name)
    lib = library or dac98_library()
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    m1 = run_m1(beh, lib, c.allocation, c.sched, probs)
    fl = run_flamel(beh, lib, c.allocation, c.sched, probs)
    fact = Fact(lib, config=FactConfig(
        sched=c.sched, search=_resolve_search(search, workers)))
    res = fact.optimize(beh, c.allocation, branch_probs=probs,
                        objective=THROUGHPUT)
    assert res.best.result is not None
    return ThroughputRow(
        circuit=c,
        m1=MethodRun("M1", beh, m1, m1.average_length()),
        flamel=MethodRun("Flamel", fl.behavior, fl.result,
                         fl.result.average_length(),
                         lineage=fl.applied),
        fact=MethodRun("FACT", res.best.behavior, res.best.result,
                       res.best_length, lineage=res.best.lineage),
    )


def run_power_row(name: str, library: Optional[Library] = None,
                  search: Optional[SearchConfig] = None,
                  cycle_time: float = 1.0,
                  workers: Optional[int] = None) -> PowerRow:
    """Run the power-mode comparison: M1 vs FACT at iso-throughput."""
    c = circuit(name)
    lib = library or dac98_library()
    beh = c.behavior()
    probs = profile(beh, c.traces(beh)).branch_probs
    m1 = run_m1(beh, lib, c.allocation, c.sched, probs)
    base_len = m1.average_length()
    m1_est = estimate_power(m1.stg, beh.graph, lib, vdd=5.0,
                            cycle_time=cycle_time)
    fact = Fact(lib, config=FactConfig(
        sched=c.sched, search=_resolve_search(search, workers)))
    res = fact.optimize(beh, c.allocation, branch_probs=probs,
                        objective=POWER)
    assert res.best.result is not None
    best_len = res.best_length
    best_est = estimate_power(res.best.result.stg,
                              res.best.behavior.graph, lib, vdd=5.0,
                              cycle_time=cycle_time)
    vdd = scaled_vdd_for_schedule(min(best_len, base_len), base_len)
    fact_power = (best_est.total_energy * vdd ** 2
                  / (max(base_len, best_len) * cycle_time))
    return PowerRow(c, m1_power=m1_est.power, fact_power=fact_power,
                    scaled_vdd=vdd, m1_length=base_len,
                    fact_length=best_len)


def format_throughput_table(rows: List[ThroughputRow]) -> str:
    """Render the Table-2 throughput comparison as text."""
    lines = ["Table 2 (throughput, cycles^-1 x 1000 per iteration)",
             f"{'circuit':10} {'M1':>8} {'Fl':>8} {'FACT':>8}   "
             f"{'paper M1':>8} {'Fl':>8} {'FACT':>8}   {'x/M1':>5}"]
    for row in rows:
        ours = row.ours()
        paper = row.circuit.paper_throughput or (0, 0, 0)
        lines.append(
            f"{row.circuit.name:10} {ours[0]:8.1f} {ours[1]:8.1f} "
            f"{ours[2]:8.1f}   {paper[0]:8.1f} {paper[1]:8.1f} "
            f"{paper[2]:8.1f}   {row.fact_over_m1:5.2f}")
    m1_avg = _geo_mean([r.fact_over_m1 for r in rows])
    fl_avg = _geo_mean([r.fact_over_flamel for r in rows])
    lines.append(f"geomean FACT/M1 {m1_avg:.2f} (paper avg 2.7x), "
                 f"FACT/Flamel {fl_avg:.2f} (paper avg 2.1x)")
    return "\n".join(lines)


def format_power_table(rows: List[PowerRow]) -> str:
    """Render the Table-2 power comparison as text."""
    lines = ["Table 2 (power, model units; paper values are mW)",
             f"{'circuit':10} {'M1':>9} {'FACT':>9} {'redu%':>6} "
             f"{'Vdd':>5}   {'paper M1':>8} {'FACT':>6} {'redu%':>6}"]
    for row in rows:
        paper = row.circuit.paper_power or (0.0, 0.0)
        paper_red = (100 * (1 - paper[1] / paper[0])) if paper[0] else 0
        lines.append(
            f"{row.circuit.name:10} {row.m1_power:9.2f} "
            f"{row.fact_power:9.2f} {100 * row.reduction:6.1f} "
            f"{row.scaled_vdd:5.2f}   {paper[0]:8.1f} {paper[1]:6.1f} "
            f"{paper_red:6.1f}")
    avg = sum(row.reduction for row in rows) / max(len(rows), 1)
    lines.append(f"mean power reduction {100 * avg:.1f}% "
                 f"(paper avg 62.1%)")
    return "\n".join(lines)


def _geo_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))

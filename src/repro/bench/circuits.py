"""The Table-2 benchmark circuits.

Each circuit bundles: the BDL source, its Table-3 allocation (plus any
documented loop-control extension), a trace generator, the scheduling
configuration used for its row, and the unit of "one CDFG iteration"
for the paper's throughput metric (cycles⁻¹ × 1000 per iteration).

Reconstruction notes (sources are not published in the paper):

* **GCD** — Euclid's subtractive algorithm, exactly Figure-1 style CFI.
* **FIR** — 6 taps written as explicit constant multiplies over a
  shift register; the sample loop adds a counter (1 cp1 + 1 i1) on top
  of Table 3, standing in for the paper's streaming I/O.  One sample =
  one iteration.
* **Test2** — Example 2's independent loops: L1 (one addition per
  element) runs concurrently with L3 (``(y1+y2)-(y3+y4)``); bounds are
  chosen so the untransformed/transformed schedules land at the
  paper's ≈510 / ≈408 cycles.
* **SINTRAN** — a sine transform: per output, a polynomial (Taylor-
  style) sine evaluation followed by multiply-accumulate over the
  input vector.
* **IGF** — incomplete-gamma-style iterative series with a
  data-dependent convergence loop (division replaced by a constant
  shift, matching the s1 shifter in its allocation).
* **PPS** — parallel prefix sum over 8 scalar inputs; scheduled
  without chaining so the untransformed design shows the paper's
  one-add-per-state behavior (8 cycles → 125).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..cdfg.regions import Behavior
from ..errors import BenchError
from ..hw import Allocation
from ..lang import compile_source
from ..profiling.traces import TraceSet, uniform_traces
from ..sched.types import SchedConfig
from .allocations import TABLE2_CLOCK_NS, allocation_for


@dataclass
class Circuit:
    """A benchmark circuit and everything needed to run its row."""

    name: str
    source: str
    allocation: Allocation
    #: divide the average schedule length by this to get cycles per
    #: CDFG iteration (the paper's throughput unit)
    iterations_per_run: float = 1.0
    sched: SchedConfig = field(default_factory=lambda: SchedConfig(
        clock=TABLE2_CLOCK_NS))
    trace_maker: Optional[Callable[[Behavior], TraceSet]] = None
    #: paper Table-2 row: throughput x1000 (M1, Flamel, FACT) and
    #: power mW (M1, FACT)
    paper_throughput: tuple = ()
    paper_power: tuple = ()
    notes: str = ""

    def behavior(self) -> Behavior:
        return compile_source(self.source)

    def traces(self, behavior: Behavior) -> TraceSet:
        if self.trace_maker is not None:
            return self.trace_maker(behavior)
        return uniform_traces(behavior, 12, lo=1, hi=1000, seed=11)


# ---------------------------------------------------------------------------
# GCD
# ---------------------------------------------------------------------------

GCD_SOURCE = """
proc gcd(in a, in b, out g) {
    while (a != b) {
        if (a < b) { b = b - a; } else { a = a - b; }
    }
    g = a;
}
"""


def _gcd_traces(behavior: Behavior) -> TraceSet:
    return uniform_traces(behavior, 16, lo=1, hi=255, seed=7)


# ---------------------------------------------------------------------------
# FIR: y[n] = x[n] - 2 x[n-1] - 4 x[n-2] - 8 x[n-3] + 16 x[n-4]
#            - 32 x[n-5], written with explicit constant multiplies.
# ---------------------------------------------------------------------------

FIR_SOURCE = """
proc fir(array x[64], array y[64]) {
    var s0 = 0;
    var s1 = 0;
    var s2 = 0;
    var s3 = 0;
    var s4 = 0;
    var s5 = 0;
    for (n = 0; n < 64; n = n + 1) {
        s5 = s4;
        s4 = s3;
        s3 = s2;
        s2 = s1;
        s1 = s0;
        s0 = x[n];
        y[n] = 1 * s0 - 2 * s1 - 4 * s2 - 8 * s3 + 16 * s4 - 32 * s5;
    }
}
"""


def _fir_allocation() -> Allocation:
    alloc = allocation_for("fir")
    # Loop-control counter on top of Table 3 (the paper's FIR streams
    # samples; our explicit sample loop needs a compare + increment).
    alloc.counts["cp1"] = 1
    alloc.counts["i1"] = 1
    return alloc


# ---------------------------------------------------------------------------
# Test2 (Example 2)
# ---------------------------------------------------------------------------

TEST2_SOURCE = """
proc test2(array xd[128], array xa[128], array xb[128],
           array y[512], array y1[512], array y2[512],
           array y3[512], array y4[512]) {
    for (i = 0; i < 100; i = i + 1) {
        xd[i] = xa[i] + xb[i];
    }
    for (m = 0; m < 400; m = m + 1) {
        y[m] = (y1[m] + y2[m]) - (y3[m] + y4[m]);
    }
}
"""


# ---------------------------------------------------------------------------
# SINTRAN: sine transform. Per output k, evaluate a cubic-polynomial
# sine of the angle, then multiply-accumulate over the inputs.
# ---------------------------------------------------------------------------

SINTRAN_SOURCE = """
proc sintran(array w[192], array x[192], array y[192]) {
    for (k = 0; k < 192; k = k + 1) {
        var a = w[k];
        var q = a;
        if (a > 511) { q = a - 512; }
        if (q > 255) { q = 512 - q; }
        var q2 = q * q;
        var s = (5333 * q - ((q2 * q) >> 6)) >> 8;
        if (a > 511) { s = 0 - s; }
        y[k] = (x[k] * s) >> 8;
    }
}
"""


def _sintran_traces(behavior: Behavior) -> TraceSet:
    # Angles span the full circle (0..1023 ~ 2*pi) so every quadrant
    # branch is exercised.
    return uniform_traces(behavior, 8, lo=0, hi=1023, seed=3,
                          array_lo=0, array_hi=1023)


# ---------------------------------------------------------------------------
# IGF: incomplete-gamma-style series, data-dependent convergence.
# ---------------------------------------------------------------------------

IGF_SOURCE = """
proc igf(in a, in x, out g) {
    var term = x * 512;
    var sum = 0;
    var n = 1;
    while (term > 8) {
        sum = sum + (term >> 6);
        var grow = term * x;
        var decay = term * a;
        term = (grow - decay) >> 10;
        n = n + 1;
    }
    g = sum + n;
}
"""


def _igf_traces(behavior: Behavior) -> TraceSet:
    # x near the 0.992 decay-ratio edge: hundreds to a thousand series
    # terms per evaluation, like the paper's ~5000-cycle runs.
    import random

    from ..profiling.traces import TraceCase

    rng = random.Random(13)
    cases = [TraceCase({"a": rng.randint(0, 3),
                        "x": rng.randint(1014, 1022)}) for _ in range(12)]
    return TraceSet(cases)


# ---------------------------------------------------------------------------
# PPS: parallel prefix sum of 8 scalar inputs.
# ---------------------------------------------------------------------------

PPS_SOURCE = """
proc pps(in x0, in x1, in x2, in x3, in x4, in x5, in x6, in x7,
         out s0, out s1, out s2, out s3, out s4, out s5, out s6,
         out s7) {
    s0 = x0;
    s1 = s0 + x1;
    s2 = s1 + x2;
    s3 = s2 + x3;
    s4 = s3 + x4;
    s5 = s4 + x5;
    s6 = s5 + x6;
    s7 = s6 + x7;
}
"""


def _circuits() -> Dict[str, Circuit]:
    return {
        "gcd": Circuit(
            name="gcd", source=GCD_SOURCE,
            allocation=allocation_for("gcd"),
            trace_maker=_gcd_traces,
            paper_throughput=(6.3, 10.1, 16.9),
            paper_power=(2.8, 0.9),
            notes="subtractive Euclid; FACT speculates both "
                  "subtractions"),
        "fir": Circuit(
            name="fir", source=FIR_SOURCE,
            allocation=_fir_allocation(),
            iterations_per_run=64.0,
            paper_throughput=(167.0, 167.0, 1000.0),
            paper_power=(7.6, 1.7),
            notes="+1 cp1/i1 for the sample counter (streaming I/O "
                  "substitute)"),
        "test2": Circuit(
            name="test2", source=TEST2_SOURCE,
            allocation=allocation_for("test2"),
            paper_throughput=(2.0, 2.0, 2.5),
            paper_power=(11.3, 8.4),
            notes="Example 2; bounds tuned to the paper's ~510/~408 "
                  "cycle schedules"),
        "sintran": Circuit(
            name="sintran", source=SINTRAN_SOURCE,
            allocation=allocation_for("sintran"),
            trace_maker=_sintran_traces,
            paper_throughput=(1.3, 1.7, 2.5),
            paper_power=(11.4, 4.0),
            notes="quadrant reduction + polynomial sine per sample "
                  "(control-flow intensive)"),
        "igf": Circuit(
            name="igf", source=IGF_SOURCE,
            allocation=allocation_for("igf"),
            trace_maker=_igf_traces,
            paper_throughput=(0.2, 0.3, 0.3),
            paper_power=(9.1, 7.0),
            notes="series evaluation with data-dependent convergence"),
        "pps": Circuit(
            name="pps", source=PPS_SOURCE,
            allocation=allocation_for("pps"),
            sched=SchedConfig(clock=TABLE2_CLOCK_NS,
                              allow_chaining=False),
            paper_throughput=(125.0, 333.0, 333.0),
            paper_power=(9.9, 3.6),
            notes="unchained schedule (one add per state), matching "
                  "the paper's 8-cycle sequential baseline"),
    }


CIRCUITS = _circuits()


def circuit(name: str) -> Circuit:
    """Look up a Table-2 circuit by name."""
    key = name.lower()
    if key not in CIRCUITS:
        raise BenchError(f"unknown circuit {name!r}; known: "
                         f"{sorted(CIRCUITS)}")
    return CIRCUITS[key]

"""Example 3 / Figure 4: the cross-basic-block distributivity CDFG.

Two joins merge multiply results with pass-through values; under
condition ``C`` (both joins select their multiply inputs) the graph is
isomorphic to ``a·b − a·c`` and can be rewritten to ``a·(b − c)``,
taking the matched thread from three cycles (two serialized multiplies
on the single multiplier, then a subtract) to two (one subtract, one
multiply).  The mutually exclusive input pairs ``{x2,x5}`` / ``{x3,x4}``
are expressed through complementary guards on the producing threads.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cdfg.builder import BehaviorBuilder
from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior
from ..hw import Allocation

#: Example 3's allocation: one multiplier, two subtracters (plus the
#: comparator that resolves the thread condition).
EXAMPLE3_ALLOCATION = {"mt1": 1, "sb1": 2, "cp1": 1}


def example3_behavior() -> Behavior:
    """Build the Figure-4(a) CDFG.

    ``c > 0`` plays the role of condition ``C``: when true, the join
    inputs are the two multiplies (``x1·x2``, ``x1·x3``); when false,
    they are the pass-through tokens ``x4`` / ``x5``.
    """
    b = BehaviorBuilder("example3")
    x1 = b.input("x1")
    x2 = b.input("x2")
    x3 = b.input("x3")
    b.input("x4")
    b.input("x5")
    b.input("c")
    cond = b.gt(b.var("c"), b.const(0), name="C")
    with b.if_(cond):
        b.assign("p", b.mul(x1, x2, name="*1"))
        b.assign("q", b.mul(x1, x3, name="*2"))
        b.otherwise()
        b.assign("p", b.var("x4"))
        b.assign("q", b.var("x5"))
    b.assign("r", b.sub(b.var("p"), b.var("q"), name="-1"))
    b.output("r")
    return b.finish()


def example3_allocation() -> Allocation:
    return Allocation(dict(EXAMPLE3_ALLOCATION))


def matched_path_probs(behavior: Behavior,
                       take_c: bool = True) -> Dict[int, float]:
    """Branch probabilities forcing (or avoiding) condition ``C``."""
    cond = next(n.id for n in behavior.graph if n.kind is OpKind.GT)
    return {cond: 1.0 if take_c else 0.0}

"""The paper's benchmark circuits, allocations and libraries."""

from .allocations import TABLE2_CLOCK_NS, TABLE3, allocation_for
from .circuits import CIRCUITS, Circuit, circuit
from .example3 import (EXAMPLE3_ALLOCATION, example3_allocation,
                       example3_behavior, matched_path_probs)
from .figures import kernel_table, phase_diagram
from .test1 import (P_IF_TAKEN, P_LOOP_CLOSE, TEST1_SOURCE, Test1Nodes,
                    test1_behavior, test1_branch_probs, test1_fig1c_stg,
                    test1_nodes)

__all__ = [
    "CIRCUITS", "Circuit", "EXAMPLE3_ALLOCATION", "P_IF_TAKEN",
    "P_LOOP_CLOSE", "TABLE2_CLOCK_NS", "TABLE3", "TEST1_SOURCE",
    "Test1Nodes", "allocation_for", "circuit", "example3_allocation",
    "kernel_table", "phase_diagram",
    "example3_behavior", "matched_path_probs", "test1_behavior",
    "test1_branch_probs", "test1_fig1c_stg", "test1_nodes",
]

"""Allocation constraints for the paper's experiments (Table 3).

FU type names follow Section 5's library: a1 adder, sb1 subtracter,
mt1 multiplier, cp1 less-than comparator, e1 equality comparator,
i1 incrementer, n1 multi-bit inverter, s1 shifter.
"""

from __future__ import annotations

from typing import Dict

from ..errors import BenchError
from ..hw import Allocation

#: Table 3, row by circuit.
TABLE3: Dict[str, Dict[str, int]] = {
    "gcd": {"sb1": 2, "cp1": 1, "e1": 1},
    "fir": {"a1": 1, "sb1": 4, "mt1": 1, "n1": 4},
    "test2": {"a1": 2, "sb1": 2, "cp1": 2, "i1": 2},
    "sintran": {"a1": 4, "sb1": 4, "mt1": 5, "cp1": 1, "i1": 1, "n1": 2},
    "igf": {"a1": 1, "sb1": 1, "mt1": 2, "cp1": 1, "i1": 1, "s1": 1},
    "pps": {"a1": 5},
}

#: Clock period constraint for every Table-2 run (ns).
TABLE2_CLOCK_NS = 25.0


def allocation_for(circuit: str) -> Allocation:
    """The Table-3 allocation for ``circuit`` (case-insensitive)."""
    key = circuit.lower()
    if key not in TABLE3:
        raise BenchError(
            f"no Table-3 allocation for {circuit!r}; known: "
            f"{sorted(TABLE3)}")
    return Allocation(dict(TABLE3[key]))

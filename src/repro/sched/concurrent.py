"""Concurrent loop optimization: parallel execution of independent loops.

The paper's scheduler "has the ability to parallelize the execution of
independent iterative constructs whose bodies can share resources"
(Section 1, Example 2).  Adjacent loops in a sequence with no dataflow
between them are co-scheduled:

* loops are ordered by expected iteration count ``n₁ ≤ n₂ ≤ …``;
* phase *k* runs loops *k..last* together — one iteration of each per
  kernel pass — with a modulo schedule of the union of their bodies
  under the shared allocation;
* phase *k* lasts ``n_k − n_{k−1}`` passes (the shorter loop finishes
  and drops out, exactly the ``n1 / n2`` phase structure of Figure 2).

Each phase kernel carries a per-pass exit probability ``1/m`` so the
Markov analysis sees the right expected pass count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior, LoopRegion
from ..errors import ScheduleError
from ..stg.model import ScheduledOp, Stg
from .acyclic import schedule_acyclic
from .branching import ScheduleContext
from .fragments import Frag, Port
from .pipeline import (_carried_ok, _exec_probs, continue_probability,
                       flat_body_nodes)
from .restable import ModuloTable
from .types import BlockSchedule


def arrays_accessed(ctx: ScheduleContext, nodes: Set[int],
                    writes_only: bool = False) -> Set[str]:
    """Array names touched by ``nodes``."""
    out: Set[str] = set()
    for nid in nodes:
        node = ctx.graph.nodes[nid]
        if node.kind is OpKind.STORE or (not writes_only
                                         and node.kind is OpKind.LOAD):
            out.add(node.array or "")
    return out


def independent(ctx: ScheduleContext, a: LoopRegion, b: LoopRegion) -> bool:
    """True if no dataflow or memory dependence links the two loops."""
    nodes_a = a.node_ids()
    nodes_b = b.node_ids()
    g = ctx.graph
    for nid in nodes_a:
        if any(s in nodes_b for s in g.succs(nid)):
            return False
        if any(p in nodes_b for p in g.preds(nid)):
            return False
    writes_a = arrays_accessed(ctx, nodes_a, writes_only=True)
    writes_b = arrays_accessed(ctx, nodes_b, writes_only=True)
    all_a = arrays_accessed(ctx, nodes_a)
    all_b = arrays_accessed(ctx, nodes_b)
    return not (writes_a & all_b) and not (writes_b & all_a)


def expected_iterations(ctx: ScheduleContext, loop: LoopRegion) -> float:
    """Expected body executions (exact when the trip count is known)."""
    if loop.trip_count is not None:
        return float(loop.trip_count)
    p = continue_probability(ctx, loop)
    return p / (1.0 - p)


def concurrent_fragment(ctx: ScheduleContext,
                        loops: List[LoopRegion],
                        cache=None,
                        behavior: Optional[Behavior] = None
                        ) -> Optional[Frag]:
    """Co-schedule independent loops into phase kernels.

    Returns ``None`` when any loop is not pipelineable (nested loops in
    its body) or a phase cannot be scheduled.

    When a :class:`~repro.sched.regioncache.RegionScheduleCache` (and
    the owning ``behavior``) is supplied, each phase kernel is memoized
    individually: phases are the reusable grain of a concurrent run — a
    transformation touching one loop leaves every phase that does not
    contain it byte-identical, so those kernels are spliced from the
    cache instead of re-running the modulo scheduler.
    """
    node_sets: List[Set[int]] = []
    for loop in loops:
        nodes = flat_body_nodes(loop)
        if nodes is None:
            return None
        node_sets.append(set(nodes))
    order = sorted(range(len(loops)),
                   key=lambda i: (expected_iterations(ctx, loops[i]), i))
    counts = [expected_iterations(ctx, loops[i]) for i in order]

    entry_ports: List[Port] = []
    pending: List[Port] = []
    done = 0.0
    for k, idx in enumerate(order):
        passes = counts[k] - done
        done = counts[k]
        if passes < 0.5:
            continue  # this loop finishes together with the previous one
        active = order[k:]
        union: Set[int] = set()
        for i in active:
            union |= node_sets[i]
        phase_label = "+".join(loops[i].name for i in active)
        frag = _phase_fragment(ctx, loops, active, union, passes,
                               phase_label, cache, behavior)
        if frag is None:
            return None
        if not entry_ports:
            entry_ports = frag.entries
        else:
            for sid, prob, label in pending:
                for eid, weight, _el in frag.entries:
                    ctx.stg.add_transition(sid, eid, prob * weight, label)
        pending = frag.exits
    if not entry_ports:
        return Frag.empty()
    return Frag(entry_ports, pending)


def _phase_fragment(ctx: ScheduleContext, loops: List[LoopRegion],
                    active: List[int], union: Set[int], passes: float,
                    label: str, cache, behavior: Optional[Behavior]
                    ) -> Optional[Frag]:
    """``_phase_kernel`` through the region cache.

    The key covers the active loops' exact content (in phase order) plus
    ``passes`` — the pass count is derived from the iteration count of
    the loop that *dropped out before* this phase, which is not part of
    the active suffix, so it must enter the key explicitly.  A phase
    that could not be scheduled is remembered as failed.  With no cache
    (or the ``max_entries=0`` baseline) the kernel is built in place,
    bit-identically.
    """
    if cache is None or cache.max_entries <= 0 or behavior is None:
        return _phase_kernel(ctx, loops, active, union, passes, label)
    # Runtime import: regioncache pulls in .fragments at module scope,
    # keep this edge lazy for symmetry with the driver's wiring.
    from .regioncache import CachedFragment, splice
    key = cache.key_for(behavior, [loops[i] for i in active], ctx.guards,
                        variant=f"phase:{passes!r}")
    cached = cache.get(key)
    if cached is None:
        scratch = Stg(f"{label}:phase")
        frag = _phase_kernel(ctx.with_stg(scratch), loops, active, union,
                             passes, label)
        if frag is None:
            cached = CachedFragment(Stg("failed"), build_failed=True)
        else:
            cached = CachedFragment(scratch, list(frag.entries),
                                    list(frag.exits))
            cache.states_built += len(scratch)
        cache.put(key, cached)
    elif not cached.build_failed:
        cache.states_reused += len(cached.stg)
    if cached.build_failed:
        return None
    out, _ = splice(ctx.stg, cached)
    return out


def _phase_kernel(ctx: ScheduleContext, loops: List[LoopRegion],
                  active: List[int], union: Set[int], passes: float,
                  label: str) -> Optional[Frag]:
    """One phase: a cyclic kernel executing one iteration of each loop."""
    share = ctx.guards.mutually_exclusive
    sched: Optional[BlockSchedule] = None
    ii_found = 0
    for ii in range(1, ctx.config.max_ii + 1):
        table = ModuloTable(ii, ctx.rm.capacity_of, share=share)
        try:
            candidate = schedule_acyclic(ctx.graph, sorted(union), ctx.rm,
                                         ctx.config, table,
                                         horizon=4 * ctx.config.max_ii + 64)
        except ScheduleError:
            continue
        if all(_carried_ok(ctx, loops[i], union, candidate, ii)
               for i in active):
            sched, ii_found = candidate, ii
            break
    if sched is None:
        return None
    exec_probs = _exec_probs(ctx, sorted(union))
    rm = ctx.rm
    state_ids = []
    for j in range(ii_found):
        ops = []
        for cycle in range(j, max(sched.n_cycles, ii_found), ii_found):
            for nid in sched.ops_in_cycle(cycle):
                if rm.resource_of(nid) is None and rm.delay_of(nid) <= 0:
                    continue
                ops.append(ScheduledOp(nid, iteration=cycle // ii_found,
                                       exec_prob=exec_probs.get(nid, 1.0)))
        state_ids.append(ctx.stg.add_state(ops, label=f"{label}.k{j}"))
    q = 1.0 / max(passes, 1.0)  # per-pass exit probability
    for j, sid in enumerate(state_ids):
        nxt = state_ids[(j + 1) % ii_found]
        if j == ii_found - 1:
            ctx.stg.add_transition(sid, nxt, 1.0 - q, label)
        else:
            ctx.stg.add_transition(sid, nxt, 1.0)
    exit_port: Port = (state_ids[-1], q, f"!{label}")
    return Frag([(state_ids[0], 1.0, "")], [exit_port])

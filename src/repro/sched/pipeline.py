"""Software pipelining of loop bodies (modulo scheduling).

This implements the paper's "implicit loop unrolling" and "functional
pipelining (even across if constructs)": iterations are overlapped with
an initiation interval II chosen as the smallest value for which

* a modulo reservation table accommodates all operations (mutually
  exclusive guarded operations may share a functional unit), and
* every loop-carried dependence (header joins and same-array
  store→load pairs) closes within II cycles.

Conditional operations are predicated: they are scheduled
unconditionally (a cycle after their condition resolves) and annotated
with their execution probability.

The kernel is emitted as II cyclic states; iterations drain for
``depth − 1 − t_cond`` cycles after the loop condition finally fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cdfg.ops import OpKind
from ..cdfg.regions import BlockRegion, LoopRegion, SeqRegion
from ..errors import ScheduleError
from ..stg.model import ScheduledOp
from .acyclic import schedule_acyclic
from .branching import ScheduleContext
from .fragments import Frag, Port
from .restable import ModuloTable
from .types import BlockSchedule


@dataclass
class PipelinedLoop:
    """Result of pipelining one loop."""

    frag: Frag
    ii: int
    depth: int


def flat_body_nodes(loop: LoopRegion) -> Optional[List[int]]:
    """Body + condition ops if the body has no nested loops, else None."""
    for region in loop.body.walk():
        if isinstance(region, LoopRegion):
            return None
    nodes = set(loop.cond_nodes)
    nodes |= loop.body.node_ids()
    return sorted(nodes)


def continue_probability(ctx: ScheduleContext, loop: LoopRegion) -> float:
    """P(loop condition true): exact from trip count, else profiled."""
    if loop.trip_count is not None:
        n = loop.trip_count
        p = n / (n + 1.0)
    else:
        p = ctx.prob(loop.cond)
    # A continue probability of 1 would make the STG non-terminating.
    return min(p, 1.0 - 1e-6)


def _exec_probs(ctx: ScheduleContext, nodes: List[int]) -> Dict[int, float]:
    probs: Dict[int, float] = {}
    for nid in nodes:
        p = 1.0
        for cond, pol in ctx.graph.control_inputs(nid):
            pc = ctx.prob(cond)
            p *= pc if pol else (1.0 - pc)
        probs[nid] = p
    return probs


def _carried_ok(ctx: ScheduleContext, loop: LoopRegion, ids: Set[int],
                sched: BlockSchedule, ii: int) -> bool:
    """Do all loop-carried dependences close within II cycles?"""
    g = ctx.graph
    for lv in loop.loop_vars:
        upd = g.data_input(lv.join, 1)
        if upd == lv.join or upd not in ids:
            continue
        upd_end = sched.slots[upd].end_cycle
        for consumer, _port in g.data_users(lv.join):
            if consumer in ids:
                start = sched.slots[consumer].start_cycle
                if upd_end + 1 > ii + start:
                    return False
    # Memory-carried: a store in iteration i must complete before the
    # next iteration's conflicting access to the same array starts.
    by_array: Dict[str, List[int]] = {}
    for nid in ids:
        node = g.nodes[nid]
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            by_array.setdefault(node.array or "", []).append(nid)
    for accesses in by_array.values():
        stores = [n for n in accesses
                  if g.nodes[n].kind is OpKind.STORE]
        if not stores:
            continue
        for store in stores:
            s_end = sched.slots[store].end_cycle
            for other in accesses:
                o_start = sched.slots[other].start_cycle
                if s_end + 1 > ii + o_start:
                    return False
    return True


def pipeline_loop(ctx: ScheduleContext,
                  loop: LoopRegion) -> Optional[PipelinedLoop]:
    """Attempt to software-pipeline ``loop``; None if not applicable."""
    nodes = flat_body_nodes(loop)
    if nodes is None:
        return None
    ids = set(nodes)
    if not ids:
        return None
    share = ctx.guards.mutually_exclusive
    sched: Optional[BlockSchedule] = None
    ii_found: Optional[int] = None
    for ii in range(1, ctx.config.max_ii + 1):
        table = ModuloTable(ii, ctx.rm.capacity_of, share=share)
        try:
            candidate = schedule_acyclic(ctx.graph, nodes, ctx.rm,
                                         ctx.config, table,
                                         horizon=4 * ctx.config.max_ii + 64)
        except ScheduleError:
            continue
        if _carried_ok(ctx, loop, ids, candidate, ii):
            sched, ii_found = candidate, ii
            break
    if sched is None or ii_found is None:
        return None
    frag = _emit(ctx, loop, ids, sched, ii_found)
    return PipelinedLoop(frag, ii_found, sched.n_cycles)


def _emit(ctx: ScheduleContext, loop: LoopRegion, ids: Set[int],
          sched: BlockSchedule, ii: int) -> Frag:
    stg = ctx.stg
    rm = ctx.rm
    depth = max(sched.n_cycles, ii)
    t_cond = (sched.slots[loop.cond].end_cycle
              if loop.cond in sched.slots else 0)
    p = continue_probability(ctx, loop)
    exec_probs = _exec_probs(ctx, sorted(ids))
    name = loop.name

    def ops_at_relative(cycle: int, iteration: int) -> List[ScheduledOp]:
        out = []
        for nid in sched.ops_in_cycle(cycle):
            if rm.resource_of(nid) is None and rm.delay_of(nid) <= 0:
                continue
            out.append(ScheduledOp(nid, iteration=iteration,
                                   exec_prob=exec_probs.get(nid, 1.0)))
        return out

    # Drain chain: completes the final iteration after its condition
    # check; shared by every exit point.
    drain_len = max(0, depth - 1 - t_cond)
    drain_ids: List[int] = []
    for k in range(drain_len):
        drain_ids.append(stg.add_state(ops_at_relative(t_cond + 1 + k, 0),
                                       label=f"{name}.drain{k}"))
    for a, b in zip(drain_ids, drain_ids[1:]):
        stg.add_transition(a, b, 1.0)

    exits: List[Port] = []

    def add_exit(sid: int) -> None:
        if drain_ids:
            stg.add_transition(sid, drain_ids[0], 1.0 - p,
                               f"!{name}")
        else:
            exits.append((sid, 1.0 - p, f"!{name}"))
    if drain_ids:
        exits.append((drain_ids[-1], 1.0, ""))

    # Prologue: cycles before the steady state (one state per cycle).
    prologue_len = depth - ii
    prologue_ids: List[int] = []
    for c in range(prologue_len):
        ops: List[ScheduledOp] = []
        i = 0
        while i * ii <= c:
            for op in ops_at_relative(c - i * ii, i):
                ops.append(op)
            i += 1
        prologue_ids.append(stg.add_state(ops, label=f"{name}.pro{c}"))

    # Kernel: II cyclic states.
    kernel_ids: List[int] = []
    for j in range(ii):
        ops = []
        for cycle in range(j, depth, ii):
            for op in ops_at_relative(cycle, cycle // ii):
                ops.append(op)
        kernel_ids.append(stg.add_state(ops, label=f"{name}.k{j}"))

    cond_offset = t_cond % ii
    # Kernel transitions.
    for j in range(ii):
        nxt = kernel_ids[(j + 1) % ii]
        if j == cond_offset:
            add_exit(kernel_ids[j])
            stg.add_transition(kernel_ids[j], nxt, p, name)
        else:
            stg.add_transition(kernel_ids[j], nxt, 1.0)

    # Prologue transitions (with exit checks where a condition resolves).
    for c, sid in enumerate(prologue_ids):
        nxt = (prologue_ids[c + 1] if c + 1 < prologue_len
               else kernel_ids[prologue_len % ii])
        if c >= t_cond and (c - t_cond) % ii == 0:
            add_exit(sid)
            stg.add_transition(sid, nxt, p, name)
        else:
            stg.add_transition(sid, nxt, 1.0)

    entry = prologue_ids[0] if prologue_ids else kernel_ids[0]
    return Frag([(entry, 1.0, "")], exits)

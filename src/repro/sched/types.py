"""Shared scheduler data types."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..hw import Allocation, Library, memory_resource_name


@dataclass
class SchedConfig:
    """Scheduler policy knobs.

    Attributes:
        clock: clock period in ns.
        allow_chaining: let data-dependent ops share a cycle when their
            combined delay fits in the clock period.
        allow_pipelining: enable modulo scheduling of loop bodies (the
            paper's implicit loop unrolling / functional pipelining).
        allow_concurrent_loops: co-schedule independent adjacent loops
            (the paper's concurrent loop optimization).
        max_ii: upper bound on the initiation interval search.
        default_branch_prob: probability used for conditions with no
            profile information.
        max_states: abort scheduling when the STG grows beyond this
            (guards against path-explosion on degenerate inputs; the
            candidate is then scored unschedulable).
    """

    clock: float = 25.0
    allow_chaining: bool = True
    allow_pipelining: bool = True
    allow_concurrent_loops: bool = True
    max_ii: int = 256
    default_branch_prob: float = 0.5
    max_states: int = 3_000


@dataclass(frozen=True)
class Position:
    """A point in schedule time: cycle plus an ns offset inside it."""

    cycle: int
    ns: float

    def advanced_to_cycle(self, cycle: int) -> "Position":
        return Position(cycle, 0.0) if cycle > self.cycle else self

    @staticmethod
    def origin() -> "Position":
        return Position(0, 0.0)

    def __lt__(self, other: "Position") -> bool:
        return (self.cycle, self.ns) < (other.cycle, other.ns)


def later(a: "Position", b: "Position") -> "Position":
    """The later of two positions."""
    return b if a < b else a


@dataclass(frozen=True)
class OpSlot:
    """Where an operation landed in the schedule."""

    start_cycle: int
    start_ns: float
    end_cycle: int
    end_ns: float

    @property
    def end_position(self) -> Position:
        return Position(self.end_cycle, self.end_ns)


@dataclass
class BlockSchedule:
    """Result of scheduling an acyclic op set."""

    slots: Dict[int, OpSlot] = field(default_factory=dict)
    n_cycles: int = 0

    def ops_in_cycle(self, cycle: int) -> List[int]:
        """Ops whose *start* cycle is ``cycle`` (sorted)."""
        return sorted(n for n, s in self.slots.items()
                      if s.start_cycle == cycle)


class ResourceModel:
    """Resolves each CDFG node to the resource it occupies.

    Wraps the component library, the allocation, and the behavior's
    array declarations.  Shift-by-constant operations are wiring (free),
    as are the paper's cost-free kinds (joins, copies, constants).
    """

    def __init__(self, graph: Graph, library: Library,
                 allocation: Allocation,
                 array_ports: Optional[Dict[str, int]] = None) -> None:
        self.graph = graph
        self.library = library
        self.allocation = allocation
        self.array_ports = dict(array_ports or {})

    def resource_of(self, nid: int) -> Optional[str]:
        """Resource name the node occupies, or ``None`` if free."""
        node = self.graph.nodes[nid]
        kind = node.kind
        if kind in FREE_KINDS:
            return None
        if kind in (OpKind.LOAD, OpKind.STORE):
            return memory_resource_name(node.array or "")
        if kind in (OpKind.SHL, OpKind.SHR) and self._const_shift(nid):
            return None
        fu = self.library.fu_for(kind)
        return fu.name if fu is not None else None

    def capacity_of(self, resource: str) -> int:
        """Number of instances of ``resource`` available per cycle."""
        if resource.startswith("mem:"):
            return self.array_ports.get(resource[4:], 1)
        return self.allocation.count(resource)

    def delay_of(self, nid: int) -> float:
        """Propagation delay of the node in ns (0 for free nodes)."""
        node = self.graph.nodes[nid]
        kind = node.kind
        if kind in FREE_KINDS:
            return 0.0
        if kind in (OpKind.LOAD, OpKind.STORE):
            return self.library.memory.delay
        if kind in (OpKind.SHL, OpKind.SHR) and self._const_shift(nid):
            return 0.0
        fu = self.library.fu_for(kind)
        return fu.delay if fu is not None else 0.0

    def cycles_of(self, nid: int, clock: float) -> int:
        """Cycles the node occupies when started at offset 0."""
        delay = self.delay_of(nid)
        if delay <= 0:
            return 0
        return max(1, math.ceil(delay / clock - 1e-9))

    def _const_shift(self, nid: int) -> bool:
        src = self.graph.input_ports(nid).get(1)
        return (src is not None
                and self.graph.nodes[src].kind is OpKind.CONST)


#: Branch-probability map: condition node id → P(condition is true).
BranchProbs = Dict[int, float]


def prob_true(probs: Optional[BranchProbs], cond: int,
              default: float = 0.5) -> float:
    """Profiled probability that ``cond`` evaluates true."""
    if probs is None:
        return default
    return min(max(probs.get(cond, default), 0.0), 1.0)

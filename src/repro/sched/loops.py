"""Loop scheduling: sequential iteration vs software pipelining.

Every loop can be scheduled *sequentially*: the condition section is a
block fragment, branching into the body fragment (which loops back) or
out of the loop.  When the body is pipelineable
(:mod:`repro.sched.pipeline`), both variants are built into scratch STGs
and the one with the smaller expected schedule length is kept — this is
how the scheduler realizes the paper's implicit loop unrolling only when
it actually pays off.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..cdfg.regions import BlockRegion, LoopRegion, Region, SeqRegion
from ..errors import ScheduleError
from ..numeric import get_backend
from ..stg.markov import average_schedule_length, average_schedule_lengths
from ..stg.model import Stg
from .branching import ScheduleContext, block_fragment
from .fragments import Frag, Port, compose, connect, single_entry
from .pipeline import continue_probability, pipeline_loop

#: Builds a region fragment; injected by the driver to avoid a cycle.
RegionScheduler = Callable[[ScheduleContext, Region], Frag]


def sequential_loop(ctx: ScheduleContext, loop: LoopRegion,
                    region_fn: RegionScheduler) -> Frag:
    """Schedule ``loop`` with non-overlapping iterations."""
    p = continue_probability(ctx, loop)
    cond_frag = block_fragment(ctx, loop.cond_nodes,
                               label=f"{loop.name}.c")
    if cond_frag.is_empty:
        # Condition is pure wiring (e.g. a loop variable used directly):
        # materialize a one-cycle check state.
        check = ctx.stg.add_state(label=f"{loop.name}.check")
        cond_frag = Frag.linear(check, check)
    body_frag = region_fn(ctx, loop.body)
    cond_entry = single_entry(ctx.stg, cond_frag,
                              label=f"{loop.name}.dispatch")
    exits: List[Port] = []
    for sid, prob, _label in cond_frag.exits:
        if body_frag.is_empty:
            ctx.stg.add_transition(sid, cond_entry, prob * p, loop.name)
        else:
            for eid, weight, _el in body_frag.entries:
                ctx.stg.add_transition(sid, eid, prob * p * weight,
                                       loop.name)
        exits.append((sid, prob * (1.0 - p), f"!{loop.name}"))
    if not body_frag.is_empty:
        connect(ctx.stg, body_frag.exits, [(cond_entry, 1.0, "")])
    return Frag(cond_frag.entries, exits)


def loop_fragment(ctx: ScheduleContext, loop: LoopRegion,
                  region_fn: RegionScheduler) -> Frag:
    """Schedule a loop, choosing the better of sequential / pipelined.

    Bodies with many conditionals are scheduled predicated-pipelined
    whenever possible: their sequential (branching-state) schedule is
    exponential in the number of conditions and only worth building for
    small bodies.
    """
    if not ctx.config.allow_pipelining:
        return sequential_loop(ctx, loop, region_fn)
    if get_backend().batched and _cond_count(ctx, loop) <= 8:
        return _loop_fragment_batched(ctx, loop, region_fn)
    pipe_len = _measure(ctx, lambda c: _pipelined_or_none(c, loop))
    if pipe_len is not None and _cond_count(ctx, loop) > 8:
        pipelined = pipeline_loop(ctx, loop)
        assert pipelined is not None
        return pipelined.frag
    seq_len = _measure(ctx, lambda c: sequential_loop(c, loop, region_fn))
    if pipe_len is not None and (seq_len is None or pipe_len < seq_len):
        pipelined = pipeline_loop(ctx, loop)
        assert pipelined is not None
        return pipelined.frag
    return sequential_loop(ctx, loop, region_fn)


def _loop_fragment_batched(ctx: ScheduleContext, loop: LoopRegion,
                           region_fn: RegionScheduler) -> Frag:
    """:func:`loop_fragment` for the batched backend, small bodies.

    Below the condition-count shortcut both variants always get
    measured, so their chains can be built first and solved in one
    flush (pipelined first, preserving the sequential path's error
    order).  The winner comparison — and the winner rebuild — is
    unchanged, so the chosen fragment is identical to the scalar
    path's.
    """
    pipe_scratch = _measure_build(ctx, lambda c: _pipelined_or_none(c, loop))
    seq_scratch = _measure_build(
        ctx, lambda c: sequential_loop(c, loop, region_fn))
    stgs = [s for s in (pipe_scratch, seq_scratch) if s is not None]
    lengths = iter(average_schedule_lengths(stgs))
    pipe_len = next(lengths) if pipe_scratch is not None else None
    seq_len = next(lengths) if seq_scratch is not None else None
    if pipe_len is not None and (seq_len is None or pipe_len < seq_len):
        pipelined = pipeline_loop(ctx, loop)
        assert pipelined is not None
        return pipelined.frag
    return sequential_loop(ctx, loop, region_fn)


def _cond_count(ctx: ScheduleContext, loop: LoopRegion) -> int:
    """Distinct condition sources guarding operations in the body."""
    conds = set()
    for nid in loop.body.node_ids():
        for cond, _pol in ctx.graph.control_inputs(nid):
            conds.add(cond)
    return len(conds)


def _pipelined_or_none(ctx: ScheduleContext,
                       loop: LoopRegion) -> Optional[Frag]:
    result = pipeline_loop(ctx, loop)
    return result.frag if result is not None else None


def _measure_build(ctx: ScheduleContext,
                   build: Callable[[ScheduleContext], Optional[Frag]]
                   ) -> Optional[Stg]:
    """Build a fragment into a measuring scratch STG; None on failure."""
    scratch = Stg("scratch")
    sub = ctx.with_stg(scratch)
    try:
        frag = build(sub)
    except ScheduleError:
        return None
    if frag is None:
        return None
    entry = scratch.add_state(label="in")
    exit_ = scratch.add_state(label="out")
    if frag.is_empty:
        scratch.add_transition(entry, exit_, 1.0)
    else:
        connect(scratch, [(entry, 1.0, "")], frag.entries)
        connect(scratch, frag.exits, [(exit_, 1.0, "")])
    scratch.entry, scratch.exit = entry, exit_
    return scratch


def _measure(ctx: ScheduleContext,
             build: Callable[[ScheduleContext], Optional[Frag]]
             ) -> Optional[float]:
    """Expected cycles of a fragment, built into a scratch STG."""
    scratch = _measure_build(ctx, build)
    if scratch is None:
        return None
    return average_schedule_length(scratch)

"""STG fragments: composable pieces of a schedule under construction.

A :class:`Frag` is a sub-graph of the STG being built, exposing

* ``entries`` — weighted entry points ``(state, probability, label)``
  whose probabilities sum to 1.  Most fragments have a single entry;
  a fragment that *immediately* branches on an already-resolved
  condition has one entry per polarity.
* ``exits`` — dangling exits ``(state, probability, label)`` waiting to
  be connected to whatever comes next.

An *empty* fragment contributes no states (e.g. a block containing only
cost-free wiring operations) and composes as the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cdfg.ir import Graph
from ..stg.model import ScheduledOp, Stg
from .types import BlockSchedule, ResourceModel

#: A weighted port: (state id, probability, transition label).
Port = Tuple[int, float, str]


@dataclass
class Frag:
    """A fragment of the STG with weighted entries and dangling exits."""

    entries: List[Port] = field(default_factory=list)
    exits: List[Port] = field(default_factory=list)

    @staticmethod
    def empty() -> "Frag":
        return Frag()

    @staticmethod
    def linear(entry: int, exit_: int) -> "Frag":
        return Frag([(entry, 1.0, "")], [(exit_, 1.0, "")])

    @property
    def is_empty(self) -> bool:
        return not self.entries

    @property
    def sole_entry(self) -> int:
        """The entry state, when the fragment has exactly one."""
        assert len(self.entries) == 1
        return self.entries[0][0]


def connect(stg: Stg, exits: Sequence[Port],
            entries: Sequence[Port]) -> None:
    """Wire every dangling exit to every entry, multiplying weights."""
    for sid, prob, label in exits:
        for eid, weight, elabel in entries:
            stg.add_transition(sid, eid, prob * weight,
                               label or elabel)


def single_entry(stg: Stg, frag: Frag, label: str = "") -> int:
    """A state from which the fragment is entered with probability 1.

    Creates a dispatch state only when the fragment has multiple
    weighted entries.
    """
    if len(frag.entries) == 1:
        return frag.sole_entry
    dispatch = stg.add_state(label=label or "dispatch")
    connect(stg, [(dispatch, 1.0, "")], frag.entries)
    return dispatch


def compose(stg: Stg, frags: Sequence[Frag]) -> Frag:
    """Sequentially compose fragments, skipping empty ones."""
    entries: List[Port] = []
    pending: List[Port] = []
    for frag in frags:
        if frag.is_empty:
            continue
        if not entries:
            entries = list(frag.entries)
        else:
            connect(stg, pending, frag.entries)
        pending = list(frag.exits)
    return Frag(entries, pending)


def states_from_schedule(stg: Stg, graph: Graph, rm: ResourceModel,
                         sched: BlockSchedule, *,
                         last_cycle: Optional[int] = None, label: str = "",
                         exec_probs: Optional[dict] = None) -> Frag:
    """Emit one STG state per schedule cycle and chain them linearly.

    Only cost-bearing operations (those occupying a resource or taking
    time) appear in state op lists; joins, copies and constants are
    wiring.  Multi-cycle operations are listed in their start state.

    Args:
        last_cycle: emit states only for cycles ``0..last_cycle`` and
            skip ops finishing later (they are re-scheduled in branch
            fragments); default is the whole schedule.
        exec_probs: optional per-node execution probabilities (for
            predicated operations in pipelined kernels).
    """
    n = sched.n_cycles if last_cycle is None else last_cycle + 1
    if n <= 0:
        return Frag.empty()
    state_ids = []
    for cycle in range(n):
        ops = []
        for nid in sched.ops_in_cycle(cycle):
            slot = sched.slots[nid]
            if last_cycle is not None and slot.end_cycle > last_cycle:
                continue  # deferred to a branch fragment
            if rm.resource_of(nid) is None and rm.delay_of(nid) <= 0:
                continue
            prob = exec_probs.get(nid, 1.0) if exec_probs else 1.0
            ops.append(ScheduledOp(nid, iteration=0, exec_prob=prob))
        state_ids.append(stg.add_state(ops, label=f"{label}{cycle}"))
    for a, b in zip(state_ids, state_ids[1:]):
        stg.add_transition(a, b, 1.0)
    return Frag.linear(state_ids[0], state_ids[-1])

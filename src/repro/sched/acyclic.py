"""Resource-constrained list scheduling of acyclic operation sets.

This is the scheduling kernel everything else builds on: blocks, loop
bodies (via the modulo table) and concurrent-loop compositions all call
:func:`schedule_acyclic` with different reservation tables.

Key rules (see DESIGN.md):

* **chaining** — a data-dependent op may start in the same cycle as its
  producer if the accumulated combinational delay fits within the clock
  period;
* **control dependencies** — an op guarded by a condition starts no
  earlier than the cycle *after* the condition resolves (the controller
  needs a state boundary to act on the condition; Figure 1(c));
* **memory ordering** — order edges separate conflicting accesses by at
  least a cycle boundary;
* **multi-cycle ops** — an op slower than the clock starts at offset 0
  and occupies ``ceil(delay/clock)`` cycles.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Optional

from ..errors import ScheduleError
from ..cdfg.ir import Graph
from .restable import LinearTable, ModuloTable
from .types import (BlockSchedule, OpSlot, Position, ResourceModel,
                    SchedConfig, later)

_EPS = 1e-9


def compute_priorities(graph: Graph, nodes: Iterable[int],
                       rm: ResourceModel) -> Dict[int, float]:
    """Critical-path-to-sink priority, in ns, within the node set."""
    ids = set(nodes)
    order = graph.topo_order(ids)
    prio: Dict[int, float] = {}
    for nid in reversed(order):
        succ_best = 0.0
        for s in graph.succs(nid):
            if s in ids:
                succ_best = max(succ_best, prio.get(s, 0.0))
        prio[nid] = rm.delay_of(nid) + succ_best
    return prio


def schedule_acyclic(graph: Graph, nodes: Iterable[int], rm: ResourceModel,
                     config: SchedConfig, table,
                     earliest: Optional[Dict[int, Position]] = None,
                     horizon: int = 100_000) -> BlockSchedule:
    """List-schedule ``nodes`` against the given reservation table.

    Args:
        graph: the CDFG.
        nodes: the acyclic op set to schedule.  Predecessors outside the
            set are assumed available at the fragment origin.
        rm: resource model (delays, FU mapping, capacities).
        config: policy knobs (clock, chaining).
        table: a :class:`LinearTable` or :class:`ModuloTable`.
        earliest: optional per-node lower bounds on start position.
        horizon: give up after scanning this many cycles for one op
            (prevents infinite scans on inconsistent constraints).

    Returns:
        A :class:`BlockSchedule` with one slot per node.

    Raises:
        ScheduleError: if some op can never be placed (e.g. zero
            allocation for its FU type).
    """
    ids = set(nodes)
    prio = compute_priorities(graph, ids, rm)
    indeg: Dict[int, int] = {}
    for nid in ids:
        indeg[nid] = sum(1 for p in graph.preds(nid) if p in ids)
    ready = [(-prio[n], n) for n in ids if indeg[n] == 0]
    heapq.heapify(ready)
    sched = BlockSchedule()
    placed = 0
    while ready:
        _negp, nid = heapq.heappop(ready)
        slot = _place_op(graph, nid, ids, rm, config, table, sched,
                         earliest, horizon)
        sched.slots[nid] = slot
        placed += 1
        for s in graph.succs(nid):
            if s in ids:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (-prio[s], s))
    if placed != len(ids):
        raise ScheduleError(
            f"scheduled {placed}/{len(ids)} ops; dependence cycle in "
            f"op set")
    sched.n_cycles = max(
        (s.end_cycle + 1 for s in sched.slots.values()), default=0)
    return sched


def _earliest_position(graph: Graph, nid: int, ids, rm: ResourceModel,
                       sched: BlockSchedule, config: SchedConfig,
                       earliest: Optional[Dict[int, Position]]) -> Position:
    pos = Position.origin()
    if earliest and nid in earliest:
        pos = later(pos, earliest[nid])
    for src in graph.input_ports(nid).values():
        if src in ids and src in sched.slots:
            s = sched.slots[src]
            if config.allow_chaining:
                cand = Position(s.end_cycle, s.end_ns)
            else:
                cand = (Position(s.end_cycle + 1, 0.0)
                        if s.end_ns > _EPS else Position(s.end_cycle, 0.0))
            pos = later(pos, cand)
    free = rm.resource_of(nid) is None and rm.delay_of(nid) <= 0
    for src, _pol in graph.control_inputs(nid):
        if src in ids and src in sched.slots:
            s = sched.slots[src]
            if free:
                # Copies / joins / selects are wiring: their guard is a
                # mux select that resolves combinationally, so they may
                # chain in the condition's own cycle.
                pos = later(pos, Position(s.end_cycle, s.end_ns))
            else:
                # Resource-occupying ops are gated by the controller and
                # start no earlier than the cycle after the condition.
                pos = later(pos, Position(s.end_cycle + 1, 0.0))
    for src in graph.order_preds(nid):
        if src in ids and src in sched.slots:
            pos = later(pos,
                        Position(sched.slots[src].end_cycle + 1, 0.0))
    return pos


def _place_op(graph: Graph, nid: int, ids, rm: ResourceModel,
              config: SchedConfig, table, sched: BlockSchedule,
              earliest: Optional[Dict[int, Position]],
              horizon: int) -> OpSlot:
    pos = _earliest_position(graph, nid, ids, rm, sched, config,
                             earliest)
    delay = rm.delay_of(nid)
    resource = rm.resource_of(nid)
    clock = config.clock
    if delay <= 0 and resource is None:
        return OpSlot(pos.cycle, pos.ns, pos.cycle, pos.ns)
    if resource is not None and rm.capacity_of(resource) < 1:
        node = graph.nodes[nid]
        raise ScheduleError(
            f"op {nid} ({node.label()}) needs resource {resource!r} but "
            f"the allocation provides none")
    if isinstance(table, ModuloTable):
        min_cycles = max(1, math.ceil(delay / clock - _EPS))
        if min_cycles > table.ii:
            raise ScheduleError(
                f"op {nid} occupies {min_cycles} cycles, exceeding the "
                f"initiation interval {table.ii}")
    cycle, ns = pos.cycle, pos.ns
    for _ in range(horizon):
        if delay <= clock - ns + _EPS:
            n_cycles = 1
            end_cycle, end_ns = cycle, ns + delay
        elif ns <= _EPS and delay > clock:
            n_cycles = max(1, math.ceil(delay / clock - _EPS))
            end_cycle = cycle + n_cycles - 1
            end_ns = delay - (n_cycles - 1) * clock
        else:
            cycle, ns = cycle + 1, 0.0
            continue
        if resource is None or table.can_place(cycle, n_cycles, resource,
                                               nid):
            if resource is not None:
                table.place(cycle, n_cycles, resource, nid)
            return OpSlot(cycle, ns, end_cycle, end_ns)
        cycle, ns = cycle + 1, 0.0
        if isinstance(table, LinearTable):
            # Jump over saturated cycles in one step (the per-resource
            # free-list); placements are identical to the linear scan.
            cycle = table.next_free_cycle(cycle, resource)
    node = graph.nodes[nid]
    cap = rm.capacity_of(resource) if resource else 0
    raise ScheduleError(
        f"cannot place op {nid} ({node.label()}) on {resource!r} "
        f"(capacity {cap}) within {horizon} cycles")

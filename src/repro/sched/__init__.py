"""Control-flow intensive scheduling: behavior → STG.

The scheduler provides the capabilities the paper attributes to its
in-house Wavesched engine [13]: chained, resource-constrained list
scheduling, branching state sequences for conditionals, implicit loop
unrolling / functional pipelining (modulo scheduling with predication),
and concurrent execution of independent loops.
"""

from .acyclic import compute_priorities, schedule_acyclic
from .branching import ScheduleContext, block_fragment
from .concurrent import concurrent_fragment, expected_iterations, independent
from .driver import ScheduleResult, Scheduler, schedule_behavior
from .fragments import Frag, compose, connect, single_entry
from .loops import loop_fragment, sequential_loop
from .pipeline import PipelinedLoop, continue_probability, pipeline_loop
from .regioncache import (CachedFragment, RegionScheduleCache, splice,
                          unit_key)
from .restable import LinearTable, ModuloTable
from .types import (BlockSchedule, BranchProbs, OpSlot, Position,
                    ResourceModel, SchedConfig, prob_true)

__all__ = [
    "BlockSchedule", "BranchProbs", "CachedFragment", "Frag",
    "LinearTable", "ModuloTable", "OpSlot", "PipelinedLoop", "Position",
    "RegionScheduleCache", "ResourceModel", "SchedConfig",
    "ScheduleContext", "ScheduleResult", "Scheduler", "block_fragment",
    "compose", "compute_priorities", "concurrent_fragment", "connect",
    "continue_probability", "expected_iterations", "independent",
    "loop_fragment", "pipeline_loop", "prob_true", "schedule_acyclic",
    "schedule_behavior", "sequential_loop", "single_entry", "splice",
    "unit_key",
]

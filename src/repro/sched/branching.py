"""Path-based scheduling of guarded blocks.

An if-converted block contains operations guarded by condition literals
(control edges).  Hardware controllers realize this as *branching state
sequences* (paper Figure 1(c): the taken path goes through different
states than the else path), so the block scheduler recursively:

1. schedules the operations whose guards are already resolved,
2. picks the earliest-resolving condition that still guards pending
   operations,
3. splits the state sequence at that condition's completion cycle, and
4. recurses into both polarities with the condition added to the
   resolved assignment.

Operations that could not finish before the split are re-scheduled
inside both branches (the controller duplicates them per path, exactly
like an FSM synthesized from a branching schedule).  A pending guard
whose condition resolved *before* the current fragment (in an enclosing
prefix or another block) causes an immediate entry branch: the fragment
then has one weighted entry per polarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..cdfg.analysis import GuardAnalysis
from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior
from ..errors import ScheduleError
from ..stg.model import Stg
from .acyclic import schedule_acyclic
from .fragments import Frag, Port, states_from_schedule
from .restable import LinearTable
from .types import BranchProbs, ResourceModel, SchedConfig, prob_true


@dataclass
class ScheduleContext:
    """Everything the fragment schedulers need, bundled."""

    behavior: Behavior
    graph: Graph
    rm: ResourceModel
    config: SchedConfig
    probs: Optional[BranchProbs]
    stg: Stg
    guards: GuardAnalysis

    def prob(self, cond: int) -> float:
        """Profiled probability that ``cond`` is true.

        Respects the behavior's condition aliases (a cloned condition
        inherits the original's profile) and weights (a condition that
        advances ``w`` iterations per check sees ``p → p/(w-(w-1)p)``,
        preserving the expected iteration count under unrolling).
        """
        base = self.behavior.cond_aliases.get(cond, cond)
        p = prob_true(self.probs, base, self.config.default_branch_prob)
        w = self.behavior.cond_weights.get(cond, 1)
        if w > 1:
            p = p / (w - (w - 1) * p)
        return p

    def with_stg(self, stg: Stg) -> "ScheduleContext":
        """The same context writing into a different STG."""
        return ScheduleContext(self.behavior, self.graph, self.rm,
                               self.config, self.probs, stg, self.guards)


def block_fragment(ctx: ScheduleContext, node_ids: Iterable[int],
                   assignment: Optional[Dict[int, bool]] = None,
                   label: str = "", _depth: int = 0) -> Frag:
    """Schedule a guarded block into a branching STG fragment."""
    assignment = dict(assignment or {})
    ids = set(node_ids)
    graph = ctx.graph
    if _depth > 64:
        raise ScheduleError("guard nesting deeper than 64; giving up")
    if len(ctx.stg) > ctx.config.max_states:
        raise ScheduleError(
            f"schedule exceeded {ctx.config.max_states} states "
            f"(path explosion)")

    status = _classify_all(graph, ids, assignment)
    ready = [nid for nid in sorted(ids) if status[nid] == "ready"]
    pending = [nid for nid in sorted(ids) if status[nid] == "pending"]

    # Conditions resolved before this fragment (outside the id set and
    # not yet assigned) force an immediate entry branch.
    external = _external_conds(graph, pending, ids, assignment)
    if external:
        return _entry_branch(ctx, ids, assignment, min(external), label,
                             _depth)

    if not ready and not pending:
        return Frag.empty()
    if not ready:
        raise ScheduleError(
            "block has guarded operations but no schedulable condition; "
            "malformed guard nesting")

    table = LinearTable(ctx.rm.capacity_of)
    sched = schedule_acyclic(graph, ready, ctx.rm, ctx.config, table)

    if not pending:
        return states_from_schedule(ctx.stg, graph, ctx.rm, sched,
                                    label=label)

    # Branch on the earliest-finishing scheduled condition that guards
    # pending work.
    candidates: Set[int] = set()
    for nid in pending:
        for cond, _pol in graph.control_inputs(nid):
            if cond in sched.slots and cond not in assignment:
                candidates.add(cond)
    if not candidates:
        raise ScheduleError(
            f"pending guarded ops {pending[:5]} reference conditions that "
            f"never resolve; malformed guards")
    branch_cond = min(candidates,
                      key=lambda c: (sched.slots[c].end_cycle, c))
    split = sched.slots[branch_cond].end_cycle

    leftover = [nid for nid in ready
                if sched.slots[nid].end_cycle > split]
    shared = states_from_schedule(ctx.stg, graph, ctx.rm, sched,
                                  last_cycle=split, label=label)
    branch_state = shared.exits[0][0]

    p = ctx.prob(branch_cond)
    exits: List[Port] = []
    for polarity, prob in ((True, p), (False, 1.0 - p)):
        sub_assignment = dict(assignment)
        sub_assignment[branch_cond] = polarity
        frag = block_fragment(ctx, leftover + pending, sub_assignment,
                              label=f"{label}{'T' if polarity else 'F'}",
                              _depth=_depth + 1)
        tag = f"{'' if polarity else '!'}c{branch_cond}"
        if frag.is_empty:
            exits.append((branch_state, prob, tag))
        else:
            for eid, weight, _elabel in frag.entries:
                ctx.stg.add_transition(branch_state, eid, prob * weight,
                                       tag)
            exits.extend(frag.exits)
    return Frag(shared.entries, exits)


def _entry_branch(ctx: ScheduleContext, ids: Set[int],
                  assignment: Dict[int, bool], cond: int, label: str,
                  depth: int) -> Frag:
    """Branch immediately (no shared prefix) on a pre-resolved cond."""
    p = ctx.prob(cond)
    entries: List[Port] = []
    exits: List[Port] = []
    for polarity, prob in ((True, p), (False, 1.0 - p)):
        sub_assignment = dict(assignment)
        sub_assignment[cond] = polarity
        frag = block_fragment(ctx, ids, sub_assignment,
                              label=f"{label}{'T' if polarity else 'F'}",
                              _depth=depth + 1)
        tag = f"{'' if polarity else '!'}c{cond}"
        if frag.is_empty:
            # Nothing executes on this polarity: materialize an idle
            # state so the path remains representable.
            idle = ctx.stg.add_state(label=f"{label}idle")
            frag = Frag.linear(idle, idle)
        for eid, weight, _elabel in frag.entries:
            entries.append((eid, prob * weight, tag))
        exits.extend(frag.exits)
    return Frag(entries, exits)


def _external_conds(graph: Graph, pending: List[int], ids: Set[int],
                    assignment: Dict[int, bool]) -> Set[int]:
    out: Set[int] = set()
    for nid in pending:
        for cond, _pol in graph.control_inputs(nid):
            if cond not in ids and cond not in assignment:
                out.add(cond)
    return out


def _classify_all(graph: Graph, ids: Set[int],
                  assignment: Dict[int, bool]) -> Dict[int, str]:
    """Classify every node as dead / ready / pending.

    A node is *dead* when a guard contradicts the assignment (or, for
    non-joins, when a value it reads is dead), *pending* when a guard is
    still unresolved or it consumes a pending value, and *ready*
    otherwise.  Joins fire on whichever input executed, so a join is
    dead only if all its in-block inputs are dead.
    """
    status: Dict[int, str] = {}
    for nid in graph.topo_order(ids):
        s = _literal_status(graph, nid, assignment)
        in_ids = [src for src in graph.input_ports(nid).values()
                  if src in ids]
        upstream = [status[src] for src in in_ids if src in status]
        if graph.nodes[nid].kind is OpKind.JOIN:
            if upstream and all(u == "dead" for u in upstream):
                s = "dead"
            elif s != "dead" and any(u == "pending" for u in upstream):
                s = "pending"
        else:
            if any(u == "dead" for u in upstream):
                s = "dead"
            elif s != "dead" and any(u == "pending" for u in upstream):
                s = "pending"
        status[nid] = s
    return status


def _literal_status(graph: Graph, nid: int,
                    assignment: Dict[int, bool]) -> str:
    pending = False
    for cond, pol in graph.control_inputs(nid):
        if cond in assignment:
            if assignment[cond] != pol:
                return "dead"
        else:
            pending = True
    return "pending" if pending else "ready"

"""Region-level schedule memoization for incremental candidate evaluation.

The FACT inner loop (paper Figure 6) evaluates hundreds of candidates
per generation, and most of Section 3's transformations are local: a
candidate differs from its parent in one region while every other
region is byte-for-byte identical.  Rescheduling those untouched
regions — and re-solving their Markov sub-chains — is pure waste.  This
module supplies the pieces the scheduler driver uses to make evaluation
cost proportional to *what changed*:

* :func:`unit_key` — content hash of one schedulable unit (a block, a
  loop, or a run of independent adjacent loops) under a fixed
  evaluation context.  Keys serialize **exact node ids**, not the
  Weisfeiler-Lehman canonical signatures used by the behavior-level
  evaluation cache: list scheduling tie-breaks on node ids
  (``sorted(ids)`` orderings, ``min(..., key=(end_cycle, id))``), so
  two isomorphic-but-renumbered regions can legitimately schedule
  differently, and splicing one's fragment for the other would not
  reproduce the from-scratch schedule bit-for-bit.
* :class:`CachedFragment` — a relocatable scheduled fragment: a private
  STG holding the region's states, the weighted entry/exit ports, and
  (memoized) the expected-visit totals of its internal sub-chain.
* :func:`splice` — copy a cached fragment into a target STG, preserving
  state-creation and transition order, so the assembled STG is
  *identical* (ids, labels, transition list) to a from-scratch build.
* :class:`RegionScheduleCache` — a bounded LRU over all of the above
  with ``CacheStats`` hit/miss/eviction counters plus Markov-solver
  bookkeeping (local solves, reuses, full-solve fallbacks, time).

A cache is only valid for one evaluation context (library, allocation,
scheduler config, branch probabilities): the creator stamps
``context_fp`` (see :func:`repro.core.engine.context_fingerprint`) and
every unit key is namespaced by it.  Never share one cache across
contexts.

Observability: the counters here are *process-local*.  The engine
diffs :meth:`RegionScheduleCache.snapshot` around every candidate and
aggregates the deltas (see
:class:`~repro.core.telemetry.EvalStats`), which is the backend-
independent view the unified metrics registry and ``--stats`` report
from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..cdfg.ir import _digest
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import MarkovError, ScheduleError
from ..stg.markov import (build_fragment_system, finish_visits,
                          fragment_visits, solve_systems)
from ..stg.model import ScheduledOp, Stg
from .fragments import Frag, Port

__all__ = ["CachedFragment", "RegionScheduleCache", "splice", "unit_key"]


def _region_shape(region: Region, conds: Set[int]) -> str:
    """Exact serialization of a region's structure.

    Collects loop condition ids into ``conds`` along the way (their
    probability bookkeeping must enter the key even when the condition
    node itself carries no control edge inside the unit).
    """
    if isinstance(region, BlockRegion):
        # The block scheduler treats members as a set.
        return f"B{sorted(region.nodes)}"
    if isinstance(region, SeqRegion):
        return "S(" + ",".join(_region_shape(c, conds)
                               for c in region.children) + ")"
    if isinstance(region, LoopRegion):
        conds.add(region.cond)
        return (f"L({region.name},"
                f"vars={[(lv.name, lv.join) for lv in region.loop_vars]},"
                f"conds={sorted(region.cond_nodes)},cond={region.cond},"
                f"trip={region.trip_count},"
                f"body={_region_shape(region.body, conds)})")
    raise ScheduleError(f"unknown region type {type(region).__name__}")


def unit_key(behavior: Behavior, regions: Sequence[Region], guards,
             context_fp: str = "") -> str:
    """Content hash of one schedulable unit under a fixed context.

    Covers everything the fragment schedulers may read:

    * the exact node ids, kinds, constants, interface names and edges
      (data, control, order) of every node owned by the unit;
    * the region structure (names, loop variables, trip counts);
    * the *effective guards* of external producers feeding the unit —
      guard literals propagate transitively through data inputs, so a
      condition attached outside the unit can change predicated-sharing
      and execution-probability decisions inside it;
    * the condition weight/alias bookkeeping of every condition the
      unit can reference (branch probabilities themselves are part of
      ``context_fp``);
    * the behavior's array declarations (memory port counts).
    """
    graph = behavior.graph
    ids: Set[int] = set()
    for region in regions:
        ids |= region.node_ids()
    conds: Set[int] = set()
    shape = ";".join(_region_shape(r, conds) for r in regions)
    h = _digest(context_fp.encode())
    h.update(shape.encode())
    externals: Set[int] = set()
    for nid in sorted(ids):
        node = graph.nodes[nid]
        h.update(f"|n{nid}:{node.kind.name}:{node.value!r}:"
                 f"{node.var!r}:{node.array!r}".encode())
        for port, src in sorted(graph.input_ports(nid).items()):
            h.update(f",d{port}<{src}".encode())
            if src not in ids:
                externals.add(src)
        for src, pol in sorted(graph.control_inputs(nid)):
            h.update(f",c{src}:{int(pol)}".encode())
            conds.add(src)
        for src in sorted(graph.order_preds(nid)):
            h.update(f",o{src}".encode())
    for src in sorted(externals):
        literals = sorted(guards.effective_guard(src))
        h.update(f"|x{src}:{literals!r}".encode())
        conds.update(cond for cond, _pol in literals)
    env = [(cond, behavior.cond_weights.get(cond, 1),
            behavior.cond_aliases.get(cond))
           for cond in sorted(conds)]
    h.update(f"|w{env!r}".encode())
    arrays = sorted((a.name, a.size, a.ports)
                    for a in behavior.arrays.values())
    h.update(f"|a{arrays!r}".encode())
    return h.hexdigest()


@dataclass
class CachedFragment:
    """A relocatable scheduled fragment.

    ``stg`` is private to the cache entry and never mutated after the
    build; its states are numbered 0..n-1 in creation order, which is
    what lets :func:`splice` reproduce a from-scratch build exactly.
    ``visits`` memoizes the fragment's expected-visit totals (solved at
    most once per entry — the localized Markov re-analysis);
    ``solve_failed`` remembers that the sub-chain was singular so the
    caller falls back to a full solve without retrying.
    """

    stg: Stg
    entries: List[Port] = field(default_factory=list)
    exits: List[Port] = field(default_factory=list)
    visits: Optional[Dict[int, float]] = None
    solve_failed: bool = False
    #: Expected cycles of the fragment under the standard entry/exit
    #: wrapper (see ``Scheduler._measure``), memoized so a reused design
    #: variant never re-solves its measuring chain; None = not measured.
    measured_len: Optional[float] = None
    #: The build raised ScheduleError / was not applicable; remembered
    #: so every lookup reproduces the same decision without rebuilding.
    build_failed: bool = False


def splice(target: Stg, cached: CachedFragment
           ) -> Tuple[Frag, Dict[int, int]]:
    """Copy a cached fragment into ``target``.

    States are appended in their original creation order and transitions
    in their original list order, so an STG assembled from spliced
    fragments is identical — ids, labels and ``to_dot()`` output — to
    one built in place.  Returns the relocated fragment ports and the
    fragment-local → target state-id map.
    """
    idmap: Dict[int, int] = {}
    for state in cached.stg.states.values():  # insertion == creation order
        ops = [ScheduledOp(o.node, o.iteration, o.exec_prob)
               for o in state.ops]
        idmap[state.id] = target.add_state(ops, label=state.label)
    for t in cached.stg.transitions:
        target.add_transition(idmap[t.src], idmap[t.dst], t.prob, t.label)
    frag = Frag([(idmap[sid], prob, label)
                 for sid, prob, label in cached.entries],
                [(idmap[sid], prob, label)
                 for sid, prob, label in cached.exits])
    return frag, idmap


class RegionScheduleCache:
    """Bounded LRU from unit keys to :class:`CachedFragment` entries.

    ``max_entries=0`` disables storage: every lookup misses, nothing is
    kept, and unit keys are not even computed — this is the
    non-incremental baseline, which still runs the exact same
    build-and-splice path so both modes produce identical schedules.

    Counters: ``stats`` (a :class:`~repro.core.evalcache.CacheStats`)
    tracks unit lookups; ``markov_local`` / ``markov_reused`` /
    ``markov_full`` count fragment sub-chain solves, memoized reuses
    and full-solve fallbacks; ``solver_time`` accumulates seconds spent
    in Markov solves; ``states_built`` / ``states_reused`` count STG
    states emitted by fresh scheduling vs. served from the cache (their
    ratio is the *reschedule fraction* reported by the telemetry).
    """

    def __init__(self, max_entries: int = 4096,
                 context_fp: str = "") -> None:
        # Runtime import: repro.core imports the scheduler package, so
        # a module-level import here would be circular.
        from ..core.evalcache import EvalCache
        self._lru = EvalCache(max_entries=max_entries)
        self.context_fp = context_fp
        self.markov_local = 0
        self.markov_reused = 0
        self.markov_full = 0
        self.solver_time = 0.0
        self.states_built = 0
        self.states_reused = 0

    # -- storage --------------------------------------------------------
    @property
    def max_entries(self) -> int:
        return self._lru.max_entries

    @property
    def stats(self):
        """Unit lookup counters (``CacheStats``)."""
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: str) -> Optional[CachedFragment]:
        return self._lru.get(key)

    def put(self, key: str, value: CachedFragment) -> None:
        self._lru.put(key, value)

    def key_for(self, behavior: Behavior, regions: Sequence[Region],
                guards, variant: str = "") -> str:
        """The unit key of ``regions``, namespaced by this cache's
        context fingerprint.

        ``variant`` distinguishes alternative designs of the *same*
        unit content (``"pipe"`` / ``"seq"`` loop schedules, ``"conc"``
        run kernels) so the winner-selection step can fetch the variant
        it measured instead of rebuilding it.
        """
        key = unit_key(behavior, regions, guards, self.context_fp)
        return f"{key}:{variant}" if variant else key

    # -- localized Markov analysis --------------------------------------
    def visits_of(self, cached: CachedFragment
                  ) -> Optional[Dict[int, float]]:
        """Expected-visit totals of the fragment's sub-chain, memoized.

        A reused fragment is never solved again — this is the localized
        re-analysis.  Returns None when the sub-chain cannot be solved
        in isolation (singular system); callers then fall back to one
        full solve of the assembled STG.
        """
        if cached.solve_failed:
            return None
        if cached.visits is not None:
            self.markov_reused += 1
            return cached.visits
        if not cached.entries:
            cached.visits = {}
            return cached.visits
        sources: Dict[int, float] = {}
        for sid, weight, _label in cached.entries:
            sources[sid] = sources.get(sid, 0.0) + weight
        t0 = time.perf_counter()
        try:
            cached.visits = fragment_visits(cached.stg, sources)
        except MarkovError:
            cached.solve_failed = True
            return None
        finally:
            self.solver_time += time.perf_counter() - t0
        self.markov_local += 1
        return cached.visits

    def visits_of_many(self, cacheds: Sequence[CachedFragment]
                       ) -> List[Optional[Dict[int, float]]]:
        """Batched :meth:`visits_of` over one candidate's fragments.

        Under the scalar backend this defers to sequential
        :meth:`visits_of` calls — the classic path, byte for byte.
        Under the batched backend every unsolved sub-chain is assembled
        first and the solves go out in one flush; memoized fragments,
        duplicates within the batch and per-fragment failures resolve
        exactly as the sequential walk would have resolved them.
        """
        from ..numeric import get_backend
        if not get_backend().batched:
            return [self.visits_of(cached) for cached in cacheds]
        out: List[Optional[Dict[int, float]]] = [None] * len(cacheds)
        todo: List[int] = []
        queued: Set[int] = set()
        dups: List[int] = []
        for i, cached in enumerate(cacheds):
            if cached.solve_failed:
                continue
            if cached.visits is not None:
                self.markov_reused += 1
                out[i] = cached.visits
                continue
            if not cached.entries:
                cached.visits = {}
                out[i] = cached.visits
                continue
            if id(cached) in queued:
                # Same fragment object twice in one candidate: solve it
                # once, serve the repeat from the memo afterwards (the
                # sequential walk's second call would have reused it).
                dups.append(i)
                continue
            queued.add(id(cached))
            todo.append(i)
        if todo:
            t0 = time.perf_counter()
            systems = []
            where: List[int] = []
            for i in todo:
                cached = cacheds[i]
                sources: Dict[int, float] = {}
                for sid, weight, _label in cached.entries:
                    sources[sid] = sources.get(sid, 0.0) + weight
                try:
                    system = build_fragment_system(cached.stg, sources)
                except MarkovError:
                    cached.solve_failed = True
                    continue
                if system is None:
                    cached.visits = {}
                    out[i] = cached.visits
                    continue
                systems.append(system)
                where.append(i)
            for i, system, solved in zip(where, systems,
                                         solve_systems(systems)):
                cached = cacheds[i]
                if isinstance(solved, MarkovError):
                    cached.solve_failed = True
                    continue
                cached.visits = finish_visits(system, solved)
                self.markov_local += 1
                out[i] = cached.visits
            self.solver_time += time.perf_counter() - t0
        for i in dups:
            if cacheds[i].visits is not None:
                self.markov_reused += 1
                out[i] = cacheds[i].visits
        return out

    # -- bookkeeping ----------------------------------------------------
    def snapshot(self) -> Tuple[int, int, int, int, int, float, int, int,
                                int]:
        """Counter snapshot for per-candidate deltas.

        The engine diffs two snapshots around each candidate and ships
        the delta home as an :class:`~repro.core.telemetry.EvalStats` —
        under the process-pool backend this is the *only* aggregation
        path that sees every worker's counters (each worker owns a
        private cache, so reading any single cache object's totals
        under-reports; see :mod:`repro.obs.metrics`).

        Order: ``(hits, misses, markov_local, markov_reused,
        markov_full, solver_time, states_built, states_reused,
        evictions)``.
        """
        s = self.stats
        return (s.hits, s.misses, self.markov_local, self.markov_reused,
                self.markov_full, self.solver_time, self.states_built,
                self.states_reused, s.evictions)
